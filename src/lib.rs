//! # gmp — process groups as a failure-detection service
//!
//! A full reproduction of Ricciardi & Birman, *"Using Process Groups to
//! Implement Failure Detection in Asynchronous Environments"* (Cornell
//! TR 91-1188 / PODC 1991), as a Rust workspace. This facade crate
//! re-exports every subsystem:
//!
//! * [`types`] — process ids, membership operations, seniority-ranked views;
//! * [`sim`] — deterministic discrete-event simulator of the asynchronous
//!   system model (§2.1);
//! * [`link`] — reliable FIFO links built from scratch (alternating-bit,
//!   go-back-N), per §3's channel requirements;
//! * [`causality`] — Lamport/vector clocks and consistent cuts (§2.1);
//! * [`detect`] — failure-detection substrate: observation (F1), isolation
//!   (S1);
//! * [`protocol`] — the paper's contribution: `Mgr`-coordinated two-phase
//!   updates with condensed rounds, three-phase reconfiguration, joins;
//! * [`props`] — the GMP-0…GMP-5 specification as machine-checkable
//!   properties over recorded runs, plus the epistemic analysis of the
//!   appendix;
//! * [`baselines`] — the protocols the paper proves insufficient or
//!   expensive (one-phase, two-phase reconfiguration, symmetric);
//! * [`log`] — a multipaxos-style replicated log riding on the membership
//!   service: the `Mgr` leads, view versions are ballots, view installs
//!   are reconfigurations.
//!
//! Most programs only need the [`prelude`].
//!
//! # Example
//!
//! ```
//! use gmp::prelude::*;
//!
//! let mut sim = cluster(5, 42);
//! sim.crash_at(ProcessId(4), 300);
//! sim.run_until(5_000);
//! let survivor = sim.node(ProcessId(0));
//! assert!(!survivor.view().contains(ProcessId(4)));
//! ```

pub use gmp_baselines as baselines;
pub use gmp_causality as causality;
pub use gmp_core as protocol;
pub use gmp_detect as detect;
pub use gmp_link as link;
pub use gmp_log as log;
pub use gmp_props as props;
pub use gmp_sim as sim;
pub use gmp_types as types;

/// The stable surface, one `use` away.
///
/// ```
/// use gmp::prelude::*;
///
/// let cfg = ConfigBuilder::default().timing(80, 120).build();
/// let mut sim = ClusterBuilder::new(3, cfg).build();
/// sim.run_until(2_000);
/// assert_eq!(sim.node(ProcessId(0)).view().len(), 3);
/// ```
pub mod prelude {
    pub use gmp_core::{
        cluster, cluster_with, ClusterBuilder, Config, ConfigBuilder, JoinConfig, Lifecycle,
        Member, MemberEvent, ObserveConfig,
    };
    pub use gmp_core::{Flat, Hierarchical, Sparse, Topology};
    pub use gmp_log::{
        log_cluster, logs_agree, prefix_identical, Client, LogClusterBuilder, LogConfig,
        ReplicatedLog,
    };
    pub use gmp_sim::{Builder, Sim};
    pub use gmp_types::{ProcessId, Ver, View};
}
