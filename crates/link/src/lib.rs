//! Reliable FIFO links built from scratch (§3's channel requirements).
//!
//! The paper's solution "will make use of two channel properties ... both of
//! these properties are easily implemented: the former \[FIFO\] requires a
//! (1-bit) sequence number on each message and an acknowledgement protocol;
//! the latter involves adding view numbers to messages".
//!
//! This crate builds those constructions over an *unreliable* raw channel
//! model (loss, reordering, duplication):
//!
//! * [`alternating_bit`] — the 1-bit sequence-number + acknowledgement
//!   protocol the paper references (stop-and-wait);
//! * [`go_back_n`] — a windowed generalization for throughput;
//! * [`view_buffer`] — the "no messages from future views" delay rule.

pub mod alternating_bit;
pub mod go_back_n;
pub mod raw;
pub mod view_buffer;

pub use alternating_bit::{AbReceiver, AbSender};
pub use go_back_n::{GbnReceiver, GbnSender};
pub use raw::RawChannel;
pub use view_buffer::ViewBuffer;
