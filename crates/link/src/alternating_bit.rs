//! The alternating-bit (stop-and-wait) protocol: the paper's "(1-bit)
//! sequence number on each message and an acknowledgement protocol" that
//! turns an unreliable channel into a reliable FIFO one.

use std::collections::VecDeque;

/// A data frame: one payload stamped with the 1-bit sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbFrame<T> {
    /// The alternating bit.
    pub bit: bool,
    /// The payload.
    pub payload: T,
}

/// An acknowledgement frame carrying the bit being acknowledged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbAck {
    /// The acknowledged bit.
    pub bit: bool,
}

/// Sender half of the alternating-bit protocol.
///
/// Drive it with [`AbSender::send`]/[`AbSender::on_ack`]/
/// [`AbSender::on_timeout`]; every call returns the frames to put on the
/// wire (possibly retransmissions).
#[derive(Debug)]
pub struct AbSender<T> {
    bit: bool,
    outstanding: Option<T>,
    queue: VecDeque<T>,
}

impl<T: Clone> Default for AbSender<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> AbSender<T> {
    /// A fresh sender starting at bit 0.
    pub fn new() -> Self {
        AbSender {
            bit: false,
            outstanding: None,
            queue: VecDeque::new(),
        }
    }

    /// Queues a payload; returns the frame to transmit now, if the line is
    /// idle.
    pub fn send(&mut self, payload: T) -> Option<AbFrame<T>> {
        if self.outstanding.is_none() {
            self.outstanding = Some(payload.clone());
            Some(AbFrame {
                bit: self.bit,
                payload,
            })
        } else {
            self.queue.push_back(payload);
            None
        }
    }

    /// Handles an acknowledgement; returns the next frame to transmit if
    /// the ack freed the line.
    pub fn on_ack(&mut self, ack: AbAck) -> Option<AbFrame<T>> {
        if self.outstanding.is_some() && ack.bit == self.bit {
            self.outstanding = None;
            self.bit = !self.bit;
            if let Some(next) = self.queue.pop_front() {
                self.outstanding = Some(next.clone());
                return Some(AbFrame {
                    bit: self.bit,
                    payload: next,
                });
            }
        }
        None // stale / duplicate ack
    }

    /// Retransmits the outstanding frame (call on timeout).
    pub fn on_timeout(&self) -> Option<AbFrame<T>> {
        self.outstanding.as_ref().map(|p| AbFrame {
            bit: self.bit,
            payload: p.clone(),
        })
    }

    /// True when every queued payload has been delivered and acknowledged.
    pub fn is_idle(&self) -> bool {
        self.outstanding.is_none() && self.queue.is_empty()
    }
}

/// Receiver half of the alternating-bit protocol.
#[derive(Debug, Default)]
pub struct AbReceiver {
    expected: bool,
}

impl AbReceiver {
    /// A fresh receiver expecting bit 0.
    pub fn new() -> Self {
        AbReceiver { expected: false }
    }

    /// Handles a data frame: returns the payload to deliver (None for
    /// duplicates) and the ack to send back (always).
    pub fn on_frame<T>(&mut self, frame: AbFrame<T>) -> (Option<T>, AbAck) {
        if frame.bit == self.expected {
            self.expected = !self.expected;
            (Some(frame.payload), AbAck { bit: frame.bit })
        } else {
            // Duplicate of the previous frame: re-ack, do not deliver.
            (None, AbAck { bit: frame.bit })
        }
    }
}

/// Runs a full sender/receiver exchange over adversarial channels until
/// everything is delivered (or `max_steps` elapse). Returns the delivered
/// payload sequence. Used by tests and benchmarks.
pub fn run_exchange<T: Clone + PartialEq>(
    payloads: &[T],
    data_channel: &mut crate::raw::RawChannel<AbFrame<T>>,
    ack_channel: &mut crate::raw::RawChannel<AbAck>,
    max_steps: usize,
) -> Vec<T> {
    let mut sender = AbSender::new();
    let mut receiver = AbReceiver::new();
    let mut delivered = Vec::new();
    let mut pending: VecDeque<T> = payloads.iter().cloned().collect();

    if let Some(first) = pending.pop_front() {
        if let Some(f) = sender.send(first) {
            data_channel.push(f);
        }
    }
    for _ in 0..max_steps {
        if sender.is_idle() && pending.is_empty() {
            break;
        }
        // Feed the sender.
        if let Some(p) = pending.pop_front() {
            if let Some(f) = sender.send(p.clone()) {
                data_channel.push(f);
            }
        }
        // Receiver side.
        if let Some(frame) = data_channel.pop() {
            let (deliver, ack) = receiver.on_frame(frame);
            if let Some(p) = deliver {
                delivered.push(p);
            }
            ack_channel.push(ack);
        }
        // Sender side.
        if let Some(ack) = ack_channel.pop() {
            if let Some(f) = sender.on_ack(ack) {
                data_channel.push(f);
            }
        }
        // Timeout-driven retransmission, modelled as "the line went quiet":
        // retransmitting while frames are still in flight would grow the
        // queue faster than it drains.
        if data_channel.in_flight() == 0 && ack_channel.in_flight() == 0 {
            if let Some(f) = sender.on_timeout() {
                data_channel.push(f);
            }
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{RawChannel, RawConfig};

    #[test]
    fn delivers_in_order_over_reliable_channel() {
        let payloads: Vec<u32> = (0..50).collect();
        let mut data = RawChannel::reliable(1);
        let mut ack = RawChannel::reliable(2);
        let got = run_exchange(&payloads, &mut data, &mut ack, 100_000);
        assert_eq!(got, payloads);
    }

    #[test]
    fn delivers_exactly_once_under_loss_and_duplication() {
        let payloads: Vec<u32> = (0..100).collect();
        let cfg = RawConfig {
            loss: 0.3,
            duplicate: 0.2,
            reorder: 0.0,
        };
        let mut data = RawChannel::new(cfg, 3);
        let mut ack = RawChannel::new(cfg, 4);
        let got = run_exchange(&payloads, &mut data, &mut ack, 1_000_000);
        assert_eq!(
            got, payloads,
            "alternating bit must deliver the exact sequence"
        );
    }

    #[test]
    fn duplicate_frames_are_suppressed() {
        let mut rx = AbReceiver::new();
        let (d1, a1) = rx.on_frame(AbFrame {
            bit: false,
            payload: 7u8,
        });
        assert_eq!(d1, Some(7));
        assert!(!a1.bit);
        let (d2, a2) = rx.on_frame(AbFrame {
            bit: false,
            payload: 7u8,
        });
        assert_eq!(d2, None, "duplicate must not be redelivered");
        assert!(!a2.bit, "duplicate is re-acked so the sender can advance");
    }

    #[test]
    fn stale_acks_are_ignored() {
        let mut tx: AbSender<u8> = AbSender::new();
        let f = tx.send(1).expect("line idle");
        assert!(!f.bit);
        assert!(
            tx.on_ack(AbAck { bit: true }).is_none(),
            "wrong-bit ack ignored"
        );
        assert!(!tx.is_idle());
        assert!(
            tx.on_ack(AbAck { bit: false }).is_none(),
            "queue empty: nothing next"
        );
        assert!(tx.is_idle());
    }

    #[test]
    fn timeout_retransmits_same_frame() {
        let mut tx: AbSender<u8> = AbSender::new();
        let f = tx.send(9).expect("line idle");
        let r = tx.on_timeout().expect("outstanding frame");
        assert_eq!(f, r);
    }
}
