//! Go-back-N sliding-window ARQ: a windowed generalization of the
//! alternating-bit construction, trading bandwidth for latency while
//! preserving the same reliable-FIFO guarantee.

use std::collections::VecDeque;

/// A data frame carrying a full sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GbnFrame<T> {
    /// Sequence number of this payload (0-based, monotone).
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

/// A cumulative acknowledgement: everything below `next` has arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GbnAck {
    /// The receiver's next expected sequence number.
    pub next: u64,
}

/// Sender half of go-back-N.
#[derive(Debug)]
pub struct GbnSender<T> {
    window: usize,
    base: u64,
    next_seq: u64,
    buffer: VecDeque<(u64, T)>,
    backlog: VecDeque<T>,
}

impl<T: Clone> GbnSender<T> {
    /// A sender with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        GbnSender {
            window,
            base: 0,
            next_seq: 0,
            buffer: VecDeque::new(),
            backlog: VecDeque::new(),
        }
    }

    /// Queues a payload; returns the frame to transmit now if the window
    /// has room.
    pub fn send(&mut self, payload: T) -> Option<GbnFrame<T>> {
        if (self.next_seq - self.base) < self.window as u64 {
            let frame = GbnFrame {
                seq: self.next_seq,
                payload: payload.clone(),
            };
            self.buffer.push_back((self.next_seq, payload));
            self.next_seq += 1;
            Some(frame)
        } else {
            self.backlog.push_back(payload);
            None
        }
    }

    /// Handles a cumulative ack; returns any new frames the freed window
    /// admits.
    pub fn on_ack(&mut self, ack: GbnAck) -> Vec<GbnFrame<T>> {
        if ack.next <= self.base {
            return Vec::new(); // stale
        }
        while self.base < ack.next {
            self.buffer.pop_front();
            self.base += 1;
        }
        let mut out = Vec::new();
        while (self.next_seq - self.base) < self.window as u64 {
            let Some(p) = self.backlog.pop_front() else {
                break;
            };
            out.push(GbnFrame {
                seq: self.next_seq,
                payload: p.clone(),
            });
            self.buffer.push_back((self.next_seq, p));
            self.next_seq += 1;
        }
        out
    }

    /// Retransmits the whole outstanding window (call on timeout).
    pub fn on_timeout(&self) -> Vec<GbnFrame<T>> {
        self.buffer
            .iter()
            .map(|(seq, p)| GbnFrame {
                seq: *seq,
                payload: p.clone(),
            })
            .collect()
    }

    /// True when nothing is queued or outstanding.
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.backlog.is_empty()
    }
}

/// Receiver half of go-back-N: accepts exactly the next expected frame.
#[derive(Debug, Default)]
pub struct GbnReceiver {
    next: u64,
}

impl GbnReceiver {
    /// A fresh receiver expecting sequence number 0.
    pub fn new() -> Self {
        GbnReceiver { next: 0 }
    }

    /// Handles a frame: in-order payloads are delivered; everything is
    /// (re-)acked cumulatively.
    pub fn on_frame<T>(&mut self, frame: GbnFrame<T>) -> (Option<T>, GbnAck) {
        if frame.seq == self.next {
            self.next += 1;
            (Some(frame.payload), GbnAck { next: self.next })
        } else {
            (None, GbnAck { next: self.next })
        }
    }
}

/// Runs a windowed exchange over adversarial channels (see
/// `alternating_bit::run_exchange` for the driving pattern).
pub fn run_exchange<T: Clone + PartialEq>(
    payloads: &[T],
    window: usize,
    data_channel: &mut crate::raw::RawChannel<GbnFrame<T>>,
    ack_channel: &mut crate::raw::RawChannel<GbnAck>,
    max_steps: usize,
) -> Vec<T> {
    let mut tx = GbnSender::new(window);
    let mut rx = GbnReceiver::new();
    let mut delivered = Vec::new();
    let mut pending: VecDeque<T> = payloads.iter().cloned().collect();

    for step in 0..max_steps {
        if tx.is_idle() && pending.is_empty() {
            break;
        }
        if let Some(p) = pending.pop_front() {
            if let Some(f) = tx.send(p) {
                data_channel.push(f);
            }
        }
        if let Some(frame) = data_channel.pop() {
            let (deliver, ack) = rx.on_frame(frame);
            if let Some(p) = deliver {
                delivered.push(p);
            }
            ack_channel.push(ack);
        }
        if let Some(ack) = ack_channel.pop() {
            for f in tx.on_ack(ack) {
                data_channel.push(f);
            }
        }
        // Timeout retransmission only once the line has gone quiet, so the
        // in-flight queue stays bounded.
        let quiet = data_channel.in_flight() == 0 && ack_channel.in_flight() == 0;
        if quiet || step % 64 == 63 {
            for f in tx.on_timeout() {
                data_channel.push(f);
            }
        }
    }
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{RawChannel, RawConfig};

    #[test]
    fn in_order_delivery_over_reliable_channel() {
        let payloads: Vec<u32> = (0..200).collect();
        let mut data = RawChannel::reliable(1);
        let mut ack = RawChannel::reliable(2);
        let got = run_exchange(&payloads, 8, &mut data, &mut ack, 100_000);
        assert_eq!(got, payloads);
    }

    #[test]
    fn exact_sequence_under_loss_reorder_duplication() {
        let payloads: Vec<u32> = (0..150).collect();
        let cfg = RawConfig {
            loss: 0.25,
            duplicate: 0.15,
            reorder: 0.3,
        };
        let mut data = RawChannel::new(cfg, 5);
        let mut ack = RawChannel::new(cfg, 6);
        let got = run_exchange(&payloads, 8, &mut data, &mut ack, 2_000_000);
        assert_eq!(got, payloads, "go-back-N must deliver the exact sequence");
    }

    #[test]
    fn window_limits_outstanding_frames() {
        let mut tx: GbnSender<u8> = GbnSender::new(2);
        assert!(tx.send(1).is_some());
        assert!(tx.send(2).is_some());
        assert!(tx.send(3).is_none(), "window full: backlogged");
        let freed = tx.on_ack(GbnAck { next: 1 });
        assert_eq!(freed.len(), 1, "ack frees room for one backlogged frame");
        assert_eq!(freed[0].seq, 2);
    }

    #[test]
    fn receiver_rejects_out_of_order() {
        let mut rx = GbnReceiver::new();
        let (d, a) = rx.on_frame(GbnFrame {
            seq: 3,
            payload: 9u8,
        });
        assert_eq!(d, None);
        assert_eq!(a.next, 0, "cumulative ack re-asserts expectation");
    }

    #[test]
    fn stale_acks_ignored() {
        let mut tx: GbnSender<u8> = GbnSender::new(4);
        tx.send(1);
        tx.send(2);
        assert!(tx.on_ack(GbnAck { next: 2 }).is_empty());
        assert!(
            tx.on_ack(GbnAck { next: 1 }).is_empty(),
            "stale ack is a no-op"
        );
        assert!(tx.on_ack(GbnAck { next: 0 }).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = GbnSender::<u8>::new(0);
    }
}
