//! An unreliable raw channel model: loses, reorders and duplicates frames.
//!
//! This is the adversarial substrate the reliable-link constructions are
//! verified against. It is deliberately simple and synchronous (a pull
//! model): protocol state machines are driven by test harnesses and
//! property tests rather than the event simulator, which keeps the
//! link-layer proofs-by-testing self-contained.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration of the adversarial channel.
#[derive(Clone, Copy, Debug)]
pub struct RawConfig {
    /// Probability a frame is dropped in transit.
    pub loss: f64,
    /// Probability a delivered frame is duplicated.
    pub duplicate: f64,
    /// Probability two queued frames are swapped on delivery.
    pub reorder: f64,
}

impl Default for RawConfig {
    fn default() -> Self {
        RawConfig {
            loss: 0.2,
            duplicate: 0.1,
            reorder: 0.2,
        }
    }
}

/// An unreliable unidirectional channel carrying frames of type `F`.
#[derive(Debug)]
pub struct RawChannel<F> {
    cfg: RawConfig,
    rng: SmallRng,
    queue: VecDeque<F>,
}

impl<F: Clone> RawChannel<F> {
    /// A channel with the given fault rates and deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1)`.
    pub fn new(cfg: RawConfig, seed: u64) -> Self {
        for p in [cfg.loss, cfg.duplicate, cfg.reorder] {
            assert!((0.0..1.0).contains(&p), "probabilities must be in [0, 1)");
        }
        RawChannel {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            queue: VecDeque::new(),
        }
    }

    /// A perfectly reliable, ordered channel (for control experiments).
    pub fn reliable(seed: u64) -> Self {
        RawChannel::new(
            RawConfig {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 0.0,
            },
            seed,
        )
    }

    /// Offers a frame to the channel; it may be lost or duplicated.
    pub fn push(&mut self, frame: F) {
        if self.rng.gen_bool(self.cfg.loss) {
            return; // lost
        }
        self.queue.push_back(frame.clone());
        if self.cfg.duplicate > 0.0 && self.rng.gen_bool(self.cfg.duplicate) {
            self.queue.push_back(frame);
        }
        if self.queue.len() >= 2 && self.cfg.reorder > 0.0 && self.rng.gen_bool(self.cfg.reorder) {
            let a = self.rng.gen_range(0..self.queue.len());
            let b = self.rng.gen_range(0..self.queue.len());
            self.queue.swap(a, b);
        }
    }

    /// Takes the next frame off the wire, if any.
    pub fn pop(&mut self) -> Option<F> {
        self.queue.pop_front()
    }

    /// Number of frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_channel_is_fifo() {
        let mut ch = RawChannel::reliable(1);
        for i in 0..10 {
            ch.push(i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| ch.pop()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lossy_channel_drops_frames() {
        let mut ch = RawChannel::new(
            RawConfig {
                loss: 0.5,
                duplicate: 0.0,
                reorder: 0.0,
            },
            2,
        );
        for i in 0..1000 {
            ch.push(i);
        }
        let n = ch.in_flight();
        assert!(n < 700, "expected significant loss, {n} arrived");
        assert!(n > 300, "loss rate implausibly high: {n}");
    }

    #[test]
    fn duplicating_channel_duplicates() {
        let mut ch = RawChannel::new(
            RawConfig {
                loss: 0.0,
                duplicate: 0.5,
                reorder: 0.0,
            },
            3,
        );
        for i in 0..1000 {
            ch.push(i);
        }
        assert!(ch.in_flight() > 1200);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_probability_rejected() {
        let _ = RawChannel::<u8>::new(
            RawConfig {
                loss: 1.5,
                duplicate: 0.0,
                reorder: 0.0,
            },
            0,
        );
    }
}
