//! The "no messages from future views" rule (§3): messages tagged with a
//! view number greater than the receiver's are delayed until that view is
//! installed locally.
//!
//! `gmp-core` embeds this behaviour directly in its member state machine;
//! this standalone implementation exists so the mechanism can be tested in
//! isolation and reused by other protocols.

use gmp_types::Ver;
use std::collections::BTreeMap;

/// A buffer holding messages from future views until they become current.
#[derive(Clone, Debug)]
pub struct ViewBuffer<M> {
    current: Ver,
    held: BTreeMap<Ver, Vec<M>>,
}

impl<M> ViewBuffer<M> {
    /// A buffer for a process currently in view `current`.
    pub fn new(current: Ver) -> Self {
        ViewBuffer {
            current,
            held: BTreeMap::new(),
        }
    }

    /// The view the owner currently has installed.
    pub fn current(&self) -> Ver {
        self.current
    }

    /// Offers a message tagged with `ver`:
    ///
    /// * `ver <= current` — returned immediately (deliverable now; the
    ///   caller decides whether old-view messages are still meaningful);
    /// * `ver > current` — buffered, `None` returned.
    pub fn offer(&mut self, ver: Ver, msg: M) -> Option<M> {
        if ver <= self.current {
            Some(msg)
        } else {
            self.held.entry(ver).or_default().push(msg);
            None
        }
    }

    /// Advances to a newly installed view, releasing every message tagged
    /// with a view `<= ver`, in tag order then arrival order.
    pub fn install(&mut self, ver: Ver) -> Vec<M> {
        assert!(ver >= self.current, "views are installed in order");
        self.current = ver;
        let mut released = Vec::new();
        let ready: Vec<Ver> = self.held.range(..=ver).map(|(v, _)| *v).collect();
        for v in ready {
            released.extend(self.held.remove(&v).unwrap_or_default());
        }
        released
    }

    /// Number of messages waiting for future views.
    pub fn pending(&self) -> usize {
        self.held.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_and_past_views_pass_through() {
        let mut buf = ViewBuffer::new(3);
        assert_eq!(buf.offer(3, "now"), Some("now"));
        assert_eq!(buf.offer(1, "old"), Some("old"));
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn future_views_are_held_until_install() {
        let mut buf = ViewBuffer::new(0);
        assert_eq!(buf.offer(2, "b"), None);
        assert_eq!(buf.offer(1, "a"), None);
        assert_eq!(buf.pending(), 2);
        assert_eq!(buf.install(1), vec!["a"]);
        assert_eq!(buf.pending(), 1);
        assert_eq!(buf.install(2), vec!["b"]);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn install_releases_in_view_order() {
        let mut buf = ViewBuffer::new(0);
        buf.offer(3, "z");
        buf.offer(2, "y1");
        buf.offer(2, "y2");
        assert_eq!(buf.install(3), vec!["y1", "y2", "z"]);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn views_cannot_go_backwards() {
        let mut buf: ViewBuffer<u8> = ViewBuffer::new(5);
        let _ = buf.install(4);
    }
}
