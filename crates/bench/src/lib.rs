//! Benchmark harness regenerating every analytic table and figure of the
//! paper (see `EXPERIMENTS.md` for the full index).
//!
//! * The [`experiments`] module builds each experiment's workload and
//!   returns structured rows (measured vs. formula);
//! * `src/bin/tables.rs` prints them (`cargo run -p gmp-bench --bin tables`);
//! * `benches/protocol.rs` wraps the same workloads in Criterion wall-clock
//!   benchmarks (`cargo bench -p gmp-bench`).
//!
//! Experiments come in two shapes: single-run workloads pinned to one seed
//! (E1–E7, the tables and figures), and the *seed sweeps* (E8, E10), which
//! drive the [`gmp_sim::run_seeds_parallel`] batch runner across a whole
//! seed range — on the scoped worker pool, `--jobs` threads at a time —
//! and report percentile statistics. Schedule-space exploration in one
//! call, at multicore speed, with output pinned identical to the
//! sequential runner's.
//!
//! # Example
//!
//! ```
//! use gmp_bench::{e1_exclusion, e8_seed_sweep};
//!
//! // One run: excluding a crashed member costs exactly 3n − 5 messages.
//! let row = &e1_exclusion(&[5], 42)[0];
//! assert_eq!(row.measured, row.formula);
//! assert_eq!(row.formula, 10);
//!
//! // Many runs: the same bound holds across every sampled schedule.
//! let sweep = &e8_seed_sweep(&[5], 0..8, None)[0];
//! assert_eq!(sweep.protocol.min, sweep.formula);
//! assert_eq!(sweep.protocol.p99, sweep.formula);
//! ```

pub mod experiments;

pub use experiments::*;
