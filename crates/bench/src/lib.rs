//! Benchmark harness regenerating every analytic table and figure of the
//! paper (see `EXPERIMENTS.md` for the full index).
//!
//! * The [`experiments`] module builds each experiment's workload and
//!   returns structured rows (measured vs. formula);
//! * `src/bin/tables.rs` prints them (`cargo run -p gmp-bench --bin tables`);
//! * `benches/protocol.rs` wraps the same workloads in Criterion wall-clock
//!   benchmarks (`cargo bench -p gmp-bench`).

pub mod experiments;

pub use experiments::*;
