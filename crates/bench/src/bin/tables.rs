//! Regenerates every analytic table and figure of the paper.
//!
//! ```text
//! cargo run --release -p gmp-bench --bin tables              # everything
//! cargo run --release -p gmp-bench --bin tables -- e1 t1     # a subset
//! cargo run --release -p gmp-bench --bin tables -- e8 --jobs 4
//! ```
//!
//! Experiment ids follow `EXPERIMENTS.md`: t1, f1, f3, f4, f11, c71,
//! e1..e15, a1, ab1, ab2. Flags:
//!
//! * `--jobs N` — worker threads for the sweep experiments (E8/E9/E10).
//!   Default: every core the platform reports. For E10 — whose whole
//!   point is comparing thread counts — `--jobs N` shrinks the swept
//!   ladder to `{1, N}` so smoke runs stay cheap; without it the ladder
//!   is `{1, 2, 4, 8}`.
//! * `--seeds N` — seeds per sweep (default 48 for E8; 256 for E10 when
//!   `e10` is requested by name, 32 in the bare "everything" run so the
//!   no-argument quickstart stays minutes, not hours). Output *values*
//!   are per-seed deterministic either way; fewer seeds just samples
//!   fewer schedules. E11 and E12 reuse the flag as a length dial:
//!   rounds per arm for E11, heartbeat intervals per run for E12.
//! * `--shards N` — shrinks E12's swept shard ladder to `{1, N}` (the
//!   CI smoke run uses `--seeds 8 --shards 2`); without it the ladder
//!   is `{1, 2, 4, 8}`. Output is pinned identical at every value.
//!   `--shards auto` resolves N to the cores the host reports — the
//!   engine clamps deeper ladders to that anyway.
//!
//! For E13 `--seeds` is the seeds sampled per (topology, n) cell (the CI
//! smoke run uses `tables e13 --seeds 8`; default 4). For E14 it is the
//! schedules sampled per workload scenario (CI: `tables e14 --seeds 8`;
//! default 4), each run through both engines.
//!
//! E14 and E15 additionally take the workload axes:
//!
//! * `--clients N` — closed-loop clients per scenario (default 4).
//! * `--batch N` — leader batch size. For E14 it switches the workload
//!   off the unbatched baseline; for E15 it shrinks the swept ladder to
//!   `{baseline, (batch, window)}`.
//! * `--window N` — client pipeline window, same semantics as `--batch`.

use gmp_bench::*;
use gmp_props::{analyze, check_safety};
use std::num::NonZeroUsize;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::new();
    let mut jobs_flag: Option<usize> = None;
    let mut seeds_flag: Option<u64> = None;
    let mut shards_flag: Option<usize> = None;
    let mut clients_flag: Option<usize> = None;
    let mut batch_flag: Option<usize> = None;
    let mut window_flag: Option<usize> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "--seeds" | "--shards" | "--clients" | "--batch" | "--window" => {
                let raw = it.next().unwrap_or_else(|| panic!("{a} needs a value"));
                if a == "--shards" && raw == "auto" {
                    shards_flag = Some(gmp_sim::pool::available_jobs().get());
                    continue;
                }
                let v: u64 = raw.parse().ok().filter(|&v| v >= 1).unwrap_or_else(|| {
                    panic!("{a} needs a numeric value >= 1 (or auto for --shards)")
                });
                match a.as_str() {
                    "--jobs" => jobs_flag = Some(v as usize),
                    "--shards" => shards_flag = Some(v as usize),
                    "--clients" => clients_flag = Some(v as usize),
                    "--batch" => batch_flag = Some(v as usize),
                    "--window" => window_flag = Some(v as usize),
                    _ => seeds_flag = Some(v),
                }
            }
            _ => args.push(a),
        }
    }
    let jobs = jobs_flag.and_then(NonZeroUsize::new);
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a == id);
    let seed = 42;

    if want("t1") {
        println!("== T1: Table 1 — multiple reconfiguration initiations ==");
        println!("(Mgr crashed; p ranked below Mgr, q below p)\n");
        println!(
            "{:<10} {:<12} {:<24} {:<24}",
            "p actual", "q thinks p", "q initiates (exp/meas)", "p initiates (exp/meas)"
        );
        for r in t1_initiations(seed) {
            let q_meas = if r.q_initiated { "Yes" } else { "No" };
            let p_meas = if r.p_initiated { "Yes" } else { "No" };
            println!(
                "{:<10} {:<12} {:<24} {:<24}",
                r.p_actual,
                r.q_thinks_p,
                format!("{} / {}", r.expect_q, q_meas),
                format!("{} / {}", r.expect_p, p_meas),
            );
        }
        println!();
    }

    if want("f1") {
        println!("== F1: Figure 1 — two-phase update structure ==");
        println!("(5 members; p4 crashes; message timeline of the exclusion)\n");
        print!("{}", f1_two_phase_timeline(seed));
        println!();
    }

    if want("f3") {
        println!("== F3: Figure 3 — Mgr fails mid-commit; reconfiguration repairs ==");
        let (timeline, ok) = f3_mid_commit_crash(seed);
        print!("{timeline}");
        println!(
            "GMP safety after repair: {}",
            if ok { "HOLDS" } else { "VIOLATED" }
        );
        println!();
    }

    if want("f4") {
        println!("== F4: Figure 4 — concurrent initiators, unique system view ==");
        let (initiations, distinct, safety) = f4_unique_view(seed);
        println!("reconfiguration initiations : {initiations}");
        println!("distinct memberships for v1 : {distinct} (must be 1)");
        println!(
            "GMP safety                  : {}",
            if safety { "HOLDS" } else { "VIOLATED" }
        );
        println!();
    }

    if want("f11") {
        println!("== F11: Figure 11 / Claim 7.2 — two-phase reconfiguration fails ==");
        for (label, three_phase) in [("three-phase", true), ("two-phase ", false)] {
            let sim = gmp_baselines::figure_11_run(three_phase, seed);
            let report = check_safety(sim.trace());
            let a = analyze(sim.trace());
            let v1: Vec<String> = {
                let mut ms: Vec<Vec<u32>> = a
                    .memberships_of_ver(1)
                    .into_iter()
                    .map(|v| v.members.iter().map(|m| m.0).collect())
                    .collect();
                ms.sort();
                ms.dedup();
                ms.into_iter().map(|m| format!("{m:?}")).collect()
            };
            println!(
                "{label}: GMP safety {}, version-1 membership(s): {}",
                if report.is_ok() {
                    "HOLDS   "
                } else {
                    "VIOLATED"
                },
                v1.join("  vs  ")
            );
        }
        println!("(same failure schedule; only the proposal phase differs)\n");
    }

    if want("c71") {
        println!("== C71: Claim 7.1 — one-phase update fails under partition ==");
        let sim = gmp_baselines::claim_7_1_run(seed);
        let report = check_safety(sim.trace());
        let a = analyze(sim.trace());
        let mut ms: Vec<Vec<u32>> = a
            .memberships_of_ver(1)
            .into_iter()
            .map(|v| v.members.iter().map(|m| m.0).collect())
            .collect();
        ms.sort();
        ms.dedup();
        println!(
            "GMP safety: {}; version-1 memberships: {}",
            if report.is_ok() {
                "HOLDS (unexpected!)"
            } else {
                "VIOLATED (as proven)"
            },
            ms.iter()
                .map(|m| format!("{m:?}"))
                .collect::<Vec<_>>()
                .join("  vs  ")
        );
        println!();
    }

    if want("e1") {
        println!("== E1: §7.2 — plain two-phase exclusion costs 3n-5 messages ==");
        println!("{:<6} {:<10} {:<10} match", "n", "measured", "3n-5");
        for r in e1_exclusion(&[4, 5, 8, 16, 32, 64], seed) {
            println!(
                "{:<6} {:<10} {:<10} {}",
                r.n,
                r.measured,
                r.formula,
                if r.measured == r.formula {
                    "exact"
                } else {
                    "DIFFERS"
                }
            );
        }
        println!();
    }

    if want("e2") {
        println!("== E2: §7.2 — condensed rounds amortize the invitation ==");
        println!(
            "{:<6} {:<9} {:<12} {:<10} {:<18} paper: ~n/2-1 extra for standard",
            "n", "victims", "compressed", "standard", "saved/exclusion"
        );
        for r in e2_condensed(&[8, 16, 32, 64], seed) {
            println!(
                "{:<6} {:<9} {:<12} {:<10} {:<18.1} {:.1}",
                r.n,
                r.victims,
                r.compressed,
                r.standard,
                r.saved_per_exclusion,
                (r.n as f64) / 2.0 - 1.0
            );
        }
        println!();
    }

    if want("e3") {
        println!("== E3: §7.2 — one successful reconfiguration costs ~5n-9 ==");
        println!("{:<6} {:<10} {:<10} delta", "n", "measured", "5n-9");
        for r in e3_reconfiguration(&[5, 8, 16, 32, 64], seed) {
            println!(
                "{:<6} {:<10} {:<10} {:+}",
                r.n,
                r.measured,
                r.formula,
                r.measured as i64 - r.formula as i64
            );
        }
        println!("(constant offset comes from whether dead members are still addressed)\n");
    }

    if want("e4") {
        println!("== E4: §7.2 — worst case: cascading failed reconfigurations, O(n²) ==");
        println!(
            "{:<6} {:<18} {:<10} messages/n²",
            "n", "failed initiators", "messages"
        );
        for r in e4_worst_case(&[7, 9, 13, 17, 25], seed) {
            println!(
                "{:<6} {:<18} {:<10} {:.2}",
                r.n, r.failed_initiators, r.measured, r.per_n_squared
            );
        }
        println!("(a flat messages/n² column confirms the quadratic shape)\n");
    }

    if want("e5") {
        println!("== E5: §8 — symmetric protocol costs an order of magnitude more ==");
        println!("{:<6} {:<12} {:<12} ratio", "n", "symmetric", "asymmetric");
        for r in e5_symmetric(&[8, 16, 32, 64], seed) {
            println!(
                "{:<6} {:<12} {:<12} {:.1}x",
                r.n, r.symmetric, r.asymmetric, r.ratio
            );
        }
        println!();
    }

    if want("e6") {
        println!("== E6: §1/§7 — fully online: continuous joins and failures ==");
        let o = e6_churn(seed);
        println!("initial members      : {}", o.n);
        println!("joins / crashes      : {} / {}", o.joins, o.crashes);
        println!(
            "changes committed    : {} (expected {})",
            o.changes_committed,
            o.joins + o.crashes
        );
        println!("protocol messages    : {}", o.protocol_messages);
        println!(
            "full GMP spec        : {}",
            if o.gmp_ok { "HOLDS" } else { "VIOLATED" }
        );
        println!();
    }

    if want("e7") {
        println!("== E7: fault-tolerance bounds (§3.1, §4.3) ==");
        println!(
            "{:<26} {:<4} {:<9} {:<16} outcome ok",
            "scenario", "n", "crashed", "views committed"
        );
        for r in e7_tolerance(seed) {
            println!(
                "{:<26} {:<4} {:<9} {:<16} {}",
                r.scenario, r.n, r.crashed, r.views_committed, r.recovered
            );
        }
        println!();
    }

    if want("e8") {
        let seeds = seeds_flag.unwrap_or(48);
        println!("== E8: multi-seed schedule sweep — exclusion cost percentiles ==");
        println!(
            "(one exclusion, {seeds} seeds per n; delays resampled per seed; parallel runner)\n"
        );
        println!(
            "{:<6} {:<7} {:<8} {:<22} {:<24} events p50",
            "n", "seeds", "3n-5", "protocol p50/p90/p99", "protocol min..max"
        );
        for r in e8_seed_sweep(&[8, 16, 32, 64, 128], 0..seeds, jobs) {
            println!(
                "{:<6} {:<7} {:<8} {:<22} {:<24} {}",
                r.n,
                r.seeds,
                r.formula,
                format!(
                    "{} / {} / {}",
                    r.protocol.p50, r.protocol.p90, r.protocol.p99
                ),
                format!(
                    "{}..{} (mean {:.1})",
                    r.protocol.min, r.protocol.max, r.protocol.mean
                ),
                r.events.p50,
            );
        }
        println!("(percentiles flat on 3n-5: the §7.2 cost is schedule-independent)\n");
    }

    if want("e9") {
        println!("== E9: heartbeat fan-out — shared digests vs per-peer clones ==");
        println!(
            "(one exclusion; messages stay Θ(n²)/interval, payload builds drop to Θ(n)/run)\n"
        );
        println!(
            "{:<6} {:<10} {:<12} {:<16} {:<16} legacy clones (Θ(n²)/interval)",
            "n", "intervals", "heartbeats", "msgs/interval", "payload builds"
        );
        for r in e9_heartbeat_fanout(&[8, 16, 32, 64, 128], seed, jobs) {
            println!(
                "{:<6} {:<10} {:<12} {:<16.1} {:<16} {}",
                r.n,
                r.intervals,
                r.heartbeats,
                r.msgs_per_interval,
                r.payload_builds,
                r.legacy_builds
            );
        }
        println!(
            "(payload builds ≈ one per member per faulty-set change, independent of intervals)\n"
        );
    }

    if want("e10") {
        // Full scale (256 seeds, n up to 192 — an hour-plus single-core,
        // see EXPERIMENTS.md) only when e10 is asked for by name; the
        // bare "everything" invocation gets a minutes-sized slice.
        let explicit = args.iter().any(|a| a == "e10");
        let seeds = seeds_flag.unwrap_or(if explicit { 256 } else { 32 });
        let ns: &[usize] = if explicit { &[128, 192] } else { &[128] };
        // E10 compares thread counts, so --jobs shrinks the swept ladder
        // ({1, N}) rather than pinning a single value.
        let ladder: Vec<usize> = match jobs_flag {
            Some(1) => vec![1],
            Some(n) => vec![1, n],
            None => vec![1, 2, 4, 8],
        };
        println!("== E10: parallel seed-sweep scaling — wall-clock vs worker threads ==");
        println!(
            "({seeds}-seed exclusion sweeps; cores available: {}; identical = output equals jobs=1)\n",
            gmp_sim::pool::available_jobs()
        );
        println!(
            "{:<6} {:<7} {:<6} {:<12} {:<9} identical",
            "n", "seeds", "jobs", "wall", "speedup"
        );
        for r in e10_parallel_scaling(ns, 0..seeds, &ladder) {
            println!(
                "{:<6} {:<7} {:<6} {:<12} {:<9} {}",
                r.n,
                r.seeds,
                r.jobs,
                format!("{:.2}s", r.wall.as_secs_f64()),
                format!("{:.2}x", r.speedup),
                r.identical
            );
        }
        println!("(runs are independent: speedup tracks min(jobs, cores); output never moves)\n");
    }

    if want("e11") {
        // --seeds scales the rounds driven through each arm (the CI smoke
        // run uses 16); outcomes are pinned identical at any length.
        let rounds = 256 * seeds_flag.unwrap_or(64);
        let ns = [8usize, 32, 128, 512];
        println!("== E11: arena vs map detector hot path — index-addressed peer state ==");
        println!("({rounds} heartbeat rounds per arm; identical = same suspicions/tracking)\n");
        println!(
            "{:<6} {:<10} {:<12} {:<14} {:<14} {:<9} {:<9} identical",
            "n", "rounds", "map wall", "arena (by id)", "arena (by ref)", "spd(id)", "spd(ref)"
        );
        let rows = e11_arena_hot_path(&ns, rounds);
        for r in &rows {
            println!(
                "{:<6} {:<10} {:<12} {:<14} {:<14} {:<9} {:<9} {}",
                r.n,
                r.rounds,
                format!("{:.2}ms", r.map_wall.as_secs_f64() * 1e3),
                format!("{:.2}ms", r.arena_wall.as_secs_f64() * 1e3),
                format!("{:.2}ms", r.arena_ref_wall.as_secs_f64() * 1e3),
                format!("{:.2}x", r.speedup),
                format!("{:.2}x", r.speedup_ref),
                r.identical
            );
        }
        // Machine-readable mirror for CI artifacts and EXPERIMENTS.md.
        let mut json =
            String::from("{\n  \"experiment\": \"e11_arena_hot_path\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"n\": {}, \"rounds\": {}, \"map_wall_s\": {:.6}, \"arena_wall_s\": {:.6}, \"arena_ref_wall_s\": {:.6}, \"speedup\": {:.3}, \"speedup_ref\": {:.3}, \"identical\": {}}}{}\n",
                r.n,
                r.rounds,
                r.map_wall.as_secs_f64(),
                r.arena_wall.as_secs_f64(),
                r.arena_ref_wall.as_secs_f64(),
                r.speedup,
                r.speedup_ref,
                r.identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_arena.json", &json) {
            Ok(()) => println!("(wrote BENCH_arena.json)\n"),
            Err(e) => println!("(could not write BENCH_arena.json: {e})\n"),
        }
    }

    if want("e12") {
        // Full scale (n up to 1024, shard ladder {1, 2, 4, 8}) only when
        // e12 is asked for by name; the bare "everything" invocation gets
        // a single-size slice so the quickstart stays minutes-sized.
        let explicit = args.iter().any(|a| a == "e12");
        // --seeds doubles as the length dial: heartbeat intervals per run.
        // Big-n rows self-cap to fit the host's memory (the settled trace
        // costs a measured ~14 GiB per interval at n = 1024, and a row
        // peaks at ~2.5x one run), so the dial is a maximum; rows shed
        // ladder rungs before they are skipped.
        let intervals = seeds_flag.unwrap_or(8);
        let ns: &[usize] = if explicit { &[256, 512, 1024] } else { &[256] };
        // E12 compares shard counts, so --shards shrinks the swept ladder
        // ({1, N}) rather than pinning a single value.
        let ladder: Vec<usize> = match shards_flag {
            Some(1) => vec![1],
            Some(s) => vec![1, s],
            None => vec![1, 2, 4, 8],
        };
        println!("== E12: intra-run sharding — wall-clock vs shard count at large n ==");
        println!(
            "(one exclusion, up to {intervals} heartbeat intervals — big-n rows cap their span to fit memory; cores available: {}; identical = output equals the sequential engine)\n",
            gmp_sim::pool::available_jobs()
        );
        println!(
            "{:<6} {:<8} {:<10} {:<10} {:<12} {:<12} {:<9} identical",
            "n", "shards", "intervals", "events", "seq wall", "wall", "speedup"
        );
        let rows = e12_shard_scaling(ns, &ladder, intervals, seed);
        for r in &rows {
            println!(
                "{:<6} {:<8} {:<10} {:<10} {:<12} {:<12} {:<9} {}",
                r.n,
                r.shards,
                r.intervals,
                r.events,
                format!("{:.2}s", r.seq_wall.as_secs_f64()),
                format!("{:.2}s", r.wall.as_secs_f64()),
                format!("{:.2}x", r.speedup),
                r.identical
            );
        }
        for &n in ns {
            let have: Vec<usize> = rows.iter().filter(|r| r.n == n).map(|r| r.shards).collect();
            if have.is_empty() {
                println!("(n={n} skipped: even the shortest exclusion-covering trace exceeds this host's memory)");
            } else if have.len() < ladder.len() {
                println!("(n={n}: shard ladder capped to {have:?} to fit this host's memory)");
            }
        }
        println!("(speedup tracks min(shards, cores) on multicore hosts; output never moves)");
        // Hard gate, not just a printed column: the CI smoke run leans on
        // this step failing if any sharded digest leaves the sequential
        // reference.
        assert!(
            rows.iter().all(|r| r.identical),
            "a sharded run diverged from the sequential engine"
        );
        // Machine-readable mirror for CI artifacts and EXPERIMENTS.md.
        let mut json = String::from("{\n  \"experiment\": \"e12_shard_scaling\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"n\": {}, \"shards\": {}, \"intervals\": {}, \"events\": {}, \"seq_wall_s\": {:.6}, \"wall_s\": {:.6}, \"speedup\": {:.3}, \"identical\": {}}}{}\n",
                r.n,
                r.shards,
                r.intervals,
                r.events,
                r.seq_wall.as_secs_f64(),
                r.wall.as_secs_f64(),
                r.speedup,
                r.identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_shard.json", &json) {
            Ok(()) => println!("(wrote BENCH_shard.json)\n"),
            Err(e) => println!("(could not write BENCH_shard.json: {e})\n"),
        }
    }

    if want("e13") {
        // Full scale (n up to 4096) only when e13 is asked for by name;
        // the bare "everything" invocation gets the minutes-sized sizes.
        let explicit = args.iter().any(|a| a == "e13");
        // --seeds is the seeds sampled per (topology, n) cell.
        let seeds = seeds_flag.unwrap_or(4);
        let ns: &[usize] = if explicit {
            &[64, 256, 1024, 4096]
        } else {
            &[64, 256]
        };
        println!("== E13: monitoring topologies — message load and exclusion latency vs n ==");
        println!(
            "(one exclusion per cell, {seeds} seeds; flat = the paper's clique, \
             sparse = 4-regular ring, hier = groups of ceil(sqrt n) + leader overlay;\n \
             identical = every seed reaches the same final membership as the first \
             admitted topology of that n — cells too big for this host are skipped)\n"
        );
        println!(
            "{:<6} {:<8} {:<10} {:<11} {:<10} {:<12} {:<10} identical",
            "n", "topo", "mon.edges", "messages", "protocol", "latency", "events"
        );
        let rows = e13_topology_sweep(ns, seeds);
        for r in &rows {
            println!(
                "{:<6} {:<8} {:<10} {:<11.0} {:<10.0} {:<12.1} {:<10} {}",
                r.n,
                r.topology,
                r.degree_sum,
                r.messages,
                r.protocol,
                r.latency,
                r.events,
                r.identical
            );
        }
        for &n in ns {
            for name in e13_topology_names() {
                if !rows.iter().any(|r| r.n == n && r.topology == name) {
                    println!(
                        "(n={n} {name}: skipped — the settled trace exceeds this host's memory)"
                    );
                }
            }
        }
        println!("(protocol cost stays flat: agreement still runs on the full view; only the monitoring load scales with the graph)");
        // Hard gate, not just a printed column: CI leans on this step
        // failing if any topology changes the agreed membership.
        assert!(
            rows.iter().all(|r| r.identical),
            "a topology changed the final membership outcome"
        );
        // Machine-readable mirror for CI artifacts and EXPERIMENTS.md.
        let mut json =
            String::from("{\n  \"experiment\": \"e13_topology_sweep\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"n\": {}, \"topology\": \"{}\", \"seeds\": {}, \"intervals\": {}, \"degree_sum\": {}, \"events\": {}, \"messages\": {:.1}, \"protocol\": {:.1}, \"latency\": {:.1}, \"identical\": {}}}{}\n",
                r.n,
                r.topology,
                r.seeds,
                r.intervals,
                r.degree_sum,
                r.events,
                r.messages,
                r.protocol,
                r.latency,
                r.identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_topology.json", &json) {
            Ok(()) => println!("(wrote BENCH_topology.json)\n"),
            Err(e) => println!("(could not write BENCH_topology.json: {e})\n"),
        }
    }

    if want("e14") {
        // --seeds is the schedules sampled per scenario row (the CI smoke
        // run uses `tables e14 --seeds 8`; default 4). Every seed runs
        // twice: once sequential, once sharded, and the two must agree.
        let seeds = seeds_flag.unwrap_or(4);
        println!("== E14: replicated log over membership — throughput, failover, safety ==");
        println!(
            "(multipaxos riding on views: Mgr = leader, view version = ballot, view \
             install = reconfiguration;\n {seeds} seeds per scenario, each run sequential \
             AND sharded; crash = leader dies mid-run, churn = + a joiner mid-admission;\n \
             prefix = survivors' logs prefix-identical, sharded = sharded engine equals \
             sequential)\n"
        );
        println!(
            "{:<8} {:<6} {:<9} {:<12} {:<20} {:<22} {:<7} sharded",
            "sched",
            "seeds",
            "ops/run",
            "ops/ktick",
            "latency p50/p99",
            "failover p50/max",
            "prefix"
        );
        let rows = e14_replicated_log_with(seeds, clients_flag, batch_flag, window_flag);
        for r in &rows {
            let failover = if r.failover.count == 0 {
                "-".to_string()
            } else {
                format!("{} / {}", r.failover.p50, r.failover.max)
            };
            println!(
                "{:<8} {:<6} {:<9.0} {:<12.1} {:<20} {:<22} {:<7} {}",
                r.scenario,
                r.seeds,
                r.committed,
                r.throughput,
                format!("{} / {}", r.latency.p50, r.latency.p99),
                failover,
                r.prefix_ok,
                r.sharded_identical
            );
        }
        println!(
            "(failover p50 ≈ detection timeout + three-phase reconfiguration + log recovery; \
             steady-state latency is one client→leader→quorum round trip)"
        );
        // Hard gates, not just printed columns: the CI smoke run leans on
        // this step failing if any survivor log diverges or the sharded
        // engine leaves the sequential reference.
        assert!(
            rows.iter().all(|r| r.prefix_ok),
            "a survivor's committed log diverged"
        );
        assert!(
            rows.iter().all(|r| r.sharded_identical),
            "a sharded log run diverged from the sequential engine"
        );
        assert!(
            rows.iter().all(|r| r.committed > 0.0),
            "a scenario committed nothing"
        );
        // Machine-readable mirror for CI artifacts and EXPERIMENTS.md.
        let mut json =
            String::from("{\n  \"experiment\": \"e14_replicated_log\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"replicas\": {}, \"clients\": {}, \"seeds\": {}, \"horizon\": {}, \"committed\": {:.1}, \"ops_per_ktick\": {:.2}, \"latency_p50\": {}, \"latency_p99\": {}, \"failover_p50\": {}, \"failover_max\": {}, \"prefix_ok\": {}, \"sharded_identical\": {}}}{}\n",
                r.scenario,
                r.replicas,
                r.clients,
                r.seeds,
                r.horizon,
                r.committed,
                r.throughput,
                r.latency.p50,
                r.latency.p99,
                r.failover.p50,
                r.failover.max,
                r.prefix_ok,
                r.sharded_identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_log.json", &json) {
            Ok(()) => println!("(wrote BENCH_log.json)\n"),
            Err(e) => println!("(could not write BENCH_log.json: {e})\n"),
        }
    }

    if want("e15") {
        // --seeds is the schedules sampled per ladder cell (the CI smoke
        // run uses `tables e15 --seeds 8`; default 4); --batch/--window
        // shrink the ladder to baseline + that one cell.
        let seeds = seeds_flag.unwrap_or(4);
        println!("== E15: batching & pipelining ladder — amortized messages per command ==");
        println!(
            "(steady schedule, 5 replicas; batch = max commands the leader coalesces per \
             AcceptBatch,\n window = requests each client keeps in flight; cell (1,1) is the \
             unbatched per-slot baseline;\n msgs/op counts log-layer wire messages per committed \
             operation; {seeds} seeds per cell,\n each run sequential AND sharded)\n"
        );
        println!(
            "{:<7} {:<8} {:<6} {:<9} {:<12} {:<9} {:<18} {:<9} {:<7} sharded",
            "batch",
            "window",
            "seeds",
            "ops/run",
            "ops/ktick",
            "msgs/op",
            "latency p50/p99",
            "speedup",
            "prefix"
        );
        let rows = e15_log_batching(seeds, clients_flag, batch_flag, window_flag);
        for r in &rows {
            println!(
                "{:<7} {:<8} {:<6} {:<9.0} {:<12.1} {:<9.2} {:<18} {:<9.2} {:<7} {}",
                r.batch,
                r.window,
                r.seeds,
                r.committed,
                r.throughput,
                r.msgs_per_op,
                format!("{} / {}", r.latency.p50, r.latency.p99),
                r.speedup,
                r.prefix_ok,
                r.sharded_identical
            );
        }
        println!(
            "(per command the per-slot path costs 3(n-1)+2 messages; a full batch of B \
             amortizes the\n quorum round to 3(n-1)/B + 2 — pipelining lifts throughput, \
             batching cuts msgs/op)"
        );
        // The same hard gates as E14, on every cell…
        assert!(
            rows.iter().all(|r| r.prefix_ok),
            "a replica's committed log diverged"
        );
        assert!(
            rows.iter().all(|r| r.sharded_identical),
            "a sharded ladder run diverged from the sequential engine"
        );
        assert!(
            rows.iter().all(|r| r.committed > 0.0),
            "a ladder cell committed nothing"
        );
        // …plus the tentpole's perf gates. Pipelined cells must beat the
        // closed-loop baseline ≥ 2× on committed throughput, and a cell
        // that both batches and pipelines must show the amortization in
        // msgs/op. (Explicit --batch/--window can deselect such cells;
        // the gates then have nothing to bind and CI's default ladder
        // still enforces them.)
        let pipelined: Vec<_> = rows.iter().filter(|r| r.window > 1).collect();
        if let Some(best) = pipelined
            .iter()
            .map(|r| r.speedup)
            .max_by(|a, b| a.total_cmp(b))
        {
            assert!(
                best >= 2.0,
                "pipelining gate: best cell reached only {best:.2}x the unbatched baseline"
            );
        }
        if let Some(least) = rows
            .iter()
            .filter(|r| r.batch > 1 && r.window > 1)
            .map(|r| r.msgs_per_op)
            .min_by(|a, b| a.total_cmp(b))
        {
            assert!(
                least < 0.8 * rows[0].msgs_per_op,
                "batching gate: {least:.2} msgs/op does not amortize the baseline's {:.2}",
                rows[0].msgs_per_op
            );
        }

        // The joiner-sync arm: with compaction forced low, a late joiner
        // must catch up from snapshot + tail, not by replaying the log.
        let sync = e15_joiner_sync(seed);
        println!(
            "\njoiner sync (compact_keep {}, join at {}): log {} slots, SyncOk = snapshot + {} \
             tail entries,\n joiner base {} (booted mid-log), replicas agree: {}",
            sync.compact_keep, sync.join_at, sync.log_len, sync.tail, sync.joiner_base, sync.agree
        );
        assert!(sync.agree, "a replica disagreed on a shared slot range");
        assert!(
            sync.snapshot && sync.joiner_base > 0,
            "the joiner replayed the whole prefix instead of booting from a snapshot"
        );
        assert!(
            sync.tail <= 2 * sync.compact_keep as u64 + 64,
            "SyncOk tail {} exceeds the compaction budget {}",
            sync.tail,
            sync.compact_keep
        );
        assert!(
            sync.log_len >= 4 * sync.tail.max(1),
            "SyncOk payload is not O(tail): {} entries for a {}-slot log",
            sync.tail,
            sync.log_len
        );
        // Machine-readable mirror for CI artifacts and EXPERIMENTS.md.
        let mut json = String::from("{\n  \"experiment\": \"e15_log_batching\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"batch\": {}, \"window\": {}, \"replicas\": {}, \"clients\": {}, \"seeds\": {}, \"horizon\": {}, \"committed\": {:.1}, \"ops_per_ktick\": {:.2}, \"msgs_per_op\": {:.2}, \"latency_p50\": {}, \"latency_p99\": {}, \"speedup\": {:.2}, \"prefix_ok\": {}, \"sharded_identical\": {}}}{}\n",
                r.batch,
                r.window,
                r.replicas,
                r.clients,
                r.seeds,
                r.horizon,
                r.committed,
                r.throughput,
                r.msgs_per_op,
                r.latency.p50,
                r.latency.p99,
                r.speedup,
                r.prefix_ok,
                r.sharded_identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"joiner_sync\": {{\"compact_keep\": {}, \"join_at\": {}, \"horizon\": {}, \"log_len\": {}, \"tail\": {}, \"snapshot\": {}, \"joiner_base\": {}, \"agree\": {}}}\n}}\n",
            sync.compact_keep,
            sync.join_at,
            sync.horizon,
            sync.log_len,
            sync.tail,
            sync.snapshot,
            sync.joiner_base,
            sync.agree
        ));
        match std::fs::write("BENCH_log_batching.json", &json) {
            Ok(()) => println!("(wrote BENCH_log_batching.json)\n"),
            Err(e) => println!("(could not write BENCH_log_batching.json: {e})\n"),
        }
    }

    if want("a1") {
        println!("== A1: Appendix — knowledge ladder IsSysView(x) => (E<>)^y IsSysView(x-y) ==");
        print!("{}", a1_epistemic_ladder(seed));
        println!("(max-known-depth = x means full causal knowledge of all past views)\n");
    }

    if want("ab1") {
        println!("== AB1: ablation — heartbeat gossip (F2) on/off ==");
        println!(
            "{:<8} {:<16} {:<12} GMP ok",
            "gossip", "faulty-reports", "settled at"
        );
        for r in ab1_gossip(seed) {
            println!(
                "{:<8} {:<16} {:<12} {}",
                r.gossip, r.reports, r.settled_at, r.gmp_ok
            );
        }
        println!();
    }

    if want("ab2") {
        println!("== AB2: ablation — detection-timeout sweep ==");
        println!(
            "{:<14} {:<20} {:<22} safety",
            "suspect_after", "exclusion latency", "spurious suspicions"
        );
        for r in ab2_timeout_sweep(seed) {
            println!(
                "{:<14} {:<20} {:<22} {}",
                r.suspect_after,
                r.exclusion_latency
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.spurious_suspicions,
                if r.safe { "HOLDS" } else { "VIOLATED" }
            );
        }
        println!();
    }
}
