//! Workloads regenerating the paper's analytic results (§7.2–§7.3,
//! Table 1, Figures 1/3/4/11, Appendix).
//!
//! Counting convention (see `EXPERIMENTS.md`): only update/reconfiguration
//! protocol messages count (`gmp_core::PROTOCOL_TAGS`); a broadcast counts
//! one message per receiver; heartbeats, suspicion reports, join requests
//! and state transfer are excluded. The paper's constants assume the same
//! convention up to O(1) differences in whether known-faulty members are
//! still addressed.

use gmp_baselines::{SymMsg, SymmetricMember};
use gmp_core::{
    cluster_with, is_protocol_tag, ClusterBuilder, Config, Flat, Hierarchical, JoinConfig, Member,
    Msg, Sparse, Topology,
};
use gmp_log::{
    logs_agree, prefix_identical, AppMsg, LogClusterBuilder, LogCmd, LogConfig, LogProc,
};
use gmp_props::{analyze, check_all, check_safety, knowledge_ladder, render_ladder};
use gmp_sim::{
    pool, run_seeds_parallel, summarize_runs, BatchConfig, Builder, Sim, Stats, Summary, TraceKind,
};
use gmp_types::{Note, ProcessId, View};
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Total protocol messages sent in a run (§7.2 counting convention).
pub fn protocol_messages(stats: &Stats) -> u64 {
    stats.sends_matching(is_protocol_tag)
}

// ---------------------------------------------------------------------
// E1 — single exclusion: ≤ 3n − 5 messages (§7.2 "best case", plain
// two-phase update)
// ---------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Clone, Debug)]
pub struct ExclusionRow {
    /// Group size.
    pub n: usize,
    /// Protocol messages measured for one exclusion.
    pub measured: u64,
    /// The paper's bound `3n − 5`.
    pub formula: u64,
}

/// Measures the message cost of excluding one crashed member at each group
/// size.
pub fn e1_exclusion(ns: &[usize], seed: u64) -> Vec<ExclusionRow> {
    ns.iter()
        .map(|&n| {
            let mut sim = cluster_with(n, seed + n as u64, Config::default());
            sim.crash_at(ProcessId(n as u32 - 1), 300);
            sim.run_until(8_000);
            ExclusionRow {
                n,
                measured: protocol_messages(sim.stats()),
                formula: (3 * n - 5) as u64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E2 — condensed rounds: successive failures amortize the invitation
// (§3.1, §7.2: standard two-phase pays ~n/2−1 extra messages/exclusion)
// ---------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Clone, Debug)]
pub struct CondensedRow {
    /// Group size.
    pub n: usize,
    /// Number of members crashed (in one burst).
    pub victims: usize,
    /// Total protocol messages with condensed rounds.
    pub compressed: u64,
    /// Total protocol messages with the standard two-phase algorithm.
    pub standard: u64,
    /// Measured savings per exclusion.
    pub saved_per_exclusion: f64,
}

/// Crashes a burst of members so the coordinator's queue stays non-empty
/// and successive rounds compress; compares against the uncompressed
/// algorithm on the identical schedule.
///
/// The paper's scenario assumes `Mgr` cannot fail here (§3.1 basic
/// algorithm), so the majority requirement is disabled for both runs.
pub fn e2_condensed(ns: &[usize], seed: u64) -> Vec<CondensedRow> {
    ns.iter()
        .map(|&n| {
            let victims = n / 2;
            let run = |compression: bool| -> u64 {
                let cfg = Config::builder()
                    .mgr_majority(false)
                    .compression(compression)
                    .build();
                let mut sim = cluster_with(n, seed + n as u64, cfg);
                // Crash the junior half in one burst: all their exclusions
                // are pending at once, which is when compression matters.
                for k in 0..victims {
                    sim.crash_at(ProcessId((n - 1 - k) as u32), 300 + k as u64);
                }
                sim.run_until(20_000);
                protocol_messages(sim.stats())
            };
            let compressed = run(true);
            let standard = run(false);
            CondensedRow {
                n,
                victims,
                compressed,
                standard,
                saved_per_exclusion: (standard as f64 - compressed as f64) / victims as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E3 — one successful reconfiguration: ≤ 5n − 9 messages (§7.2)
// ---------------------------------------------------------------------

/// One row of the E3 table.
#[derive(Clone, Debug)]
pub struct ReconfRow {
    /// Group size.
    pub n: usize,
    /// Protocol messages measured for the coordinator's replacement.
    pub measured: u64,
    /// The paper's bound `5n − 9`.
    pub formula: u64,
}

/// Measures the cost of replacing a crashed coordinator at each group size.
pub fn e3_reconfiguration(ns: &[usize], seed: u64) -> Vec<ReconfRow> {
    ns.iter()
        .map(|&n| {
            let mut sim = cluster_with(n, seed + n as u64, Config::default());
            sim.crash_at(ProcessId(0), 300);
            sim.run_until(10_000);
            ReconfRow {
                n,
                measured: protocol_messages(sim.stats()),
                formula: (5 * n - 9) as u64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E4 — worst case: successive failed reconfigurations cost O(n²) (§7.2)
// ---------------------------------------------------------------------

/// One row of the E4 table.
#[derive(Clone, Debug)]
pub struct WorstCaseRow {
    /// Group size.
    pub n: usize,
    /// Initiators that died mid-reconfiguration before one succeeded.
    pub failed_initiators: usize,
    /// Total protocol messages until the view stabilized.
    pub measured: u64,
    /// `measured / n²` — flat across `n` iff the cost is quadratic.
    pub per_n_squared: f64,
}

/// Crashes the coordinator and then each successive reconfigurer one
/// commit-send into its commit broadcast, until the last legal initiator
/// (bounded by the minority-failure requirement) completes.
pub fn e4_worst_case(ns: &[usize], seed: u64) -> Vec<WorstCaseRow> {
    ns.iter()
        .map(|&n| {
            assert!(n >= 7, "worst-case cascade needs n >= 7");
            let f = (n - 1) / 2 - 1; // initiators that may die while a majority remains
            let mut sim = cluster_with(n, seed + n as u64, Config::default());
            sim.crash_at(ProcessId(0), 300);
            for k in 1..=f {
                // Each initiator dies right after its first commit send —
                // a (potentially invisible) partial commit every round.
                sim.crash_after_sends_at(ProcessId(k as u32), 0, Some("reconf-commit"), 1);
            }
            sim.run_until(60_000);
            WorstCaseRow {
                n,
                failed_initiators: f,
                measured: protocol_messages(sim.stats()),
                per_n_squared: protocol_messages(sim.stats()) as f64 / (n * n) as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E5 — symmetric baseline: an order of magnitude more messages (§1, §8)
// ---------------------------------------------------------------------

/// One row of the E5 table.
#[derive(Clone, Debug)]
pub struct SymmetricRow {
    /// Group size.
    pub n: usize,
    /// Messages the symmetric protocol spends on one exclusion.
    pub symmetric: u64,
    /// Messages the paper's asymmetric protocol spends.
    pub asymmetric: u64,
    /// Cost ratio.
    pub ratio: f64,
}

/// Compares one exclusion under the symmetric all-to-all protocol against
/// the asymmetric algorithm.
pub fn e5_symmetric(ns: &[usize], seed: u64) -> Vec<SymmetricRow> {
    ns.iter()
        .map(|&n| {
            let view: View = (0..n as u32).map(ProcessId).collect();
            let mut sym: Sim<SymMsg, SymmetricMember> =
                Builder::new().seed(seed + n as u64).build();
            for _ in 0..n {
                sym.add_node(SymmetricMember::new(view.clone(), 40, 200));
            }
            sym.crash_at(ProcessId(n as u32 - 1), 300);
            sym.run_until(10_000);
            let symmetric = sym.stats().sends("suspect") + sym.stats().sends("ready");

            let asymmetric = e1_exclusion(&[n], seed)[0].measured;
            SymmetricRow {
                n,
                symmetric,
                asymmetric,
                ratio: symmetric as f64 / asymmetric as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E6 — fully online operation: a continuous stream of joins and failures
// (§1, §7, §8)
// ---------------------------------------------------------------------

/// Result of the churn experiment.
#[derive(Clone, Debug)]
pub struct ChurnOutcome {
    /// Initial group size.
    pub n: usize,
    /// Joins processed.
    pub joins: usize,
    /// Failures processed.
    pub crashes: usize,
    /// Membership changes committed (= final version).
    pub changes_committed: u64,
    /// Protocol messages spent in total.
    pub protocol_messages: u64,
    /// Whether the full GMP specification held on the run.
    pub gmp_ok: bool,
}

/// Runs a stream of interleaved joins and crashes and checks that every
/// change commits and the specification holds end to end.
pub fn e6_churn(seed: u64) -> ChurnOutcome {
    let n = 6;
    let joins = 3;
    let mut builder = ClusterBuilder::new(n, Config::default());
    for j in 0..joins {
        builder = builder.joiner(JoinConfig::new(800 + 900 * j as u64, vec![ProcessId(1)]));
    }
    let mut sim = builder.sim(Builder::new().seed(seed)).build();
    // Two failures interleaved with the joins.
    sim.crash_at(ProcessId(4), 1_300);
    sim.crash_at(ProcessId(5), 2_700);
    sim.run_until(15_000);
    let report = check_all(sim.trace());
    let a = analyze(sim.trace());
    ChurnOutcome {
        n,
        joins,
        crashes: 2,
        changes_committed: a.final_system_view().map(|v| v.ver).unwrap_or(0),
        protocol_messages: protocol_messages(sim.stats()),
        gmp_ok: report.is_ok(),
    }
}

// ---------------------------------------------------------------------
// E7 — fault tolerance bounds (§3.1 Remarks, §4.3)
// ---------------------------------------------------------------------

/// One row of the fault-tolerance table.
#[derive(Clone, Debug)]
pub struct ToleranceRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Group size.
    pub n: usize,
    /// Members crashed.
    pub crashed: usize,
    /// Views committed after the failures.
    pub views_committed: u64,
    /// Whether the surviving members converged on a view excluding the
    /// crashed ones.
    pub recovered: bool,
}

/// Exercises the tolerance bounds: `|Memb|−1` failures under the basic
/// algorithm (`Mgr` immortal), a minority under the final algorithm, and a
/// majority (which must block).
pub fn e7_tolerance(seed: u64) -> Vec<ToleranceRow> {
    let mut rows = Vec::new();

    // Basic algorithm (no Mgr majority): n−1 failures tolerated.
    {
        let n = 5;
        let mut sim = cluster_with(n, seed, Config::builder().mgr_majority(false).build());
        for k in 1..n {
            sim.crash_at(ProcessId(k as u32), 300 + 400 * k as u64);
        }
        sim.run_until(30_000);
        let m = sim.node(ProcessId(0));
        rows.push(ToleranceRow {
            scenario: "basic, n-1 failures",
            n,
            crashed: n - 1,
            views_committed: m.ver(),
            recovered: m.view().len() == 1,
        });
    }

    // Final algorithm: minority of failures between views — progress.
    {
        let n = 7;
        let mut sim = cluster_with(n, seed + 1, Config::default());
        sim.crash_at(ProcessId(5), 300);
        sim.crash_at(ProcessId(6), 320);
        sim.run_until(15_000);
        let a = analyze(sim.trace());
        let fv = a.final_system_view().expect("views exist");
        rows.push(ToleranceRow {
            scenario: "final, minority (2/7)",
            n,
            crashed: 2,
            views_committed: fv.ver,
            recovered: fv.ver == 2 && fv.members.len() == 5,
        });
    }

    // Final algorithm: majority of simultaneous failures — no progress.
    {
        let n = 7;
        let mut sim = cluster_with(n, seed + 2, Config::default());
        for k in 3..7 {
            sim.crash_at(ProcessId(k as u32), 300);
        }
        sim.run_until(15_000);
        let a = analyze(sim.trace());
        let committed = a.final_system_view().map(|v| v.ver).unwrap_or(0);
        rows.push(ToleranceRow {
            scenario: "final, majority (4/7)",
            n,
            crashed: 4,
            views_committed: committed,
            recovered: committed == 0, // "recovered" here = correctly blocked
        });
    }
    rows
}

// ---------------------------------------------------------------------
// T1 — Table 1: multiple reconfiguration initiations
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// `p`'s actual state (the paper's first column).
    pub p_actual: &'static str,
    /// What `q` believes about `p`.
    pub q_thinks_p: &'static str,
    /// The paper's expected outcome for `q`.
    pub expect_q: &'static str,
    /// The paper's expected outcome for `p`.
    pub expect_p: &'static str,
    /// Whether `q` initiated in the measured run.
    pub q_initiated: bool,
    /// Whether `p` initiated in the measured run.
    pub p_initiated: bool,
}

/// Reproduces Table 1: `Mgr` is dead; `p` (ranked below `Mgr`) and `q`
/// (ranked below `p`) react according to `p`'s actual state and `q`'s
/// belief about it.
pub fn t1_initiations(seed: u64) -> Vec<Table1Row> {
    let p = ProcessId(1);
    let q = ProcessId(2);
    let scenarios: [(
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        bool,
        bool,
    ); 4] = [
        // (p actual, q thinks p, expected q, expected p, crash_p, inject_q)
        ("Up", "Up", "No", "Yes", false, false),
        ("Failed", "Up", "Eventually", "No", true, false),
        ("Up", "Failed", "Yes", "Yes", false, true),
        ("Failed", "Failed", "Yes", "No", true, true),
    ];
    scenarios
        .iter()
        .map(
            |&(p_actual, q_thinks, expect_q, expect_p, crash_p, inject_q)| {
                let mut sim = cluster_with(5, seed, Config::default());
                sim.crash_at(ProcessId(0), 300);
                if crash_p {
                    sim.crash_at(p, 310);
                }
                if inject_q {
                    // The table's premise is that Mgr is already perceived
                    // faulty when q's belief about p matters: inject the
                    // (spurious) suspicion right around everyone's detection
                    // of Mgr's crash. Injected earlier, the still-live Mgr
                    // would simply exclude p through the normal update path.
                    sim.run_until(510);
                    sim.node_mut(q).inject_suspicion(p);
                }
                sim.run_until(10_000);
                let initiated = |pid: ProcessId| {
                    sim.trace().notes().any(|(ev, note)| {
                        ev.pid == pid && matches!(note, Note::ReconfStarted { .. })
                    })
                };
                Table1Row {
                    p_actual,
                    q_thinks_p: q_thinks,
                    expect_q,
                    expect_p,
                    q_initiated: initiated(q),
                    p_initiated: initiated(p),
                }
            },
        )
        .collect()
}

// ---------------------------------------------------------------------
// F1 / F3 / F4 — protocol-structure figures as message timelines
// ---------------------------------------------------------------------

/// Figure 1: the two-phase update structure, rendered as the message
/// timeline of a single exclusion.
pub fn f1_two_phase_timeline(seed: u64) -> String {
    let mut sim = cluster_with(5, seed, Config::default());
    sim.crash_at(ProcessId(4), 300);
    sim.run_until(5_000);
    sim.trace().render(|e| match &e.kind {
        TraceKind::Send { tag, .. } => is_protocol_tag(tag),
        TraceKind::Crash => true,
        TraceKind::Note(Note::ViewInstalled { .. }) => true,
        _ => false,
    })
}

/// Figure 3 demonstration: `Mgr` dies one send into its commit broadcast;
/// the system view transiently fails to exist, then reconfiguration
/// restores it. Returns (timeline, gmp_report_ok).
pub fn f3_mid_commit_crash(seed: u64) -> (String, bool) {
    let mut sim = cluster_with(5, seed, Config::default());
    sim.crash_at(ProcessId(4), 300);
    sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);
    sim.run_until(20_000);
    let timeline = sim.trace().render(|e| match &e.kind {
        TraceKind::Send { tag, .. } => *tag == "commit" || *tag == "reconf-commit",
        TraceKind::Crash | TraceKind::Quit => true,
        TraceKind::Note(Note::ViewInstalled { .. }) => true,
        TraceKind::Note(Note::ReconfStarted { .. }) => true,
        _ => false,
    });
    (timeline, check_safety(sim.trace()).is_ok())
}

/// Figure 4 demonstration: two concurrent initiators; the majority
/// requirement keeps the resulting system view *unique* (GMP-2) even when
/// more than one initiator manages to commit — their proposals are forced
/// to coincide. Returns (initiations, distinct memberships of version 1,
/// gmp_safety_ok).
pub fn f4_unique_view(seed: u64) -> (usize, usize, bool) {
    let mut sim = cluster_with(5, seed, Config::default());
    sim.crash_at(ProcessId(0), 300);
    // q spuriously believes p faulty once Mgr's death is suspected: both
    // initiate (Table 1, row 3).
    sim.run_until(510);
    sim.node_mut(ProcessId(2)).inject_suspicion(ProcessId(1));
    sim.run_until(15_000);
    let initiations = sim
        .trace()
        .notes()
        .filter(|(_, n)| matches!(n, Note::ReconfStarted { .. }))
        .count();
    let a = analyze(sim.trace());
    let mut memberships: Vec<Vec<ProcessId>> = a
        .memberships_of_ver(1)
        .into_iter()
        .map(|v| v.members.clone())
        .collect();
    memberships.sort();
    memberships.dedup();
    let safety = check_safety(sim.trace()).is_ok();
    (initiations, memberships.len(), safety)
}

// ---------------------------------------------------------------------
// A1 — epistemic ladder (Appendix)
// ---------------------------------------------------------------------

/// Renders the knowledge-ladder table over a quiescent multi-change run.
pub fn a1_epistemic_ladder(seed: u64) -> String {
    let mut sim = cluster_with(6, seed, Config::default());
    sim.crash_at(ProcessId(5), 300);
    sim.crash_at(ProcessId(4), 1_500);
    sim.crash_at(ProcessId(3), 3_000);
    sim.run_until(15_000);
    let rows = knowledge_ladder(sim.trace());
    render_ladder(&rows)
}

// ---------------------------------------------------------------------
// AB1 — ablation: heartbeat gossip (F2) on/off
// ---------------------------------------------------------------------

/// One row of the gossip ablation.
#[derive(Clone, Debug)]
pub struct GossipRow {
    /// Whether heartbeat gossip was enabled.
    pub gossip: bool,
    /// `FaultyReport` messages sent (duplicated observations).
    pub reports: u64,
    /// Simulated time at which the last view was installed.
    pub settled_at: u64,
    /// Whether the full specification held.
    pub gmp_ok: bool,
}

/// Measures what F2 gossip buys: with suspicions piggybacked on
/// heartbeats, beliefs spread without extra reports and multi-failure
/// bursts settle sooner.
pub fn ab1_gossip(seed: u64) -> Vec<GossipRow> {
    [true, false]
        .into_iter()
        .map(|gossip| {
            let cfg = Config::builder().gossip(gossip).build();
            let mut sim = cluster_with(8, seed, cfg);
            sim.crash_at(ProcessId(6), 400);
            sim.crash_at(ProcessId(7), 410);
            sim.run_until(20_000);
            let settled_at = sim
                .trace()
                .notes()
                .filter(|(_, n)| matches!(n, Note::ViewInstalled { .. }))
                .map(|(e, _)| e.time)
                .max()
                .unwrap_or(0);
            GossipRow {
                gossip,
                reports: sim.stats().sends("faulty-report"),
                settled_at,
                gmp_ok: check_all(sim.trace()).is_ok(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// AB2 — ablation: detection-timeout sweep (§2.2 spurious detections)
// ---------------------------------------------------------------------

/// One row of the timeout sweep.
#[derive(Clone, Debug)]
pub struct TimeoutRow {
    /// The failure detector's silence threshold.
    pub suspect_after: u64,
    /// Time from the real crash to the last survivor installing the
    /// exclusion (`None` if it never committed).
    pub exclusion_latency: Option<u64>,
    /// `faulty` events naming processes that never actually crashed.
    pub spurious_suspicions: usize,
    /// Whether GMP *safety* held (it must, at any timeout).
    pub safe: bool,
}

/// Sweeps the suspicion timeout: long timeouts trade detection latency for
/// accuracy; timeouts below the heartbeat interval manufacture the
/// spurious detections of §2.2 — which the protocol resolves through
/// GMP-5 exclusions rather than by diverging.
pub fn ab2_timeout_sweep(seed: u64) -> Vec<TimeoutRow> {
    let crash_time = 500;
    [30u64, 100, 200, 400, 800]
        .into_iter()
        .map(|suspect_after| {
            let cfg = Config::builder().timing(40, suspect_after).build();
            let mut sim = cluster_with(6, seed, cfg);
            sim.crash_at(ProcessId(5), crash_time);
            sim.run_until(30_000);
            let a = analyze(sim.trace());
            let exclusion_latency = a
                .views
                .values()
                .flat_map(|vs| vs.iter())
                .filter(|v| !v.members.contains(&ProcessId(5)))
                .map(|v| sim.trace().events[v.event].time)
                .max()
                .and_then(|t| t.checked_sub(crash_time));
            let spurious = a
                .faulty
                .iter()
                .filter(|f| f.suspect != ProcessId(5))
                .map(|f| (f.observer, f.suspect))
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            TimeoutRow {
                suspect_after,
                exclusion_latency,
                spurious_suspicions: spurious,
                safe: check_safety(sim.trace()).is_ok(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E8 — multi-seed schedule sweep: exclusion cost across the schedule
// space, up to n = 128
// ---------------------------------------------------------------------

/// One row of the E8 seed sweep: aggregate statistics of a single-exclusion
/// run across every seed in a range.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Group size.
    pub n: usize,
    /// Seeds swept.
    pub seeds: usize,
    /// The paper's per-exclusion bound `3n − 5` for reference.
    pub formula: u64,
    /// Protocol messages per run (§7.2 counting convention).
    pub protocol: Summary,
    /// Trace length per run (every stamped event, heartbeats included).
    pub events: Summary,
}

/// Sweeps the single-exclusion scenario of E1 across a seed range at each
/// group size, reporting percentile statistics of the message cost.
///
/// Message delays are resampled per seed, so this samples the schedule
/// space the paper's bounds quantify over: the protocol-message percentiles
/// landing on the `3n − 5` line for *every* seed is the schedule-
/// independence claim of §7.2, measured rather than assumed. Detector
/// timing is coarsened (`timing(100, 400)`) so heartbeat traffic stays
/// tractable at `n = 128`; protocol-message counts are unaffected.
///
/// Runs execute on the [`run_seeds_parallel`] worker pool — `jobs = None`
/// auto-detects the core count (`tables … --jobs N` overrides it). The
/// rows are identical for every `jobs` value; only wall-clock time moves
/// (E10 measures by how much).
///
/// ```
/// use gmp_bench::e8_seed_sweep;
///
/// let rows = e8_seed_sweep(&[8], 0..4, None);
/// assert_eq!(rows[0].seeds, 4);
/// assert_eq!(rows[0].protocol.max, rows[0].formula);
/// ```
pub fn e8_seed_sweep(ns: &[usize], seeds: Range<u64>, jobs: Option<NonZeroUsize>) -> Vec<SweepRow> {
    ns.iter()
        .map(|&n| {
            let runs = run_seeds_parallel(seeds.clone(), BatchConfig::new(2_000), jobs, |seed| {
                exclusion_sweep_run(n, seed)
            });
            SweepRow {
                n,
                seeds: runs.len(),
                formula: (3 * n - 5) as u64,
                protocol: summarize_runs(&runs, |r| r.stats.sends_matching(is_protocol_tag)),
                events: summarize_runs(&runs, |r| r.events as u64),
            }
        })
        .collect()
}

/// The per-seed scenario E8 and E10 sweep: one exclusion under coarsened
/// detector timing, delays resampled by the seed.
fn exclusion_sweep_run(n: usize, seed: u64) -> Sim<Msg, Member> {
    let mut sim = cluster_with(n, seed, Config::builder().timing(100, 400).build());
    sim.crash_at(ProcessId(n as u32 - 1), 300);
    sim
}

// ---------------------------------------------------------------------
// E9 — heartbeat fan-out cost: messages vs. payload constructions per
// interval (the shared-digest aggregation of the F2 gossip source)
// ---------------------------------------------------------------------

/// One row of the E9 heartbeat fan-out table.
#[derive(Clone, Debug)]
pub struct FanoutRow {
    /// Group size.
    pub n: usize,
    /// Heartbeat intervals the run spans.
    pub intervals: u64,
    /// Heartbeat messages sent in total (protocol-visible; unchanged by the
    /// digest encoding).
    pub heartbeats: u64,
    /// Heartbeat messages per interval — Θ(n²) by design: every Active
    /// member beats every unsuspected peer.
    pub msgs_per_interval: f64,
    /// Faulty-set payloads materialized across the run (one per member per
    /// *change* of its faulty set).
    pub payload_builds: u64,
    /// What the per-peer-clone encoding would have materialized: one `Vec`
    /// per heartbeat message plus one per member per tick.
    pub legacy_builds: u64,
}

/// Measures the heartbeat hot path at each group size: one exclusion makes
/// every member's faulty set change (so the digest path must re-publish),
/// and the run then settles back into empty-beat steady state.
///
/// The digest refactor leaves the *message* count untouched — the paper
/// costs protocols in messages (§7.2), and heartbeats stay all-to-all at
/// Θ(n²) per interval — but payload constructions collapse from one per
/// message (`legacy_builds`, Θ(n²) per interval) to one per faulty-set
/// change (`payload_builds`, ≤ a small multiple of n for the whole run).
///
/// E9 is one run per group size, so it parallelizes over the `ns` axis
/// instead of a seed range: each row executes as an independent
/// [`pool::run_indexed`] task (`jobs = None` auto-detects; rows come back
/// in `ns` order regardless).
///
/// ```
/// use gmp_bench::e9_heartbeat_fanout;
///
/// let rows = e9_heartbeat_fanout(&[8], 0, None);
/// let r = &rows[0];
/// assert!(r.payload_builds <= 2 * 8, "at most a couple builds per member");
/// assert!(r.legacy_builds as f64 > 0.5 * r.msgs_per_interval * r.intervals as f64);
/// ```
pub fn e9_heartbeat_fanout(ns: &[usize], seed: u64, jobs: Option<NonZeroUsize>) -> Vec<FanoutRow> {
    let jobs = jobs.unwrap_or_else(pool::available_jobs);
    pool::run_indexed(jobs, ns.len(), |i| {
        let n = ns[i];
        let horizon = 4_000;
        let cfg = Config::builder().timing(100, 400).build();
        let intervals = horizon / cfg.heartbeat_every;
        let mut sim = cluster_with(n, seed + n as u64, cfg);
        sim.crash_at(ProcessId(n as u32 - 1), 300);
        sim.run_until(horizon);
        let heartbeats = sim.stats().sends("heartbeat");
        let payload_builds: u64 = (0..n as u32)
            .map(|p| sim.node(ProcessId(p)).heartbeat_payload_builds())
            .sum();
        // The retired encoding cloned the faulty `Vec` into every
        // heartbeat and materialized it once per member per tick.
        let legacy_builds = heartbeats + intervals * n as u64;
        FanoutRow {
            n,
            intervals,
            heartbeats,
            msgs_per_interval: heartbeats as f64 / intervals as f64,
            payload_builds,
            legacy_builds,
        }
    })
}

// ---------------------------------------------------------------------
// E10 — parallel scaling of the seed-sweep engine: wall-clock vs. jobs
// ---------------------------------------------------------------------

/// One row of the E10 parallel-scaling table: the same seed sweep timed at
/// one worker-thread count.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Group size.
    pub n: usize,
    /// Seeds swept.
    pub seeds: usize,
    /// Worker threads used for this row.
    pub jobs: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Wall-clock of this table's `jobs = 1` row divided by this row's —
    /// ideal is `min(jobs, cores)`.
    pub speedup: f64,
    /// Whether this row's `RunStats` vector is identical to the
    /// sequential (`jobs = 1`) row's. Must always be `true`: the pool
    /// trades wall-clock time, never output.
    pub identical: bool,
}

/// Times the E8 exclusion sweep at each worker-thread count in
/// `jobs_list`, pinning output equality against the `jobs = 1` baseline
/// as it goes.
///
/// Runs are independent (one `Sim` per seed, no shared state), so the
/// sweep scales with physical cores; on a single-core host every row
/// degenerates to ~1× but `identical` still proves the thread pool is
/// output-invisible. This is the experiment that makes large sweeps —
/// 256 seeds at n ≥ 128, previously a multi-minute sequential run —
/// practical on multicore hosts.
///
/// ```
/// use gmp_bench::e10_parallel_scaling;
///
/// let rows = e10_parallel_scaling(&[8], 0..6, &[1, 2]);
/// assert_eq!(rows.len(), 2);
/// assert!(rows.iter().all(|r| r.identical), "jobs must not change output");
/// assert_eq!((rows[0].jobs, rows[1].jobs), (1, 2));
/// ```
pub fn e10_parallel_scaling(
    ns: &[usize],
    seeds: Range<u64>,
    jobs_list: &[usize],
) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let timed_sweep = |jobs: usize| {
            let start = Instant::now();
            let runs = run_seeds_parallel(
                seeds.clone(),
                BatchConfig::new(2_000),
                NonZeroUsize::new(jobs.max(1)),
                |seed| exclusion_sweep_run(n, seed),
            );
            (start.elapsed(), runs)
        };
        let (base_wall, base_runs) = timed_sweep(1);
        for &jobs in jobs_list {
            let (wall, runs) = if jobs == 1 {
                (base_wall, base_runs.clone())
            } else {
                timed_sweep(jobs)
            };
            rows.push(ScalingRow {
                n,
                seeds: runs.len(),
                jobs,
                speedup: base_wall.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON),
                wall,
                identical: runs == base_runs,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// E11 — arena vs map detector hot path: index-addressed peer state
// ---------------------------------------------------------------------

/// One row of the E11 arena-hot-path table: the same detector schedule
/// timed on the map-backed oracle and the arena-backed implementation.
#[derive(Clone, Debug)]
pub struct ArenaRow {
    /// Tracked peers (working-set size).
    pub n: usize,
    /// Heartbeat rounds driven through each arm.
    pub rounds: u64,
    /// Wall-clock of the `MapDetector` (pre-arena oracle) arm.
    pub map_wall: Duration,
    /// Wall-clock of the arena-backed `HeartbeatDetector` arm, addressed
    /// by `ProcessId` (pays the roster resolve on every life sign).
    pub arena_wall: Duration,
    /// Wall-clock of the arena arm addressed by stored [`gmp_types::PeerRef`]s (the
    /// owner keeps handles; every life sign is one generation-checked
    /// array access).
    pub arena_ref_wall: Duration,
    /// `map_wall / arena_wall` — > 1 means the arena is faster.
    pub speedup: f64,
    /// `map_wall / arena_ref_wall` for the ref-addressed arm.
    pub speedup_ref: f64,
    /// Whether both arms produced the identical suspicion/tracking
    /// outcome. Must always be `true` (the proptests in `gmp-props` pin
    /// the same equivalence under adversarial schedules).
    pub identical: bool,
}

/// Drives one synthetic steady-state schedule — every live peer heard
/// every round, one lease scan per round, plus a slow forget-and-track
/// churn so slot reuse is exercised — through a detector, returning an
/// outcome checksum.
fn arena_hot_path_schedule<D>(
    n: usize,
    rounds: u64,
    mut heard: impl FnMut(&mut D, ProcessId, u64),
    mut tick: impl FnMut(&mut D, u64) -> Vec<ProcessId>,
    mut track: impl FnMut(&mut D, ProcessId, u64),
    mut forget: impl FnMut(&mut D, ProcessId),
    d: &mut D,
) -> u64 {
    let hb = 40u64;
    let mut live: std::collections::VecDeque<u32> = (0..n as u32).collect();
    let mut next_id = n as u32;
    let mut checksum = 0u64;
    for p in live.iter() {
        track(d, ProcessId(*p), 0);
    }
    for r in 1..=rounds {
        let now = r * hb;
        for &p in live.iter() {
            heard(d, ProcessId(p), now);
        }
        for s in tick(d, now) {
            checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(s.0) + 1);
        }
        // Churn one peer every 16 rounds: the oldest id is forgotten (its
        // slot tombstones) and a fresh id takes its place (the slot is
        // reused under a bumped generation).
        if r % 16 == 0 {
            if let Some(old) = live.pop_front() {
                forget(d, ProcessId(old));
                track(d, ProcessId(next_id), now);
                live.push_back(next_id);
                next_id += 1;
            }
        }
    }
    checksum.wrapping_add(next_id.into())
}

/// The same schedule as [`arena_hot_path_schedule`], but the driver holds
/// each tracked peer's [`gmp_types::PeerRef`] and reports life signs
/// through [`HeartbeatDetector::heard_from_ref`] — the pattern an owner
/// that already resolves peers once per view change would use. Every life
/// sign is a generation-checked array access; no per-beat id lookup.
fn arena_ref_hot_path_schedule(
    n: usize,
    rounds: u64,
    d: &mut gmp_detect::HeartbeatDetector,
) -> u64 {
    let hb = 40u64;
    let mut live: std::collections::VecDeque<(u32, gmp_types::PeerRef)> = (0..n as u32)
        .map(|p| {
            d.track(ProcessId(p), 0);
            (p, d.resolve(ProcessId(p)).expect("just tracked"))
        })
        .collect();
    let mut next_id = n as u32;
    let mut checksum = 0u64;
    for r in 1..=rounds {
        let now = r * hb;
        for &(_, pr) in live.iter() {
            d.heard_from_ref(pr, now);
        }
        for s in d.tick(now) {
            checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(s.0) + 1);
        }
        if r % 16 == 0 {
            if let Some((old, _)) = live.pop_front() {
                d.forget(ProcessId(old));
                d.track(ProcessId(next_id), now);
                let pr = d.resolve(ProcessId(next_id)).expect("just tracked");
                live.push_back((next_id, pr));
                next_id += 1;
            }
        }
    }
    checksum.wrapping_add(next_id.into())
}

/// Times the detector hot path (heard_from × n + lease scan per round,
/// with slot-reuse churn) on the map-backed oracle vs the arena-backed
/// detector, at each working-set size in `ns`.
///
/// `rounds` scales runtime linearly; the *outcome* of each arm is pinned
/// identical regardless.
///
/// ```
/// use gmp_bench::e11_arena_hot_path;
///
/// let rows = e11_arena_hot_path(&[8], 256);
/// assert!(rows[0].identical, "arena diverged from the map oracle");
/// ```
pub fn e11_arena_hot_path(ns: &[usize], rounds: u64) -> Vec<ArenaRow> {
    use gmp_detect::{HeartbeatDetector, MapDetector};
    let suspect_after = 200u64;
    ns.iter()
        .map(|&n| {
            let mut map = MapDetector::new(suspect_after);
            let start = Instant::now();
            let map_sum = arena_hot_path_schedule(
                n,
                rounds,
                |d: &mut MapDetector, p, t| d.heard_from(p, t),
                |d, t| d.tick(t),
                |d, p, t| d.track(p, t),
                |d, p| d.forget(p),
                &mut map,
            );
            let map_wall = start.elapsed();

            let mut arena = HeartbeatDetector::new(suspect_after);
            let start = Instant::now();
            let arena_sum = arena_hot_path_schedule(
                n,
                rounds,
                |d: &mut HeartbeatDetector, p, t| d.heard_from(p, t),
                |d, t| d.tick(t),
                |d, p, t| d.track(p, t),
                |d, p| d.forget(p),
                &mut arena,
            );
            let arena_wall = start.elapsed();

            let mut arena_ref = HeartbeatDetector::new(suspect_after);
            let start = Instant::now();
            let ref_sum = arena_ref_hot_path_schedule(n, rounds, &mut arena_ref);
            let arena_ref_wall = start.elapsed();

            ArenaRow {
                n,
                rounds,
                map_wall,
                arena_wall,
                arena_ref_wall,
                speedup: map_wall.as_secs_f64() / arena_wall.as_secs_f64().max(f64::EPSILON),
                speedup_ref: map_wall.as_secs_f64()
                    / arena_ref_wall.as_secs_f64().max(f64::EPSILON),
                identical: map_sum == arena_sum && map_sum == ref_sum,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E12 — intra-run sharding: wall-clock vs shard count at large n, with
// per-row output equality against the sequential engine
// ---------------------------------------------------------------------

/// One row of the E12 shard-scaling table: the same large-`n` run timed
/// through [`Sim::run_until_sharded`] at one shard count.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Group size.
    pub n: usize,
    /// Shard count used for this row.
    pub shards: usize,
    /// Heartbeat intervals this row's run actually spanned — the requested
    /// dial, possibly shortened by the memory cap (see
    /// [`e12_shard_scaling`]).
    pub intervals: u64,
    /// Events the run recorded (identical across rows by construction).
    pub events: usize,
    /// Wall-clock of the sequential (`run_until`) reference run.
    pub seq_wall: Duration,
    /// Wall-clock of this row's sharded run.
    pub wall: Duration,
    /// `seq_wall / wall` — > 1 means sharding beat the sequential engine.
    /// On a single-core host every row degenerates to ≲ 1× (the shard
    /// workers serialize), but `identical` still proves shard count is
    /// protocol-invisible.
    pub speedup: f64,
    /// Whether this row's digest (trace, statistics, survivors) equals the
    /// sequential run's. Must always be `true`: sharding trades wall-clock
    /// time, never output.
    pub identical: bool,
}

/// The per-row scenario E12 times: one exclusion at large `n` under
/// coarsened detector timing, so heartbeat fan-out (Θ(n²) per interval)
/// dominates the event loop the way a large-scale deployment would. The
/// arc is deliberately the tightest the detector allows, because every
/// heartbeat round costs ~14 GiB of settled trace at n = 1024 (see
/// [`e12_event_bytes`]): the victim crashes at t = 10, *before its first
/// heartbeat*, so the initial t = 0 lease is never renewed, the 150-tick
/// timeout expires it at the survivors' t = 200 tick, and the commit
/// lands by ~250 — the whole crash → suspicion → commit arc fits in
/// three rounds. Survivors renew each other at ~101–103 (100 between
/// beats plus the 1–3-tick delivery jitter), comfortably inside the
/// 150-tick timeout, so no spurious suspicion is possible.
fn shard_sweep_run(n: usize, seed: u64) -> Sim<Msg, Member> {
    let mut sim = cluster_with(n, seed, Config::builder().timing(100, 150).build());
    sim.crash_at(ProcessId(n as u32 - 1), 10);
    sim
}

/// Best-effort available-memory probe: Linux `MemAvailable`, with a
/// conservative 8 GiB default elsewhere. Only the *length* of E12's
/// big-`n` rows depends on this — per-row values stay deterministic in
/// `(n, seed, intervals, shards)`.
fn mem_available_bytes() -> u64 {
    if let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") {
        for line in meminfo.lines() {
            if let Some(rest) = line.strip_prefix("MemAvailable:") {
                if let Some(kb) = rest
                    .split_whitespace()
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                {
                    return kb * 1024;
                }
            }
        }
    }
    8 << 30
}

/// Settled trace memory one recorded event costs at group size `n`, in
/// bytes: the materialized Θ(n) vector stamp (every event ticks its
/// clock, so copy-on-write cannot share across events) plus event
/// struct, tag and `Arc` overhead. Measured, not derived: a sequential
/// n = 1024, 3-interval run holds 43 GiB for 5.24 M events once the loop
/// finishes — 8.6 KiB per event, within 6% of `8n + 512`.
///
/// Settled is not peak. The same run transiently peaks at ~2.1× its
/// settled size while the event loop is live, and a sharded rerun of the
/// identical scenario reuses *none* of the sequential run's freed memory
/// (shard workers allocate from their own per-thread malloc arenas, and
/// glibc free lists never migrate between arenas), so E12's governor in
/// [`e12_shard_scaling`] charges each row a multiple of the run size
/// rather than the run size itself. Five OOM kills calibrated this.
fn e12_event_bytes(n: usize) -> u64 {
    8 * n as u64 + 512
}

/// Order-sensitive FNV-1a digest of everything a run makes observable:
/// every trace event's time, process, Lamport stamp and kind (including
/// message ids, tags and peers), plus the statistics counters and the
/// surviving set.
///
/// The vector stamp is deliberately *not* folded in: it is Θ(n) per event
/// (a 1024-entry clock at E12's top size), so digesting it would dominate
/// the very wall-clock the experiment measures. Stamp equality is pinned
/// separately — at golden granularity and event-for-event — by
/// `tests/sharding.rs` and `tests/determinism.rs`; the Lamport chain
/// folded here already fails on any reordering those suites would catch.
fn run_digest(sim: &Sim<Msg, Member>) -> (u64, usize, Stats, Vec<ProcessId>) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(PRIME);
    };
    let fold_str = |h: &mut u64, s: &str| {
        for &b in s.as_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
        *h = h.wrapping_mul(PRIME);
    };
    for e in &sim.trace().events {
        fold(&mut h, e.time);
        fold(&mut h, u64::from(e.pid.0));
        fold(&mut h, e.lamport);
        match &e.kind {
            TraceKind::Start => fold(&mut h, 1),
            TraceKind::Send { to, msg_id, tag } => {
                fold(&mut h, 2);
                fold(&mut h, u64::from(to.0));
                fold(&mut h, *msg_id);
                fold_str(&mut h, tag);
            }
            TraceKind::Recv { from, msg_id, tag } => {
                fold(&mut h, 3);
                fold(&mut h, u64::from(from.0));
                fold(&mut h, *msg_id);
                fold_str(&mut h, tag);
            }
            TraceKind::Timer { tag } => {
                fold(&mut h, 4);
                fold(&mut h, *tag);
            }
            TraceKind::Crash => fold(&mut h, 5),
            TraceKind::Quit => fold(&mut h, 6),
            TraceKind::Note(note) => {
                fold(&mut h, 7);
                fold_str(&mut h, &format!("{note:?}"));
            }
        }
    }
    (
        h,
        sim.trace().events.len(),
        sim.stats().clone(),
        sim.living(),
    )
}

/// Times one large-`n` exclusion run through the intra-run sharded engine
/// at each shard count in `shards_list`, pinning output equality against
/// a sequential (`run_until`) reference run of the identical scenario as
/// it goes.
///
/// The run spans `intervals` heartbeat intervals — the CI smoke run uses
/// 8 (`tables e12 --seeds 8 --shards 2`); outputs are pinned identical at
/// any length. A row's wall-clock covers only the event loop; the digest
/// comparison happens outside the timed section.
///
/// Big-`n` rows cap their own *cost*, in two steps, against ~90% of the
/// host's available memory and the measured model in `e12_event_bytes`
/// (a 3-interval n = 1024 run settles at 43 GiB of trace, and a whole
/// row peaks at ~2.5× one run plus ~0.3× per shard-ladder rung beyond
/// the second): first the span is clamped, then — if even the shortest
/// exclusion-covering span (3 intervals) does not fit — the top ladder
/// rungs are dropped, and only an `n` that cannot fit a single-rung
/// 3-interval row is skipped entirely (no row) rather than run
/// truncated. The actual span is reported per row in
/// [`ShardRow::intervals`]; a capped ladder is visible as missing rows.
/// Sizes are swept largest-first regardless of the order in `ns` (see
/// the comment in the body: freed trace memory is only reusable by
/// *smaller* later runs), so rows come out in descending `n`.
///
/// ```
/// use gmp_bench::e12_shard_scaling;
///
/// let rows = e12_shard_scaling(&[8], &[1, 2], 8, 0);
/// assert_eq!(rows.len(), 2);
/// assert!(rows.iter().all(|r| r.identical), "shards must not change output");
/// assert_eq!((rows[0].shards, rows[1].shards), (1, 2));
/// ```
pub fn e12_shard_scaling(
    ns: &[usize],
    shards_list: &[usize],
    intervals: u64,
    seed: u64,
) -> Vec<ShardRow> {
    // Sweep the sizes largest-first. Dropping a run hands its trace (tens
    // of GiB of sub-mmap-threshold stamp chunks at n = 1024) back to the
    // allocator's free lists, not to the OS; a *smaller* later run reuses
    // those chunks (splitting a free block always works), while a larger
    // later run cannot (fragmented small chunks never merge back into the
    // bigger stamp size it needs) and would pile its peak on top of the
    // retained memory. Ascending order is exactly how a full sweep
    // OOM-killed itself while each individual row fit the host.
    let mut ns: Vec<usize> = ns.to_vec();
    ns.sort_unstable_by(|a, b| b.cmp(a));
    let ns = &ns[..];
    // The victim's never-renewed t = 0 lease expires its 150-tick timeout
    // at the survivors' t = 200 detector tick and the commit lands by
    // ~250, so the whole crash → suspicion → commit arc needs 3 heartbeat
    // intervals; anything shorter would time an exclusion-free run.
    const MIN_INTERVALS: u64 = 3;
    let budget = mem_available_bytes() / 10 * 9;
    let mut rows = Vec::new();
    for &n in ns {
        // Memory governor, calibrated at n = 1024 on a 131 GiB host (see
        // e12_event_bytes): a run's settled trace is (2·intervals − 1)·n²
        // events (the last round's sends are never delivered inside the
        // horizon); the whole row peaks at ~2.4× one run — the sequential
        // reference's retained trace plus a sharded run's transient, none
        // of it shared across thread arenas — plus ~0.3× per ladder rung
        // beyond the second (extra workers bring extra arenas). Charge
        // 2.5× + 0.3×/rung; shorten the run, then the ladder, and skip
        // the size only when even a 3-interval single-rung row cannot fit.
        let half_round = (n as u64 * n as u64) * e12_event_bytes(n);
        let mut ladder: Vec<usize> = shards_list.iter().map(|&s| s.max(1)).collect();
        ladder.sort_unstable();
        ladder.dedup();
        let plan = loop {
            let mult_tenths = 25 + 3 * ladder.len().saturating_sub(2) as u64;
            let max_intervals = (budget * 10 / mult_tenths / half_round.max(1)).div_ceil(2);
            if max_intervals >= MIN_INTERVALS {
                break Some(intervals.max(MIN_INTERVALS).min(max_intervals));
            }
            ladder.pop();
            if ladder.is_empty() {
                break None;
            }
        };
        let Some(intervals) = plan else { continue };
        let horizon = intervals * 100;
        let (seq_wall, reference) = {
            let mut sim = shard_sweep_run(n, seed);
            let start = Instant::now();
            sim.run_until(horizon);
            (start.elapsed(), run_digest(&sim))
        };
        for &shards in &ladder {
            let mut sim = shard_sweep_run(n, seed);
            let start = Instant::now();
            sim.run_until_sharded(horizon, shards);
            let wall = start.elapsed();
            let digest = run_digest(&sim);
            rows.push(ShardRow {
                n,
                shards,
                intervals,
                events: digest.1,
                seq_wall,
                wall,
                speedup: seq_wall.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON),
                identical: digest == reference,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// E13 — monitoring topologies: message load and exclusion latency vs n
// for the flat clique, the sparse ring and the two-level hierarchy
// ---------------------------------------------------------------------

/// One (topology, n) cell of E13's monitoring-graph sweep.
#[derive(Clone, Debug)]
pub struct TopologyRow {
    /// Group size.
    pub n: usize,
    /// Topology label: `"flat"` (the paper's clique), `"sparse"`
    /// ([`Sparse`] with k = 4) or `"hier"` ([`Hierarchical`] with groups
    /// of ⌈√n⌉).
    pub topology: &'static str,
    /// Seeds sampled for this cell; every per-seed value is deterministic
    /// in `(n, seed, topology)`.
    pub seeds: u64,
    /// Heartbeat intervals each run spanned: 4, shortened to 3 when the
    /// memory governor demands it. The exclusion commits by ~250 either
    /// way (see `shard_sweep_run` for the arc), so the span never
    /// changes the outcome the gate compares.
    pub intervals: u64,
    /// Directed monitoring edges of the initial view — the per-interval
    /// heartbeat load this topology buys: `n(n−1)` for the clique,
    /// `k·n` for the ring, `≈ n·(g−1) + g·(g−1)` for the hierarchy.
    pub degree_sum: u64,
    /// Events the seed-0 run recorded (representative: other seeds differ
    /// only in delivery jitter).
    pub events: usize,
    /// Mean messages per run, heartbeats included — the column the
    /// degree sum predicts.
    pub messages: f64,
    /// Mean §7.2 protocol messages per run — flat across topologies,
    /// because agreement still runs point-to-point on the full view.
    pub protocol: f64,
    /// Mean exclusion latency: the last survivor's v1 install time minus
    /// the crash time.
    pub latency: f64,
    /// The hard gate: every sampled seed excluded the victim AND reached
    /// the same final membership (survivor set and each survivor's view)
    /// as the first admitted topology at this `n`.
    pub identical: bool,
}

/// The three monitoring graphs E13 compares at size `n`.
fn e13_topologies(n: usize) -> Vec<(&'static str, Arc<dyn Topology>)> {
    let group = ((n as f64).sqrt().ceil() as usize).max(2);
    vec![
        ("flat", Arc::new(Flat) as Arc<dyn Topology>),
        ("sparse", Arc::new(Sparse::new(4))),
        ("hier", Arc::new(Hierarchical::new(group))),
    ]
}

/// E13's per-cell scenario: the E12 coarse-timing exclusion arc (crash at
/// t = 10 before the first heartbeat, suspicion at the survivors' t = 200
/// tick, commit by ~250 — see [`shard_sweep_run`]) under the given
/// monitoring graph. The victim `p(n−1)` is the most junior member: a
/// ring edge-member and a non-leader of the hierarchy's last group, so
/// the sparse and hierarchical cells genuinely exercise relay.
fn e13_run(n: usize, seed: u64, topology: &Arc<dyn Topology>, horizon: u64) -> Sim<Msg, Member> {
    let cfg = Config::builder()
        .timing(100, 150)
        .topology_shared(Arc::clone(topology))
        .build();
    let mut sim = cluster_with(n, seed, cfg);
    sim.crash_at(ProcessId(n as u32 - 1), 10);
    sim.run_until(horizon);
    sim
}

/// The final membership picture E13's gate compares across topologies:
/// each survivor paired with its installed view.
type MembershipOutcome = Vec<(ProcessId, Vec<ProcessId>)>;

/// Everything E13's cross-topology gate compares: whether the exclusion
/// committed everywhere, plus the surviving set and each survivor's final
/// view.
fn e13_outcome(sim: &Sim<Msg, Member>, victim: ProcessId) -> (bool, MembershipOutcome) {
    let mut excluded = true;
    let mut views = Vec::new();
    for p in sim.living() {
        let m = sim.node(p);
        excluded &= m.ver() >= 1 && !m.view().contains(victim);
        views.push((p, m.view().to_vec()));
    }
    views.sort();
    (excluded, views)
}

/// Exclusion latency of one run: the time of the last `ViewInstalled`
/// carrying version 1, minus the crash time.
fn e13_latency(sim: &Sim<Msg, Member>) -> f64 {
    let mut last = 0u64;
    for e in &sim.trace().events {
        if let TraceKind::Note(Note::ViewInstalled { ver: 1, .. }) = &e.kind {
            last = last.max(e.time);
        }
    }
    last.saturating_sub(10) as f64
}

/// Sweeps one exclusion per `(topology, n, seed)` across the three
/// monitoring graphs of `e13_topologies`, measuring message load and
/// exclusion latency and pinning — per seed — that every topology
/// reaches the *same final membership* as the first admitted topology of
/// that `n` ([`TopologyRow::identical`]; `tables e13` turns it into a
/// hard assert).
///
/// Cells govern their own memory exactly like [`e12_shard_scaling`]: the
/// settled trace costs `((2I−1)·deg_sum + I·n + 10n)` events at
/// `e12_event_bytes` each (the degree sum replaces E12's `n²` — that
/// is the whole point of a sparse graph), charged 2.5× against ~90% of
/// available memory. A cell first sheds its span from 4 to 3 intervals,
/// then is skipped entirely (no row) rather than run truncated; `tables`
/// prints a note per missing cell. The clique's n = 4096 cell needs
/// ~2.8 TB of trace and is skipped on any realistic host — that *is*
/// the experiment's headline, not a defect. Sizes sweep largest-first
/// and the clique runs before the sparse graphs within each size (freed
/// trace chunks only serve same-or-smaller later runs; see the comment
/// in [`e12_shard_scaling`]).
///
/// ```
/// use gmp_bench::e13_topology_sweep;
///
/// let rows = e13_topology_sweep(&[8], 2);
/// assert_eq!(rows.len(), 3);
/// assert!(rows.iter().all(|r| r.identical), "topologies must agree");
/// ```
pub fn e13_topology_sweep(ns: &[usize], seeds: u64) -> Vec<TopologyRow> {
    let mut ns: Vec<usize> = ns.to_vec();
    ns.sort_unstable_by(|a, b| b.cmp(a));
    let budget = mem_available_bytes() / 10 * 9;
    let seeds = seeds.max(1);
    let mut rows = Vec::new();
    for &n in &ns {
        let victim = ProcessId(n as u32 - 1);
        let view = View::new((0..n as u32).map(ProcessId).collect());
        let mut reference: Vec<Option<MembershipOutcome>> = vec![None; seeds as usize];
        for (name, topo) in e13_topologies(n) {
            let degree_sum: u64 = view
                .iter()
                .map(|p| topo.monitors(p, &view).len() as u64)
                .sum();
            let fits = |i: u64| {
                let events = (2 * i - 1) * degree_sum + i * n as u64 + 10 * n as u64;
                events * e12_event_bytes(n) * 25 / 10 <= budget
            };
            let Some(intervals) = [4u64, 3].into_iter().find(|&i| fits(i)) else {
                continue;
            };
            let horizon = intervals * 100;
            let (mut messages, mut protocol, mut latency) = (0f64, 0f64, 0f64);
            let mut identical = true;
            let mut events = 0usize;
            for s in 0..seeds {
                let sim = e13_run(n, s, &topo, horizon);
                if s == 0 {
                    events = sim.trace().events.len();
                }
                messages += sim.stats().sends_total() as f64;
                protocol += protocol_messages(sim.stats()) as f64;
                latency += e13_latency(&sim);
                let (excluded, outcome) = e13_outcome(&sim, victim);
                identical &= excluded;
                match &reference[s as usize] {
                    Some(r) => identical &= *r == outcome,
                    None => reference[s as usize] = Some(outcome),
                }
            }
            rows.push(TopologyRow {
                n,
                topology: name,
                seeds,
                intervals,
                degree_sum,
                events,
                messages: messages / seeds as f64,
                protocol: protocol / seeds as f64,
                latency: latency / seeds as f64,
                identical,
            });
        }
    }
    rows
}

/// The topology labels [`e13_topology_sweep`] tries per size, in sweep
/// order — `tables e13` diffs rows against this to report skipped cells.
pub fn e13_topology_names() -> [&'static str; 3] {
    ["flat", "sparse", "hier"]
}

// ---------------------------------------------------------------------
// E14 — the replicated-log workload: committed throughput, failover
// latency and log safety under crash and churn schedules
// ---------------------------------------------------------------------

/// One scenario row of E14's replicated-log workload, aggregated over
/// seeds.
#[derive(Clone, Debug)]
pub struct LogRow {
    /// Schedule label: `"steady"` (no failures), `"crash"` (the leader
    /// dies mid-run) or `"churn"` (the leader dies while a joiner is
    /// being admitted and state-transferred).
    pub scenario: &'static str,
    /// Initial replicas (the churn schedule adds one joiner on top).
    pub replicas: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Seeds sampled; every per-seed value is deterministic.
    pub seeds: u64,
    /// Simulated horizon in ticks.
    pub horizon: u64,
    /// Mean committed client operations per run (`NOOP` fillers excluded).
    pub committed: f64,
    /// Committed client operations per 1 000 simulated ticks.
    pub throughput: f64,
    /// Commit latency (issue → reply), pooled across clients and seeds.
    pub latency: Summary,
    /// Failover latency per seed: the first commit under the successor's
    /// ballot minus the crash time. Empty for the steady schedule.
    pub failover: Summary,
    /// Hard gate: on every seed the survivors' committed logs were
    /// prefix-identical (they may lag, never diverge).
    pub prefix_ok: bool,
    /// Hard gate: on every seed the sharded engine reproduced the
    /// sequential run exactly — same committed log on every survivor,
    /// same acknowledgement count and latencies at every client.
    pub sharded_identical: bool,
}

/// One E14 schedule: who runs, who crashes, who joins.
struct LogScenario {
    name: &'static str,
    replicas: usize,
    clients: usize,
    /// Crash the initial leader (`p0`) at this time.
    crash_at: Option<u64>,
    /// Admit a joiner first asking at this time.
    join_at: Option<u64>,
    horizon: u64,
}

/// The three schedules E14 samples. The crash victim is always `p0`:
/// the senior member, hence the initial `Mgr` and log leader — the
/// worst case for the workload, because exclusion, three-phase
/// reconfiguration *and* log recovery all sit on the critical path of
/// every in-flight command.
fn e14_scenarios() -> Vec<LogScenario> {
    vec![
        LogScenario {
            name: "steady",
            replicas: 5,
            clients: 4,
            crash_at: None,
            join_at: None,
            horizon: 15_000,
        },
        LogScenario {
            name: "crash",
            replicas: 5,
            clients: 4,
            crash_at: Some(3_000),
            join_at: None,
            horizon: 20_000,
        },
        LogScenario {
            name: "churn",
            replicas: 5,
            clients: 4,
            crash_at: Some(3_000),
            join_at: Some(2_500),
            horizon: 20_000,
        },
    ]
}

fn e14_build(sc: &LogScenario, seed: u64, lc: &LogConfig) -> Sim<AppMsg, LogProc> {
    let mut b = LogClusterBuilder::new(sc.replicas, sc.clients)
        .seed(seed)
        .log_config(lc.clone());
    if let Some(at) = sc.join_at {
        // Contact a non-Mgr member: the forwarding path and the crash of
        // the Mgr mid-admission are both part of the schedule.
        b = b.joiner(JoinConfig::new(at, vec![ProcessId(1)]));
    }
    let mut sim = b.build();
    if let Some(at) = sc.crash_at {
        sim.crash_at(ProcessId(0), at);
    }
    sim
}

/// Everything the cross-engine gate compares: each surviving replica's
/// committed log, and each client's acknowledged latencies (count and
/// values — acks pin the replies, latencies pin their timing).
type LogOutcome = (Vec<(ProcessId, Vec<LogCmd>)>, Vec<Vec<u64>>);

fn e14_outcome(sim: &Sim<AppMsg, LogProc>, sc: &LogScenario) -> LogOutcome {
    let mut logs: Vec<(ProcessId, Vec<LogCmd>)> = sim
        .living()
        .into_iter()
        .filter(|&p| sim.node(p).is_replica())
        .map(|p| (p, sim.node(p).log().committed().to_vec()))
        .collect();
    logs.sort();
    let first_client = (sc.replicas + sc.join_at.is_some() as usize) as u32;
    let lats = (0..sc.clients as u32)
        .map(|k| {
            sim.node(ProcessId(first_client + k))
                .client()
                .latencies()
                .to_vec()
        })
        .collect();
    (logs, lats)
}

/// Failover latency of one crashed run: the first commit applied under a
/// ballot at least the version that *excluded* the victim, minus the
/// crash time. (Anchoring on the exclusion version rather than "any
/// version > 0" matters in the churn schedule, where a join can install
/// an intermediate view before the crash.) `None` if the log never
/// advanced past the failover — which the liveness gate would catch
/// anyway.
fn e14_failover(sim: &Sim<AppMsg, LogProc>, crash_at: u64) -> Option<u64> {
    let excl_ver = sim
        .trace()
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceKind::Note(Note::ViewInstalled { ver, members, .. })
                if !members.contains(&ProcessId(0)) =>
            {
                Some(*ver)
            }
            _ => None,
        })
        .min()?;
    let log = sim.node(ProcessId(1)).log();
    log.ballots()
        .iter()
        .zip(log.applied_at())
        .find(|&(&b, _)| b >= excl_ver)
        .map(|(_, &t)| t.saturating_sub(crash_at))
}

/// Drives the replicated-log workload of `crates/log` through the three
/// schedules of `e14_scenarios`, measuring committed throughput, commit
/// latency and failover latency, and pinning two hard gates per seed:
/// survivors' logs prefix-identical ([`LogRow::prefix_ok`]), and the
/// sharded engine byte-equal to the sequential one on logs and client
/// acknowledgements ([`LogRow::sharded_identical`]). `tables e14` turns
/// both into hard asserts.
///
/// ```
/// use gmp_bench::e14_replicated_log;
///
/// let rows = e14_replicated_log(1);
/// assert_eq!(rows.len(), 3);
/// assert!(rows.iter().all(|r| r.prefix_ok && r.sharded_identical));
/// assert!(rows.iter().all(|r| r.committed > 0.0));
/// ```
pub fn e14_replicated_log(seeds: u64) -> Vec<LogRow> {
    e14_replicated_log_with(seeds, None, None, None)
}

/// [`e14_replicated_log`] with the CLI's axis overrides: `clients`
/// replaces each scenario's client count, and `batch`/`window` switch the
/// log from the default unbatched baseline trim to the batched one
/// (`tables e14 --clients N --batch B --window W`).
pub fn e14_replicated_log_with(
    seeds: u64,
    clients: Option<usize>,
    batch: Option<usize>,
    window: Option<usize>,
) -> Vec<LogRow> {
    let seeds = seeds.max(1);
    // The default E14 arm is the PR-9 baseline: per-slot wire messages,
    // strict closed loop, no compaction. The batching ladder is E15's.
    let lc = LogConfig::default()
        .unbatched()
        .batch(batch.unwrap_or(1))
        .window(window.unwrap_or(1));
    let mut rows = Vec::new();
    for mut sc in e14_scenarios() {
        if let Some(c) = clients {
            sc.clients = c;
        }
        let mut committed = 0f64;
        let mut latencies: Vec<u64> = Vec::new();
        let mut failovers: Vec<u64> = Vec::new();
        let (mut prefix_ok, mut sharded_identical) = (true, true);
        for s in 0..seeds {
            let mut seq = e14_build(&sc, s, &lc);
            seq.run_until(sc.horizon);
            let (logs, lats) = e14_outcome(&seq, &sc);
            prefix_ok &= prefix_identical(logs.iter().map(|(_, l)| l.as_slice()));
            committed += seq.node(ProcessId(1)).log().committed_ops() as f64;
            for l in &lats {
                latencies.extend_from_slice(l);
            }
            if let Some(at) = sc.crash_at {
                if let Some(f) = e14_failover(&seq, at) {
                    failovers.push(f);
                }
            }
            // The same schedule through the sharded engine must land on
            // the same logs and the same client-visible behaviour.
            let mut sharded = e14_build(&sc, s, &lc);
            sharded.run_until_sharded(sc.horizon, 2);
            sharded_identical &= e14_outcome(&sharded, &sc) == (logs, lats);
        }
        let committed = committed / seeds as f64;
        rows.push(LogRow {
            scenario: sc.name,
            replicas: sc.replicas,
            clients: sc.clients,
            seeds,
            horizon: sc.horizon,
            committed,
            throughput: committed * 1_000.0 / sc.horizon as f64,
            latency: Summary::of(&latencies),
            failover: Summary::of(&failovers),
            prefix_ok,
            sharded_identical,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E15 — the batching/pipelining ladder: committed throughput and wire
// messages per operation across (batch, window) cells, against the
// unbatched PR-9 baseline, plus the snapshot-compacted joiner-sync gate
// ---------------------------------------------------------------------

/// One `(batch, window)` cell of E15's ladder, aggregated over seeds.
#[derive(Clone, Debug)]
pub struct BatchRow {
    /// Leader batch size (1 = the per-slot legacy wire path).
    pub batch: usize,
    /// Client pipeline window (1 = strict closed loop).
    pub window: usize,
    /// Replicas in the steady schedule.
    pub replicas: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Seeds sampled; every per-seed value is deterministic.
    pub seeds: u64,
    /// Simulated horizon in ticks.
    pub horizon: u64,
    /// Mean committed client operations per run (`NOOP` fillers excluded).
    pub committed: f64,
    /// Committed client operations per 1 000 simulated ticks.
    pub throughput: f64,
    /// Log-layer wire messages (tags `log-*`) per committed operation —
    /// the amortized-message-cost axis the batching trades on.
    pub msgs_per_op: f64,
    /// Commit latency (issue → reply), pooled across clients and seeds.
    pub latency: Summary,
    /// Throughput relative to the `(1, 1)` baseline cell.
    pub speedup: f64,
    /// Hard gate: replicas' committed logs prefix-identical on every seed.
    pub prefix_ok: bool,
    /// Hard gate: the sharded engine reproduced the sequential run
    /// exactly on every seed (logs and client acknowledgements).
    pub sharded_identical: bool,
}

/// Outcome of E15's joiner-sync arm: one run with compaction forced low,
/// a joiner admitted late, and the state transfer it received measured.
#[derive(Clone, Debug)]
pub struct SyncRow {
    /// Compaction keep budget forced on every replica.
    pub compact_keep: usize,
    /// When the joiner first asked to join.
    pub join_at: u64,
    /// Simulated horizon in ticks.
    pub horizon: u64,
    /// Applied length of the donor's log when measured (end of run).
    pub log_len: u64,
    /// Tail entries the joiner's `SyncOk` actually shipped.
    pub tail: u64,
    /// Whether that `SyncOk` carried a snapshot (it must, once the donor
    /// has compacted past slot 0).
    pub snapshot: bool,
    /// The joiner booted above slot 0 — its applied vectors start at the
    /// snapshot floor instead of replaying the whole prefix.
    pub joiner_base: u64,
    /// Hard gate: all replicas (joiner included, base-aware) agree on
    /// every slot range they share.
    pub agree: bool,
}

/// The ladder's steady schedule: no failures, so every committed-ops
/// delta between cells is the batching/pipelining, not failover noise.
fn e15_scenario(clients: usize) -> LogScenario {
    LogScenario {
        name: "steady",
        replicas: 5,
        clients,
        crash_at: None,
        join_at: None,
        horizon: 15_000,
    }
}

/// Drives the steady replicated-log schedule across a ladder of
/// `(batch, window)` cells — the unbatched PR-9 baseline first, then
/// batching and client pipelining switched on separately and together —
/// measuring committed throughput and log-layer wire messages per
/// operation. Every cell runs under the same hard gates as E14
/// (prefix-identical logs, sharded engine byte-equal to sequential).
/// `batch`/`window` overrides shrink the ladder to baseline + that one
/// cell; `clients` rescales the offered load.
///
/// ```
/// use gmp_bench::e15_log_batching;
///
/// let rows = e15_log_batching(1, None, Some(8), Some(4));
/// assert_eq!(rows.len(), 2);
/// assert!(rows.iter().all(|r| r.prefix_ok && r.sharded_identical));
/// assert!(rows[1].throughput > rows[0].throughput);
/// ```
pub fn e15_log_batching(
    seeds: u64,
    clients: Option<usize>,
    batch: Option<usize>,
    window: Option<usize>,
) -> Vec<BatchRow> {
    let seeds = seeds.max(1);
    let sc = e15_scenario(clients.unwrap_or(4));
    let cells: Vec<(usize, usize)> = match (batch, window) {
        (None, None) => vec![(1, 1), (8, 1), (1, 4), (8, 4), (16, 8)],
        (b, w) => vec![(1, 1), (b.unwrap_or(8), w.unwrap_or(4))],
    };
    let mut rows = Vec::new();
    for (b, w) in cells {
        let lc = if (b, w) == (1, 1) {
            LogConfig::default().unbatched()
        } else {
            // Batched cells keep the default compaction budget; the
            // leader's admission window scales with the batch so the
            // batch can actually fill.
            LogConfig::default()
                .batch(b)
                .window(w)
                .max_inflight(b.max(8))
        };
        let mut committed = 0f64;
        let mut msgs = 0f64;
        let mut latencies: Vec<u64> = Vec::new();
        let (mut prefix_ok, mut sharded_identical) = (true, true);
        for s in 0..seeds {
            let mut seq = e14_build(&sc, s, &lc);
            seq.run_until(sc.horizon);
            let (logs, lats) = e14_outcome(&seq, &sc);
            prefix_ok &= prefix_identical(logs.iter().map(|(_, l)| l.as_slice()));
            committed += seq.node(ProcessId(1)).log().committed_ops() as f64;
            msgs += seq.stats().sends_matching(|t| t.starts_with("log-")) as f64;
            for l in &lats {
                latencies.extend_from_slice(l);
            }
            let mut sharded = e14_build(&sc, s, &lc);
            sharded.run_until_sharded(sc.horizon, 2);
            sharded_identical &= e14_outcome(&sharded, &sc) == (logs, lats);
        }
        let committed = committed / seeds as f64;
        rows.push(BatchRow {
            batch: b,
            window: w,
            replicas: sc.replicas,
            clients: sc.clients,
            seeds,
            horizon: sc.horizon,
            committed,
            throughput: committed * 1_000.0 / sc.horizon as f64,
            msgs_per_op: if committed > 0.0 {
                msgs / seeds as f64 / committed
            } else {
                f64::NAN
            },
            latency: Summary::of(&latencies),
            speedup: 0.0, // filled below, once the baseline cell exists
            prefix_ok,
            sharded_identical,
        });
    }
    let base = rows[0].throughput;
    for r in &mut rows {
        r.speedup = if base > 0.0 {
            r.throughput / base
        } else {
            f64::NAN
        };
    }
    rows
}

/// E15's joiner-sync arm: forces a small compaction budget, runs the
/// batched steady workload long enough for every replica to compact well
/// past slot 0, then admits a joiner and measures the state transfer it
/// received. The point of snapshot-compacted `Sync`: the `SyncOk` payload
/// is O(tail) — bounded by the compaction budget — not O(log).
///
/// ```
/// use gmp_bench::e15_joiner_sync;
///
/// let row = e15_joiner_sync(1);
/// assert!(row.snapshot && row.agree);
/// assert!(row.tail <= 2 * row.compact_keep as u64 + 64);
/// assert!(row.log_len >= 4 * row.tail);
/// ```
pub fn e15_joiner_sync(seed: u64) -> SyncRow {
    let keep = 128usize;
    let (join_at, horizon) = (10_000, 15_000);
    let lc = LogConfig::default().batch(8).window(4).compact_keep(keep);
    let mut sim = LogClusterBuilder::new(5, 4)
        .seed(seed)
        .log_config(lc)
        .joiner(JoinConfig::new(join_at, vec![ProcessId(1)]))
        .build();
    sim.run_until(horizon);
    let joiner = sim.node(ProcessId(5)).log();
    let (snapshot, tail) = joiner.last_sync().unwrap_or((false, 0));
    let agree = logs_agree(
        (0..6u32)
            .map(ProcessId)
            .filter(|&p| sim.living().contains(&p))
            .map(|p| {
                let l = sim.node(p).log();
                (l.base(), l.committed())
            }),
    );
    SyncRow {
        compact_keep: keep,
        join_at,
        horizon,
        log_len: sim.node(ProcessId(1)).log().logical_len(),
        tail,
        snapshot,
        joiner_base: joiner.base(),
        agree,
    }
}

/// Convenience: a standard exclusion run for the Criterion benchmarks.
pub fn bench_exclusion_run(n: usize, seed: u64) -> Sim<Msg, Member> {
    let mut sim = cluster_with(n, seed, Config::default());
    sim.crash_at(ProcessId(n as u32 - 1), 300);
    sim.run_until(8_000);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_formula_exactly() {
        for row in e1_exclusion(&[4, 5, 8, 12], 100) {
            assert_eq!(
                row.measured, row.formula,
                "n={}: expected 3n-5={}, measured {}",
                row.n, row.formula, row.measured
            );
        }
    }

    #[test]
    fn e3_matches_formula_shape() {
        for row in e3_reconfiguration(&[5, 8, 12], 200) {
            let delta = row.measured as i64 - row.formula as i64;
            assert!(
                delta.abs() <= row.n as i64,
                "n={}: measured {} too far from 5n-9={}",
                row.n,
                row.measured,
                row.formula
            );
        }
    }

    #[test]
    fn e2_compression_saves_messages() {
        for row in e2_condensed(&[8, 12], 300) {
            assert!(
                row.compressed < row.standard,
                "n={}: compressed {} !< standard {}",
                row.n,
                row.compressed,
                row.standard
            );
        }
    }

    #[test]
    fn e5_symmetric_is_order_of_magnitude_costlier() {
        for row in e5_symmetric(&[16, 24], 400) {
            assert!(
                row.ratio > 4.0,
                "n={}: symmetric/asymmetric ratio only {:.1}",
                row.n,
                row.ratio
            );
        }
    }

    #[test]
    fn e6_churn_is_online_and_correct() {
        let out = e6_churn(500);
        assert!(out.gmp_ok, "GMP violated under churn");
        assert_eq!(out.changes_committed, 5, "3 joins + 2 removals must commit");
    }

    #[test]
    fn t1_matches_paper_table() {
        let rows = t1_initiations(600);
        assert!(
            !rows[0].q_initiated && rows[0].p_initiated,
            "row 1: only p initiates"
        );
        assert!(
            rows[1].q_initiated && !rows[1].p_initiated,
            "row 2: q eventually initiates"
        );
        assert!(
            rows[2].q_initiated && rows[2].p_initiated,
            "row 3: both initiate"
        );
        assert!(
            rows[3].q_initiated && !rows[3].p_initiated,
            "row 4: only q initiates"
        );
    }

    #[test]
    fn ab1_gossip_reduces_reports_and_latency() {
        let rows = ab1_gossip(800);
        assert!(rows[0].gossip && !rows[1].gossip);
        assert!(rows[0].gmp_ok && rows[1].gmp_ok, "correct either way");
        assert!(
            rows[0].reports <= rows[1].reports,
            "gossip must not increase explicit reports: {} vs {}",
            rows[0].reports,
            rows[1].reports
        );
    }

    #[test]
    fn ab2_timeout_sweep_trades_latency_for_accuracy() {
        let rows = ab2_timeout_sweep(900);
        for r in &rows {
            assert!(r.safe, "safety must hold at timeout {}", r.suspect_after);
        }
        // Tiny timeout: spurious suspicions appear.
        assert!(rows[0].spurious_suspicions > 0, "timeout 30 must misfire");
        // Sane timeouts: no spurious suspicions, latency grows with the
        // threshold.
        let sane: Vec<_> = rows.iter().filter(|r| r.suspect_after >= 200).collect();
        for r in &sane {
            assert_eq!(r.spurious_suspicions, 0, "timeout {}", r.suspect_after);
        }
        let l200 = sane[0].exclusion_latency.expect("exclusion commits");
        let l800 = sane
            .last()
            .unwrap()
            .exclusion_latency
            .expect("exclusion commits");
        assert!(l800 > l200, "longer timeout, later exclusion");
    }

    #[test]
    fn e8_sweep_is_schedule_independent_on_protocol_messages() {
        let rows = e8_seed_sweep(&[8, 16], 0..8, None);
        for row in rows {
            assert_eq!(row.seeds, 8);
            assert_eq!(row.protocol.count, 8);
            // §7.2: the exclusion cost is schedule-independent — every seed
            // lands exactly on 3n − 5.
            assert_eq!(
                (row.protocol.min, row.protocol.max),
                (row.formula, row.formula),
                "n={}: exclusion cost must not vary across schedules",
                row.n
            );
            // Event counts (heartbeats included) do vary with the schedule.
            assert!(row.events.min > 0 && row.events.min <= row.events.p50);
        }
    }

    #[test]
    fn e9_payload_constructions_collapse_from_quadratic_to_linear() {
        for row in e9_heartbeat_fanout(&[8, 16, 32], 900, None) {
            let n = row.n as u64;
            // Messages stay all-to-all: the digest encoding must not change
            // the protocol-visible fan-out (≥ (n-1)(n-2) once the victim is
            // excluded, more before).
            assert!(
                row.msgs_per_interval >= ((n - 1) * (n - 2)) as f64,
                "n={n}: heartbeat messages per interval collapsed unexpectedly: {}",
                row.msgs_per_interval
            );
            // The retired per-peer-clone encoding built Θ(n²) payloads per
            // interval for the whole run…
            assert!(
                row.legacy_builds >= row.intervals * (n - 1) * (n - 2),
                "n={n}: legacy formula lost its quadratic shape"
            );
            // …the digest encoding builds at most a couple per *member*
            // total (empty → {victim} → empty is one change that needs a
            // snapshot), i.e. Θ(n) for the run, regardless of interval
            // count.
            assert!(
                row.payload_builds <= 2 * n,
                "n={n}: {} payload builds exceed the Θ(n) bound",
                row.payload_builds
            );
            assert!(row.payload_builds > 0, "the exclusion must publish once");
        }
    }

    /// The protocol-level half of the `Send` audit: a full cluster
    /// simulator (protocol messages carrying `Shared` digest payloads,
    /// members owning a heartbeat detector) crosses thread boundaries,
    /// which is what lets E8/E10 sweep real exclusions on the pool.
    #[test]
    fn cluster_sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Sim<Msg, Member>>();
    }

    #[test]
    fn e8_rows_are_identical_for_any_job_count() {
        let sequential = e8_seed_sweep(&[8], 0..6, NonZeroUsize::new(1));
        let parallel = e8_seed_sweep(&[8], 0..6, NonZeroUsize::new(4));
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!((s.n, s.seeds, s.formula), (p.n, p.seeds, p.formula));
            assert_eq!(
                s.protocol, p.protocol,
                "n={}: protocol summary drifted",
                s.n
            );
            assert_eq!(s.events, p.events, "n={}: events summary drifted", s.n);
        }
    }

    #[test]
    fn e10_pins_output_equality_while_it_times() {
        let rows = e10_parallel_scaling(&[8], 0..8, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.seeds, 8);
            assert!(r.identical, "jobs={}: output diverged from jobs=1", r.jobs);
            assert!(r.wall.as_nanos() > 0);
            assert!(r.speedup > 0.0);
        }
        assert!(
            (rows[0].speedup - 1.0).abs() < 1e-9,
            "jobs=1 is its own baseline"
        );
    }

    #[test]
    fn e11_arms_agree_and_time() {
        for row in e11_arena_hot_path(&[8, 32], 128) {
            assert!(row.identical, "n={}: arena diverged from oracle", row.n);
            assert!(row.map_wall.as_nanos() > 0 && row.arena_wall.as_nanos() > 0);
            assert!(row.speedup > 0.0);
        }
    }

    #[test]
    fn e12_pins_output_equality_while_it_times() {
        let rows = e12_shard_scaling(&[8, 16], &[1, 2, 4], 8, 0);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.identical,
                "n={} shards={}: sharded output diverged from the sequential engine",
                r.n, r.shards
            );
            assert!(r.events > 0 && r.wall.as_nanos() > 0 && r.speedup > 0.0);
        }
        // Sizes sweep largest-first (freed trace memory only reuses
        // downward), so the n = 16 rows come before the n = 8 rows.
        assert!(rows[..3].iter().all(|r| r.n == 16));
        assert!(rows[3..].iter().all(|r| r.n == 8));
        // Every row of one n records the same event count (same run).
        assert!(rows[..3].iter().all(|r| r.events == rows[0].events));
        assert!(rows[3..].iter().all(|r| r.events == rows[3].events));
    }

    #[test]
    fn e12_minimum_span_still_covers_the_exclusion() {
        // MIN_INTERVALS = 3 is a promise: even the shortest row the memory
        // cap can impose (horizon 300, three heartbeat intervals) contains
        // the whole crash → suspicion → commit arc, so E12 never times an
        // exclusion-free run on a capped host.
        let mut sim = shard_sweep_run(16, 0);
        sim.run_until(300);
        assert_eq!(
            sim.node(ProcessId(0)).ver(),
            1,
            "the exclusion must commit within three heartbeat intervals"
        );
    }

    #[test]
    fn e13_every_topology_reaches_the_same_membership() {
        let rows = e13_topology_sweep(&[8, 16], 2);
        assert_eq!(rows.len(), 6, "two sizes x three topologies");
        assert!(
            rows.iter().all(|r| r.identical),
            "per-seed final membership must not depend on the topology"
        );
        // Descending sizes, declaration order within a size.
        let labels: Vec<(usize, &str)> = rows.iter().map(|r| (r.n, r.topology)).collect();
        assert_eq!(
            labels,
            [
                (16, "flat"),
                (16, "sparse"),
                (16, "hier"),
                (8, "flat"),
                (8, "sparse"),
                (8, "hier")
            ]
        );
    }

    #[test]
    fn e13_degree_sums_match_the_graphs() {
        let rows = e13_topology_sweep(&[16], 1);
        let deg = |label: &str| {
            rows.iter()
                .find(|r| r.topology == label)
                .unwrap()
                .degree_sum
        };
        assert_eq!(deg("flat"), 16 * 15, "clique: n(n-1) directed edges");
        assert_eq!(deg("sparse"), 16 * 4, "4-regular ring: 4n directed edges");
        // Groups of ceil(sqrt(16)) = 4: every member monitors its 3 group
        // peers; the 4 leaders each monitor the 3 other leaders.
        assert_eq!(deg("hier"), 16 * 3 + 4 * 3);
    }

    #[test]
    fn e13_sparse_graphs_cut_the_message_load() {
        let rows = e13_topology_sweep(&[32], 1);
        let msgs = |label: &str| rows.iter().find(|r| r.topology == label).unwrap().messages;
        assert!(
            msgs("sparse") < msgs("flat") && msgs("hier") < msgs("flat"),
            "sparse and hierarchical monitoring must send fewer messages \
             than the clique at n = 32 (sparse {} / hier {} / flat {})",
            msgs("sparse"),
            msgs("hier"),
            msgs("flat")
        );
    }

    #[test]
    fn f4_view_is_unique_despite_concurrent_initiators() {
        let (initiations, distinct_v1, safety) = f4_unique_view(700);
        assert!(
            initiations >= 2,
            "scenario must produce concurrent initiations"
        );
        assert_eq!(
            distinct_v1, 1,
            "GMP-2: version 1 must have a unique membership"
        );
        assert!(safety, "GMP safety must hold");
    }
}
