//! The GMP specification (§2.3) as executable checks over recorded runs.
//!
//! Each check corresponds to one clause of the paper's problem definition.
//! GMP-5 and convergence are *liveness* properties: they are meaningful only
//! on quiescent runs (run the simulation long enough for the protocol to
//! settle before checking).

use crate::analysis::{analyze, RunAnalysis};
use gmp_sim::Trace;
use gmp_types::{OpKind, ProcessId, Ver};
use std::collections::BTreeSet;
use std::fmt;

/// A violation of the GMP specification found in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// GMP-0: initial local views disagree.
    Gmp0 {
        /// A process whose initial view differs from the first one seen.
        pid: ProcessId,
    },
    /// GMP-1: a process removed another without a preceding `faulty` event.
    Gmp1 {
        /// The remover.
        pid: ProcessId,
        /// The removed process.
        target: ProcessId,
        /// The version produced by the unjustified removal.
        ver: Ver,
    },
    /// GMP-2: two different memberships exist for the same version.
    Gmp2 {
        /// The version with conflicting memberships.
        ver: Ver,
        /// One membership.
        a: Vec<ProcessId>,
        /// The other membership.
        b: Vec<ProcessId>,
    },
    /// GMP-3: a process skipped a version (its local view sequence is not
    /// consecutive).
    Gmp3 {
        /// The process with the gap.
        pid: ProcessId,
        /// The version it held before the gap.
        from: Ver,
        /// The version it jumped to.
        to: Ver,
    },
    /// GMP-4: a removed process was re-instated into a local view.
    Gmp4 {
        /// The process whose view re-admitted someone.
        pid: ProcessId,
        /// The re-instated process.
        returned: ProcessId,
        /// The version at which it returned.
        ver: Ver,
    },
    /// GMP-5: a suspicion never led to either party leaving the system view
    /// (checked on quiescent runs only).
    Gmp5 {
        /// The believer.
        observer: ProcessId,
        /// The suspect that was never dealt with.
        suspect: ProcessId,
    },
    /// Functional processes ended the run with different views.
    Diverged {
        /// First process.
        a: ProcessId,
        /// Second process.
        b: ProcessId,
        /// `a`'s final membership.
        view_a: Vec<ProcessId>,
        /// `b`'s final membership.
        view_b: Vec<ProcessId>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Gmp0 { pid } => write!(f, "GMP-0: {pid} has a different initial view"),
            Violation::Gmp1 { pid, target, ver } => {
                write!(
                    f,
                    "GMP-1: {pid} removed {target} (v{ver}) without believing it faulty"
                )
            }
            Violation::Gmp2 { ver, a, b } => {
                write!(f, "GMP-2: version {ver} has two memberships {a:?} vs {b:?}")
            }
            Violation::Gmp3 { pid, from, to } => {
                write!(f, "GMP-3: {pid} skipped from v{from} to v{to}")
            }
            Violation::Gmp4 { pid, returned, ver } => {
                write!(f, "GMP-4: {pid} re-instated {returned} at v{ver}")
            }
            Violation::Gmp5 { observer, suspect } => {
                write!(
                    f,
                    "GMP-5: {observer} suspected {suspect} but neither left the view"
                )
            }
            Violation::Diverged {
                a,
                b,
                view_a,
                view_b,
            } => {
                write!(
                    f,
                    "divergence: {a} ended with {view_a:?}, {b} with {view_b:?}"
                )
            }
        }
    }
}

/// Outcome of checking a run against (part of) the GMP specification.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations found, in no particular order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable message if any violation was found; for use
    /// in tests.
    ///
    /// # Panics
    ///
    /// Panics when the report contains violations.
    pub fn assert_ok(&self) {
        if !self.is_ok() {
            let mut msg = String::from("GMP violations found:\n");
            for v in &self.violations {
                msg.push_str(&format!("  - {v}\n"));
            }
            panic!("{msg}");
        }
    }
}

/// GMP-0: every process that installs version 0 installs the same view
/// (`Proc = Sys(c₀, Proc)`).
pub fn check_gmp0(a: &RunAnalysis) -> Vec<Violation> {
    let mut first: Option<&Vec<ProcessId>> = None;
    let mut out = Vec::new();
    for (pid, views) in &a.views {
        if let Some(v0) = views.iter().find(|v| v.ver == 0) {
            match first {
                None => first = Some(&v0.members),
                Some(expected) => {
                    if &v0.members != expected {
                        out.push(Violation::Gmp0 { pid: *pid });
                    }
                }
            }
        }
    }
    out
}

/// GMP-1: `q ∉ Memb(p) ⇒ faulty_p(q)` — every removal applied by `p` is
/// preceded (in `p`'s history) by `faulty_p(target)`.
pub fn check_gmp1(a: &RunAnalysis) -> Vec<Violation> {
    let mut out = Vec::new();
    for rec in &a.applied {
        if rec.op.kind != OpKind::Remove {
            continue;
        }
        let justified = a
            .faulty
            .iter()
            .any(|f| f.observer == rec.pid && f.suspect == rec.op.target && f.event < rec.event);
        if !justified {
            out.push(Violation::Gmp1 {
                pid: rec.pid,
                target: rec.op.target,
                ver: rec.ver,
            });
        }
    }
    out
}

/// GMP-2: system views are unique — all processes installing version `x`
/// install the same membership.
pub fn check_gmp2(a: &RunAnalysis) -> Vec<Violation> {
    let mut out = Vec::new();
    let max_ver = a
        .views
        .values()
        .flat_map(|vs| vs.iter().map(|v| v.ver))
        .max()
        .unwrap_or(0);
    for x in 0..=max_ver {
        let insts = a.memberships_of_ver(x);
        for w in insts.windows(2) {
            if w[0].members != w[1].members {
                out.push(Violation::Gmp2 {
                    ver: x,
                    a: w[0].members.clone(),
                    b: w[1].members.clone(),
                });
                break;
            }
        }
    }
    out
}

/// GMP-3: every process sees a consecutive sequence of local views (crashed
/// processes see a prefix; joiners a suffix — both allowed).
pub fn check_gmp3(a: &RunAnalysis) -> Vec<Violation> {
    let mut out = Vec::new();
    for (pid, views) in &a.views {
        for w in views.windows(2) {
            if w[1].ver != w[0].ver + 1 {
                out.push(Violation::Gmp3 {
                    pid: *pid,
                    from: w[0].ver,
                    to: w[1].ver,
                });
            }
        }
    }
    out
}

/// GMP-4: `q ∉ Memb(p) ⇒ □(q ∉ Memb(p))` — once a process disappears from
/// `p`'s local view it never returns.
pub fn check_gmp4(a: &RunAnalysis) -> Vec<Violation> {
    let mut out = Vec::new();
    for (pid, views) in &a.views {
        let mut removed: BTreeSet<ProcessId> = BTreeSet::new();
        let mut prev: Option<&Vec<ProcessId>> = None;
        for v in views {
            if let Some(prev_members) = prev {
                for m in prev_members {
                    if !v.members.contains(m) {
                        removed.insert(*m);
                    }
                }
            }
            for m in &v.members {
                if removed.contains(m) {
                    out.push(Violation::Gmp4 {
                        pid: *pid,
                        returned: *m,
                        ver: v.ver,
                    });
                }
            }
            prev = Some(&v.members);
        }
    }
    out
}

/// GMP-5 (liveness; quiescent runs only): for every `faulty_p(q)` with `p`
/// functional, eventually `q` or `p` is out of the system view.
pub fn check_gmp5(a: &RunAnalysis) -> Vec<Violation> {
    let Some(final_view) = a.final_system_view() else {
        return Vec::new();
    };
    let functional = a.functional();
    let mut out = Vec::new();
    let mut seen: BTreeSet<(ProcessId, ProcessId)> = BTreeSet::new();
    for f in &a.faulty {
        if !seen.insert((f.observer, f.suspect)) {
            continue;
        }
        if !functional.contains(&f.observer) {
            continue; // detections by failed processes are finessed (§2.3)
        }
        let suspect_out = !final_view.members.contains(&f.suspect);
        let observer_out = !final_view.members.contains(&f.observer);
        if !suspect_out && !observer_out {
            out.push(Violation::Gmp5 {
                observer: f.observer,
                suspect: f.suspect,
            });
        }
    }
    out
}

/// Convergence ("1-copy behaviour", §2.3): all functional processes that
/// ever installed a view end the run with the *same* final view at the
/// maximum version.
pub fn check_convergence(a: &RunAnalysis) -> Vec<Violation> {
    let functional = a.functional();
    let mut out = Vec::new();
    let finals: Vec<(ProcessId, &crate::analysis::ViewRecord)> = functional
        .iter()
        .filter_map(|p| a.final_view_of(*p).map(|v| (*p, v)))
        .collect();
    for w in finals.windows(2) {
        let (pa, va) = &w[0];
        let (pb, vb) = &w[1];
        if va.members != vb.members {
            out.push(Violation::Diverged {
                a: *pa,
                b: *pb,
                view_a: va.members.clone(),
                view_b: vb.members.clone(),
            });
        }
    }
    out
}

/// Runs the *safety* checks (GMP-0…GMP-4): valid on any run, quiescent or
/// not.
pub fn check_safety(trace: &Trace) -> Report {
    let a = analyze(trace);
    let mut violations = Vec::new();
    violations.extend(check_gmp0(&a));
    violations.extend(check_gmp1(&a));
    violations.extend(check_gmp2(&a));
    violations.extend(check_gmp3(&a));
    violations.extend(check_gmp4(&a));
    Report { violations }
}

/// Runs the full specification including the liveness clauses (GMP-5,
/// convergence); only meaningful on quiescent runs.
pub fn check_all(trace: &Trace) -> Report {
    let a = analyze(trace);
    let mut violations = Vec::new();
    violations.extend(check_gmp0(&a));
    violations.extend(check_gmp1(&a));
    violations.extend(check_gmp2(&a));
    violations.extend(check_gmp3(&a));
    violations.extend(check_gmp4(&a));
    violations.extend(check_gmp5(&a));
    violations.extend(check_convergence(&a));
    Report { violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{FaultyRecord, OpRecord, ViewRecord};
    use gmp_types::Op;

    fn views(pid: u32, specs: &[(Ver, &[u32])]) -> (ProcessId, Vec<ViewRecord>) {
        (
            ProcessId(pid),
            specs
                .iter()
                .enumerate()
                .map(|(i, (ver, ms))| ViewRecord {
                    ver: *ver,
                    members: ms.iter().map(|&m| ProcessId(m)).collect(),
                    mgr: ProcessId(0),
                    event: i,
                })
                .collect(),
        )
    }

    fn base() -> RunAnalysis {
        let mut a = RunAnalysis {
            n: 3,
            ..Default::default()
        };
        let (p, v) = views(0, &[(0, &[0, 1, 2]), (1, &[0, 1])]);
        a.views.insert(p, v);
        let (p, v) = views(1, &[(0, &[0, 1, 2]), (1, &[0, 1])]);
        a.views.insert(p, v);
        a.crashed.insert(ProcessId(2));
        a.faulty.push(FaultyRecord {
            observer: ProcessId(0),
            suspect: ProcessId(2),
            event: 0,
        });
        a.faulty.push(FaultyRecord {
            observer: ProcessId(1),
            suspect: ProcessId(2),
            event: 0,
        });
        a.applied.push(OpRecord {
            pid: ProcessId(0),
            op: Op::remove(ProcessId(2)),
            ver: 1,
            event: 1,
        });
        a
    }

    #[test]
    fn clean_run_passes() {
        let a = base();
        assert!(check_gmp0(&a).is_empty());
        assert!(check_gmp1(&a).is_empty());
        assert!(check_gmp2(&a).is_empty());
        assert!(check_gmp3(&a).is_empty());
        assert!(check_gmp4(&a).is_empty());
        assert!(check_gmp5(&a).is_empty());
        assert!(check_convergence(&a).is_empty());
    }

    #[test]
    fn gmp0_detects_disagreeing_initial_views() {
        let mut a = base();
        let (p, v) = views(2, &[(0, &[0, 2])]);
        a.views.insert(p, v);
        assert_eq!(check_gmp0(&a).len(), 1);
    }

    #[test]
    fn gmp1_detects_capricious_removal() {
        let mut a = base();
        a.faulty.clear();
        let v = check_gmp1(&a);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::Gmp1 {
                target: ProcessId(2),
                ..
            }
        ));
    }

    #[test]
    fn gmp1_requires_belief_before_removal() {
        let mut a = base();
        a.faulty.clear();
        // Belief recorded after the removal: still a violation.
        a.faulty.push(FaultyRecord {
            observer: ProcessId(0),
            suspect: ProcessId(2),
            event: 9,
        });
        assert_eq!(check_gmp1(&a).len(), 1);
    }

    #[test]
    fn gmp2_detects_conflicting_version() {
        let mut a = base();
        let (p, v) = views(2, &[(1, &[0, 2])]); // different membership for v1
        a.views.insert(p, v);
        assert_eq!(check_gmp2(&a).len(), 1);
    }

    #[test]
    fn gmp3_detects_skipped_version() {
        let mut a = base();
        let (p, v) = views(2, &[(0, &[0, 1, 2]), (2, &[0])]);
        a.views.insert(p, v);
        assert_eq!(check_gmp3(&a).len(), 1);
    }

    #[test]
    fn gmp4_detects_reinstatement() {
        let mut a = base();
        let (p, v) = views(2, &[(0, &[0, 1, 2]), (1, &[0, 1]), (2, &[0, 1, 2])]);
        a.views.insert(p, v);
        let vio = check_gmp4(&a);
        assert_eq!(vio.len(), 1);
        assert!(matches!(
            vio[0],
            Violation::Gmp4 {
                returned: ProcessId(2),
                ..
            }
        ));
    }

    #[test]
    fn gmp5_detects_undealt_suspicion() {
        let mut a = base();
        // p0 suspects p1, but both remain in the final view {0, 1}.
        a.faulty.push(FaultyRecord {
            observer: ProcessId(0),
            suspect: ProcessId(1),
            event: 5,
        });
        let v = check_gmp5(&a);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::Gmp5 {
                suspect: ProcessId(1),
                ..
            }
        ));
    }

    #[test]
    fn gmp5_ignores_failed_observers() {
        let mut a = base();
        // The crashed p2 suspected p0: finessed by the spec.
        a.faulty.push(FaultyRecord {
            observer: ProcessId(2),
            suspect: ProcessId(0),
            event: 5,
        });
        assert!(check_gmp5(&a).is_empty());
    }

    #[test]
    fn convergence_detects_divergence() {
        let mut a = base();
        a.views.get_mut(&ProcessId(1)).unwrap().push(ViewRecord {
            ver: 2,
            members: vec![ProcessId(1)],
            mgr: ProcessId(1),
            event: 7,
        });
        // Now p0 ends with {0,1} but p1 ends with {1}.
        assert_eq!(check_convergence(&a).len(), 1);
    }

    #[test]
    fn report_assert_ok_panics_with_details() {
        let r = Report {
            violations: vec![Violation::Gmp0 { pid: ProcessId(1) }],
        };
        let err = std::panic::catch_unwind(|| r.assert_ok()).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("GMP-0"));
    }

    #[test]
    fn violations_display() {
        let vs = [
            Violation::Gmp0 { pid: ProcessId(1) },
            Violation::Gmp1 {
                pid: ProcessId(0),
                target: ProcessId(1),
                ver: 1,
            },
            Violation::Gmp2 {
                ver: 1,
                a: vec![],
                b: vec![],
            },
            Violation::Gmp3 {
                pid: ProcessId(0),
                from: 1,
                to: 3,
            },
            Violation::Gmp4 {
                pid: ProcessId(0),
                returned: ProcessId(1),
                ver: 2,
            },
            Violation::Gmp5 {
                observer: ProcessId(0),
                suspect: ProcessId(1),
            },
            Violation::Diverged {
                a: ProcessId(0),
                b: ProcessId(1),
                view_a: vec![],
                view_b: vec![],
            },
        ];
        for v in &vs {
            assert!(!v.to_string().is_empty());
        }
    }
}
