//! Machine-checkable form of the paper's Group Membership Problem
//! specification (§2.3), evaluated over recorded simulation runs.
//!
//! The paper defines GMP by six clauses:
//!
//! | clause | informal reading | checker |
//! |--------|------------------|---------|
//! | GMP-0  | the initial system view exists | [`checks::check_gmp0`] |
//! | GMP-1  | no capricious removals: `q ∉ Memb(p) ⇒ faulty_p(q)` | [`checks::check_gmp1`] |
//! | GMP-2  | a unique sequence of system views | [`checks::check_gmp2`] |
//! | GMP-3  | all processes see the same sequence of local views | [`checks::check_gmp3`] |
//! | GMP-4  | no re-instatement into local views | [`checks::check_gmp4`] |
//! | GMP-5  | every suspicion eventually removes suspect or believer | [`checks::check_gmp5`] |
//!
//! plus the "1-copy behaviour" convergence reading
//! ([`checks::check_convergence`]). Safety clauses hold on any prefix of a
//! run; the liveness clauses (GMP-5, convergence) are asserted on quiescent
//! runs.
//!
//! The [`epistemic`] module implements the appendix's knowledge analysis
//! (Equation 4 hindsight and the `(E◇̄)^y` ladder) using causal cones over
//! the vector-clock-stamped trace.
//!
//! # Example
//!
//! ```
//! use gmp_core::cluster;
//! use gmp_props::check_all;
//! use gmp_types::ProcessId;
//!
//! let mut sim = cluster(5, 3);
//! sim.crash_at(ProcessId(3), 400);
//! sim.run_until(10_000);
//! check_all(sim.trace()).assert_ok();
//! ```

pub mod analysis;
pub mod checks;
pub mod epistemic;

pub use analysis::{analyze, FaultyRecord, OpRecord, RunAnalysis, ViewRecord};
pub use checks::{check_all, check_convergence, check_safety, Report, Violation};
pub use epistemic::{check_hindsight, hindsight_holds, knowledge_ladder, render_ladder};
