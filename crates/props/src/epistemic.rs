//! Executable form of the paper's epistemic analysis (Appendix).
//!
//! The appendix phrases GMP in terms of process knowledge:
//!
//! * **Equation 4** — when `p` receives the commit `!x` (installs version
//!   `x`), it knows that `Sys^{x-1}` *was* a defined system view:
//!   `(ver(p) = x) ⇒ K_p ◇̄ IsSysView(x−1)`;
//! * the **knowledge ladder** — `IsSysView(x) ⇒ (E◇̄)^y IsSysView(x−y)`:
//!   deeper past views are known at correspondingly deeper "everyone knows"
//!   levels.
//!
//! We evaluate knowledge under the standard full-information reading: `p`
//! knows a fact at event `e` if the fact is determined by events in `e`'s
//! causal past. Installation events carry vector clocks, so "does `p` know
//! `IsSysView(w)` when installing `x`" becomes "is some installation of `w`
//! in the causal past of `p`'s installation of `x`" — the FIFO-channel
//! argument the appendix makes informally.

use crate::analysis::analyze;
use gmp_sim::Trace;
use gmp_types::{ProcessId, Ver};

/// Result of the Equation 4 check for one installation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HindsightRecord {
    /// The process installing the view.
    pub pid: ProcessId,
    /// The version installed.
    pub ver: Ver,
    /// Whether an installation of `ver − 1` lies in the causal past.
    pub knows_previous: bool,
}

/// Checks Equation 4 on every installation with `ver ≥ 2` in the run:
/// installing `x` implies causally knowing that `x−1` was installed
/// somewhere.
///
/// Version 1 installations are exempt: `Sys^0` is the initial view, which
/// is commonly known by assumption (GMP-0) rather than through messages.
pub fn check_hindsight(trace: &Trace) -> Vec<HindsightRecord> {
    let a = analyze(trace);
    let log = trace.to_event_log();
    let mut out = Vec::new();
    for views in a.views.values() {
        for v in views {
            if v.ver < 2 {
                continue;
            }
            let prev_installed_in_past = a
                .views
                .values()
                .flat_map(|vs| vs.iter())
                .filter(|w| w.ver == v.ver - 1)
                .any(|w| log.in_causal_past(w.event, v.event));
            out.push(HindsightRecord {
                pid: trace.events[v.event].pid,
                ver: v.ver,
                knows_previous: prev_installed_in_past,
            });
        }
    }
    out
}

/// True when Equation 4 holds at every checked installation of the run.
pub fn hindsight_holds(trace: &Trace) -> bool {
    check_hindsight(trace).iter().all(|r| r.knows_previous)
}

/// One row of the knowledge-ladder table (experiment A1): for version `x`,
/// the maximum depth `y` such that every member installing `x` causally
/// knows `IsSysView(x−y)` at its installation event — and transitively all
/// shallower depths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LadderRow {
    /// The version whose installations are examined.
    pub ver: Ver,
    /// Number of processes that installed this version.
    pub installers: usize,
    /// Maximum uniformly-known depth (`x` itself means full history).
    pub max_depth: u64,
}

/// Computes the knowledge ladder `IsSysView(x) ⇒ (E◇̄)^y IsSysView(x−y)`
/// over a recorded run (see module docs for the causal-cone reading).
pub fn knowledge_ladder(trace: &Trace) -> Vec<LadderRow> {
    let a = analyze(trace);
    let log = trace.to_event_log();
    let max_ver = a
        .views
        .values()
        .flat_map(|vs| vs.iter().map(|v| v.ver))
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for x in 1..=max_ver {
        let installs: Vec<_> = a.memberships_of_ver(x).into_iter().collect();
        if installs.is_empty() {
            continue;
        }
        let mut depth = 0;
        'depth: for y in 1..=x {
            let w = x - y;
            // Every installer of x must causally see some installation of w
            // (or hold w itself in its own history: a process's own past
            // views are trivially known).
            for inst in &installs {
                let known = a
                    .views
                    .values()
                    .flat_map(|vs| vs.iter())
                    .filter(|r| r.ver == w)
                    .any(|r| log.in_causal_past(r.event, inst.event));
                if !known {
                    break 'depth;
                }
            }
            depth = y;
        }
        rows.push(LadderRow {
            ver: x,
            installers: installs.len(),
            max_depth: depth,
        });
    }
    rows
}

/// Pretty-prints the ladder as the A1 experiment table.
pub fn render_ladder(rows: &[LadderRow]) -> String {
    let mut out = String::from("ver  installers  max-known-depth\n");
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<11} {}\n",
            r.ver, r.installers, r.max_depth
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end epistemic checks against real protocol runs live in the
    // integration test suite (tests/epistemic.rs at the workspace root);
    // here we only exercise the empty-trace edges.
    #[test]
    fn empty_trace_is_trivially_fine() {
        let trace = Trace {
            n: 2,
            events: Vec::new(),
        };
        assert!(check_hindsight(&trace).is_empty());
        assert!(hindsight_holds(&trace));
        assert!(knowledge_ladder(&trace).is_empty());
        assert_eq!(render_ladder(&[]).lines().count(), 1);
    }

    #[test]
    fn render_has_rows() {
        let rows = vec![LadderRow {
            ver: 1,
            installers: 3,
            max_depth: 1,
        }];
        let s = render_ladder(&rows);
        assert!(s.contains("1"));
        assert_eq!(s.lines().count(), 2);
    }
}
