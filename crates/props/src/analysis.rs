//! Extraction of membership-relevant events from a recorded run.

use gmp_sim::{Trace, TraceKind};
use gmp_types::{Note, Op, ProcessId, Ver};
use std::collections::{BTreeMap, BTreeSet};

/// One installed local view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewRecord {
    /// The version installed.
    pub ver: Ver,
    /// Seniority-ordered membership.
    pub members: Vec<ProcessId>,
    /// The coordinator from the installer's perspective.
    pub mgr: ProcessId,
    /// Global index of the `ViewInstalled` event in the trace.
    pub event: usize,
}

/// One `faulty_p(q)` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultyRecord {
    /// The believer `p`.
    pub observer: ProcessId,
    /// The suspect `q`.
    pub suspect: ProcessId,
    /// Global index of the event in the trace.
    pub event: usize,
}

/// One applied membership operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// The applying process.
    pub pid: ProcessId,
    /// The operation.
    pub op: Op,
    /// The version the application produced.
    pub ver: Ver,
    /// Global index of the event in the trace.
    pub event: usize,
}

/// Membership-relevant events of a run, grouped for the GMP checkers.
#[derive(Clone, Debug, Default)]
pub struct RunAnalysis {
    /// Number of processes in the run.
    pub n: usize,
    /// Per-process installed views, in history order.
    pub views: BTreeMap<ProcessId, Vec<ViewRecord>>,
    /// All `faulty_p(q)` events, in trace order.
    pub faulty: Vec<FaultyRecord>,
    /// All applied operations, in trace order.
    pub applied: Vec<OpRecord>,
    /// Processes that crashed (fault injection).
    pub crashed: BTreeSet<ProcessId>,
    /// Processes that executed `quit` themselves.
    pub quit: BTreeSet<ProcessId>,
}

impl RunAnalysis {
    /// Processes that neither crashed nor quit.
    pub fn functional(&self) -> BTreeSet<ProcessId> {
        (0..self.n as u32)
            .map(ProcessId)
            .filter(|p| !self.crashed.contains(p) && !self.quit.contains(p))
            .collect()
    }

    /// The highest version installed anywhere, with its membership — the
    /// final system view of a quiescent run.
    pub fn final_system_view(&self) -> Option<&ViewRecord> {
        self.views
            .values()
            .flat_map(|vs| vs.iter())
            .max_by_key(|v| (v.ver, v.event))
    }

    /// The last view installed by one process.
    pub fn final_view_of(&self, p: ProcessId) -> Option<&ViewRecord> {
        self.views.get(&p).and_then(|vs| vs.last())
    }

    /// All distinct memberships recorded for a version.
    pub fn memberships_of_ver(&self, x: Ver) -> Vec<&ViewRecord> {
        self.views
            .values()
            .flat_map(|vs| vs.iter())
            .filter(|v| v.ver == x)
            .collect()
    }
}

/// Scans a trace into a [`RunAnalysis`].
pub fn analyze(trace: &Trace) -> RunAnalysis {
    let mut a = RunAnalysis {
        n: trace.n,
        ..RunAnalysis::default()
    };
    for (idx, ev) in trace.events.iter().enumerate() {
        match &ev.kind {
            TraceKind::Crash => {
                a.crashed.insert(ev.pid);
            }
            TraceKind::Quit => {
                a.quit.insert(ev.pid);
            }
            TraceKind::Note(note) => match note {
                Note::ViewInstalled { ver, members, mgr } => {
                    a.views.entry(ev.pid).or_default().push(ViewRecord {
                        ver: *ver,
                        members: members.clone(),
                        mgr: *mgr,
                        event: idx,
                    });
                }
                Note::Faulty { suspect, .. } => {
                    a.faulty.push(FaultyRecord {
                        observer: ev.pid,
                        suspect: *suspect,
                        event: idx,
                    });
                }
                Note::OpApplied { op, ver } => {
                    a.applied.push(OpRecord {
                        pid: ev.pid,
                        op: *op,
                        ver: *ver,
                        event: idx,
                    });
                }
                _ => {}
            },
            _ => {}
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_causality::Stamp;
    use gmp_sim::TraceEvent;
    use gmp_types::note::FaultySource;

    fn note_event(pid: u32, note: Note) -> TraceEvent {
        TraceEvent {
            time: 0,
            pid: ProcessId(pid),
            lamport: 1,
            vc: Stamp::zero(3),
            kind: TraceKind::Note(note),
        }
    }

    #[test]
    fn analysis_collects_records() {
        let mut t = Trace {
            n: 3,
            events: Vec::new(),
        };
        t.events.push(note_event(
            0,
            Note::ViewInstalled {
                ver: 0,
                members: vec![ProcessId(0), ProcessId(1)],
                mgr: ProcessId(0),
            },
        ));
        t.events.push(note_event(
            0,
            Note::Faulty {
                suspect: ProcessId(1),
                source: FaultySource::Observation,
            },
        ));
        t.events.push(note_event(
            0,
            Note::OpApplied {
                op: Op::remove(ProcessId(1)),
                ver: 1,
            },
        ));
        t.events.push(note_event(
            0,
            Note::ViewInstalled {
                ver: 1,
                members: vec![ProcessId(0)],
                mgr: ProcessId(0),
            },
        ));
        t.events.push(TraceEvent {
            time: 5,
            pid: ProcessId(1),
            lamport: 1,
            vc: Stamp::zero(3),
            kind: TraceKind::Crash,
        });

        let a = analyze(&t);
        assert_eq!(a.n, 3);
        assert_eq!(a.views[&ProcessId(0)].len(), 2);
        assert_eq!(a.faulty.len(), 1);
        assert_eq!(a.applied.len(), 1);
        assert!(a.crashed.contains(&ProcessId(1)));
        assert_eq!(
            a.functional(),
            [ProcessId(0), ProcessId(2)].into_iter().collect()
        );
        assert_eq!(a.final_system_view().unwrap().ver, 1);
        assert_eq!(a.memberships_of_ver(1).len(), 1);
        assert_eq!(a.final_view_of(ProcessId(0)).unwrap().ver, 1);
        assert!(a.final_view_of(ProcessId(2)).is_none());
    }
}
