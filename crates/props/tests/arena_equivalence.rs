//! Property-based pinning of the arena migration.
//!
//! The index-addressed arenas (PR 5) replaced `BTreeMap`-keyed hot state
//! in the detector and the member's digest bookkeeping. The golden trace
//! fingerprints prove specific runs unchanged; these properties prove the
//! *detector* unchanged under arbitrary schedules by driving the frozen
//! pre-arena oracle ([`MapDetector`]) and the arena-backed
//! [`HeartbeatDetector`] through identical op sequences, and prove the
//! full member stack replay-deterministic under random fault schedules.

use gmp_detect::{HeartbeatDetector, MapDetector};
use gmp_types::ProcessId;
use proptest::prelude::*;

/// One step of a detector schedule, decoded from `(op, pid, dt)`.
#[derive(Clone, Copy, Debug)]
enum Op {
    Track(ProcessId),
    HeardFrom(ProcessId),
    Suspect(ProcessId),
    Forget(ProcessId),
    Tick,
}

fn decode(op: u8, pid: u8) -> Op {
    let p = ProcessId(u32::from(pid));
    match op % 5 {
        0 => Op::Track(p),
        1 => Op::HeardFrom(p),
        2 => Op::Suspect(p),
        3 => Op::Forget(p),
        _ => Op::Tick,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Identical schedules of track / heard_from / suspect / forget / tick
    /// produce identical suspicions (same peers, same tick), identical
    /// tracked sets and identical suspect sets in the map-backed oracle
    /// and the arena-backed detector.
    #[test]
    fn arena_detector_matches_the_map_oracle(
        steps in proptest::collection::vec((0u8..5, 0u8..8, 0u64..60), 1..120),
        suspect_after in 1u64..300,
    ) {
        let mut oracle = MapDetector::new(suspect_after);
        let mut arena = HeartbeatDetector::new(suspect_after);
        let mut now = 0u64;
        // `forget` retires a peer for good at the protocol layer (a member
        // never re-tracks an excluded process under the same id), so the
        // schedule generator never re-Tracks a forgotten id either — the
        // oracle would resurrect it while the arena's tombstone semantics
        // deliberately do not promise anything for that case.
        let mut forgotten = std::collections::BTreeSet::new();
        for (op, pid, dt) in steps {
            now += dt;
            match decode(op, pid) {
                Op::Track(p) => {
                    if !forgotten.contains(&p) {
                        oracle.track(p, now);
                        arena.track(p, now);
                    }
                }
                Op::HeardFrom(p) => {
                    oracle.heard_from(p, now);
                    arena.heard_from(p, now);
                }
                Op::Suspect(p) => {
                    prop_assert_eq!(oracle.suspect(p), arena.suspect(p));
                }
                Op::Forget(p) => {
                    forgotten.insert(p);
                    oracle.forget(p);
                    arena.forget(p);
                }
                Op::Tick => {
                    prop_assert_eq!(oracle.tick(now), arena.tick(now), "tick at {}", now);
                }
            }
            for q in 0u32..8 {
                let q = ProcessId(q);
                prop_assert_eq!(oracle.is_suspect(q), arena.is_suspect(q), "{} at {}", q, now);
            }
        }
        // Final drain: every outstanding lease expires together.
        now += suspect_after + 1;
        prop_assert_eq!(oracle.tick(now), arena.tick(now));
        let tracked_o: Vec<_> = oracle.tracked().collect();
        let mut tracked_a: Vec<_> = arena.tracked().collect();
        tracked_a.sort_unstable();
        prop_assert_eq!(tracked_o, tracked_a);
        let suspects_o: Vec<_> = oracle.suspects().collect();
        let mut suspects_a: Vec<_> = arena.suspects().collect();
        suspects_a.sort_unstable();
        prop_assert_eq!(suspects_o, suspects_a);
    }

    /// The full protocol stack on the arena engine stays a pure function
    /// of `(n, seed, fault schedule)`: two runs of a randomly drawn
    /// crash-and-join scenario produce byte-identical stamped traces.
    #[test]
    fn member_runs_replay_identically(
        n in 3usize..7,
        seed in 0u64..1_000_000,
        crash_at in 200u64..2_000,
        join_at in 300u64..1_500,
    ) {
        use gmp_core::{ClusterBuilder, Config, JoinConfig};
        let run = || {
            let mut sim = ClusterBuilder::new(n, Config::default())
                .joiner(JoinConfig::new(join_at, vec![ProcessId(1)]))
                .sim(gmp_sim::Builder::new().seed(seed))
                .build();
            sim.crash_at(ProcessId(n as u32 - 1), crash_at);
            sim.run_until(6_000);
            sim.trace()
                .events
                .iter()
                .map(|e| {
                    format!(
                        "t={} pid={} lamport={} vc={:?} kind={:?}",
                        e.time, e.pid, e.lamport, e.vc.as_slice(), e.kind
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, run());
    }
}
