//! Executable versions of the paper's lower-bound counterexamples
//! (§7.3, Figures 4 and 11).
//!
//! Each function builds a deterministic adversarial schedule and runs it,
//! returning the finished simulator so callers (tests, the `tables`
//! harness) can inspect views and check GMP properties.

use crate::one_phase::{OneMsg, OnePhaseMember};
use gmp_core::{Config, Member, Msg};
use gmp_sim::{BlockMode, Builder, Sim};
use gmp_types::{ProcessId, View};

/// Claim 7.1: a one-phase update algorithm violates GMP-3 when the
/// coordinator can fail.
///
/// The proof's run: partition `Proc` into `S ∋ Mgr` and `R ∋ r`; each side
/// suspects the other, and each side's coordinator unilaterally commits the
/// other's removal — producing two different views numbered 1.
pub fn claim_7_1_run(seed: u64) -> Sim<OneMsg, OnePhaseMember> {
    let n = 6u32;
    let view: View = (0..n).map(ProcessId).collect();
    let mut sim = Builder::new().seed(seed).build();
    for _ in 0..n {
        sim.add_node(OnePhaseMember::new(view.clone(), 40, 200));
    }
    // S = {Mgr=0, 3, 4}, R = {r=1, 2, 5}.
    let s: Vec<ProcessId> = [0u32, 3, 4].map(ProcessId).to_vec();
    let r: Vec<ProcessId> = [1u32, 2, 5].map(ProcessId).to_vec();
    sim.partition_at(&[&s, &r], 50);
    sim.run_until(10_000);
    sim
}

/// The seniority layout of the Figure 11 run (see [`figure_11_run`]).
#[derive(Clone, Copy, Debug)]
pub struct Fig11Cast {
    /// The initial coordinator, mid-exclusion when it dies.
    pub mgr: ProcessId,
    /// First reconfigurer; commits invisibly and crashes.
    pub p: ProcessId,
    /// Sole witness of `p`'s commit; partitioned away afterwards.
    pub w: ProcessId,
    /// Second reconfigurer; must decide which proposal was committed.
    pub r: ProcessId,
    /// The process `Mgr` was trying to exclude.
    pub z: ProcessId,
    /// The only process that saw `Mgr`'s invitation.
    pub q: ProcessId,
}

/// The cast used by [`figure_11_run`].
pub const FIG11_CAST: Fig11Cast = Fig11Cast {
    mgr: ProcessId(0),
    p: ProcessId(1),
    w: ProcessId(2),
    r: ProcessId(3),
    z: ProcessId(4),
    q: ProcessId(5),
};

/// Figure 11 / Claim 7.2: the schedule under which a *two-phase*
/// reconfiguration cannot identify the invisibly committed proposal, while
/// the three-phase algorithm can.
///
/// Cast (seniority order; see [`FIG11_CAST`]): `Mgr` starts excluding `z`
/// but its invitation reaches only `q` before `Mgr` dies. Reconfigurer `p`
/// — ignorant of `Mgr`'s plan because its link to `q` is severed — proposes
/// `remove(Mgr)` instead, commits it *invisibly* (the commit reaches only
/// `w`), and crashes; `w` is then partitioned away. Reconfigurer `r` now
/// finds `Mgr`'s proposal among its Phase I responses:
///
/// * **three-phase** (`three_phase = true`): `p`'s *proposal phase* planted
///   `(remove(Mgr) : p : 1)` in the survivors' `next` lists, so `GetStable`
///   selects the junior proposer's plan and `r` stays consistent with `w`;
/// * **two-phase** (`three_phase = false`): no proposal phase ran, so the
///   only detectable plan is `Mgr`'s, `r` commits `remove(z)` as version 1,
///   and the run violates GMP-2/GMP-3 (`w` installed a different view 1).
pub fn figure_11_run(three_phase: bool, seed: u64) -> Sim<Msg, Member> {
    let n = 9u32; // [Mgr, p, w, r, z, q, u, v, x]
    let cast = FIG11_CAST;
    // Heartbeat gossip is disabled so suspicions travel only inside
    // protocol messages, as in the paper's figures — otherwise the scripted
    // link failures leak through piggybacked faulty sets and the schedule
    // collapses into ordinary (correct) operation.
    let cfg = Config::builder()
        .gossip(false)
        .three_phase_reconfig(three_phase)
        .build();
    let view: View = (0..n).map(ProcessId).collect();
    let mut sim = Builder::new().seed(seed).build();
    for _ in 0..n {
        sim.add_node(Member::new(cfg.clone(), view.clone()));
    }
    // Mgr's outbound traffic reaches only q: its exclusion of z stays
    // invisible to everyone else.
    for i in [1u32, 2, 3, 4, 6, 7, 8] {
        sim.block_link_at(cast.mgr, ProcessId(i), BlockMode::Drop, 0);
    }
    // p and q cannot talk: p never learns Mgr's plan, and eventually
    // suspects q by silence.
    sim.block_link_at(cast.p, cast.q, BlockMode::Drop, 0);
    sim.block_link_at(cast.q, cast.p, BlockMode::Drop, 0);
    // p's reconfiguration commit dies after a single send. The commit is
    // broadcast to the *post-removal* view (Fig. 5 applies `RL_r` before
    // the broadcast), whose first member is w — so w alone witnesses it:
    // the invisible commit.
    sim.crash_after_sends_at(cast.p, 0, Some("reconf-commit"), 1);
    // Mgr perceives z as faulty (spurious detection) and starts excluding
    // it; Mgr crashes before anyone but q hears of it.
    sim.node_mut(cast.mgr).inject_suspicion(cast.z);
    sim.crash_at(cast.mgr, 300);
    // After witnessing p's commit, w is partitioned away.
    let rest: Vec<ProcessId> = (0..n).map(ProcessId).filter(|&pid| pid != cast.w).collect();
    sim.partition_at(&[&[cast.w], &rest], 400);
    sim.run_until(30_000);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_props::{analyze, checks};

    #[test]
    fn claim_7_1_one_phase_diverges() {
        let sim = claim_7_1_run(7);
        let a = analyze(sim.trace());
        let gmp2 = checks::check_gmp2(&a);
        assert!(
            !gmp2.is_empty(),
            "the one-phase protocol must produce conflicting views under partition"
        );
        // Both sides progressed: version 1 exists with two memberships.
        assert!(gmp2
            .iter()
            .any(|v| matches!(v, gmp_props::Violation::Gmp2 { ver: 1, .. })));
    }

    #[test]
    fn figure_11_two_phase_violates_gmp() {
        let sim = figure_11_run(false, 7);
        let a = analyze(sim.trace());
        let gmp2 = checks::check_gmp2(&a);
        assert!(
            !gmp2.is_empty(),
            "two-phase reconfiguration must mis-guess the invisible commit"
        );
    }

    #[test]
    fn figure_11_three_phase_stays_consistent() {
        let sim = figure_11_run(true, 7);
        checks::check_safety(sim.trace()).assert_ok();
    }
}
