//! A fully *symmetric* membership protocol in the style of Bruso \[5\]: every
//! process behaves identically, agreeing on each exclusion by all-to-all
//! rounds.
//!
//! The paper's comparison (§1, §8): a symmetric solution "requires an order
//! of magnitude more messages in all situations". This stand-in reproduces
//! that cost shape — Θ(n²) messages per exclusion (a suspicion round plus a
//! ready round, each all-to-all) versus the asymmetric protocol's Θ(n) —
//! which is what experiment E5 measures. It is correct for crash failures
//! of non-coordinating members under the same FIFO/reliable network
//! assumptions, but makes no attempt at the paper's reconfiguration
//! subtleties (that is the point of the comparison).

use gmp_detect::{HeartbeatDetector, Isolation};
use gmp_sim::{Ctx, Message, Node};
use gmp_types::note::FaultySource;
use gmp_types::{Note, Op, ProcessId, Ver, View};
use std::collections::{BTreeMap, BTreeSet};

const TICK: u64 = 1;

/// Messages of the symmetric protocol.
#[derive(Clone, Debug)]
pub enum SymMsg {
    /// Periodic life sign.
    Heartbeat,
    /// "I believe `target` is faulty" — broadcast by every process that
    /// comes to believe it (directly or by receiving this message).
    Suspect {
        /// The accused process.
        target: ProcessId,
    },
    /// "I have seen `Suspect(target)` from every live member" — broadcast
    /// when the suspicion round completes locally.
    Ready {
        /// The accused process.
        target: ProcessId,
    },
}

impl Message for SymMsg {
    fn tag(&self) -> &'static str {
        match self {
            SymMsg::Heartbeat => "heartbeat",
            SymMsg::Suspect { .. } => "suspect",
            SymMsg::Ready { .. } => "ready",
        }
    }
}

/// A member of the symmetric protocol.
pub struct SymmetricMember {
    me: ProcessId,
    view: View,
    ver: Ver,
    fd: HeartbeatDetector,
    iso: Isolation,
    faulty: BTreeSet<ProcessId>,
    /// Who has voted `Suspect(target)`.
    votes: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    /// Who has declared `Ready(target)`.
    ready: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    sent_ready: BTreeSet<ProcessId>,
    heartbeat_every: u64,
}

impl SymmetricMember {
    /// An initial member with the given view and failure-detection timing.
    pub fn new(initial_view: View, heartbeat_every: u64, suspect_after: u64) -> Self {
        SymmetricMember {
            me: ProcessId(u32::MAX),
            view: initial_view,
            ver: 0,
            fd: HeartbeatDetector::new(suspect_after),
            iso: Isolation::new(),
            faulty: Default::default(),
            votes: Default::default(),
            ready: Default::default(),
            sent_ready: Default::default(),
            heartbeat_every,
        }
    }

    /// Current local view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Current local version.
    pub fn ver(&self) -> Ver {
        self.ver
    }

    /// The members whose votes are required for `target`'s exclusion: every
    /// current member not itself under suspicion, plus this process.
    fn electorate(&self, target: ProcessId) -> BTreeSet<ProcessId> {
        self.view
            .iter()
            .filter(|&p| p == self.me || (!self.faulty.contains(&p) && p != target))
            .collect()
    }

    fn suspect(&mut self, ctx: &mut Ctx<'_, SymMsg>, q: ProcessId, source: FaultySource) {
        if q == self.me || !self.iso.isolate(q) {
            return;
        }
        self.fd.suspect(q);
        ctx.note(Note::Faulty { suspect: q, source });
        if !self.view.contains(q) {
            return;
        }
        self.faulty.insert(q);
        // Symmetric: every believer broadcasts its own suspicion round.
        let targets: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&p| p != self.me && p != q)
            .collect();
        ctx.broadcast(targets, SymMsg::Suspect { target: q });
        self.votes.entry(q).or_default().insert(self.me);
        self.advance(ctx, q);
    }

    /// Checks whether a round for `target` completed and moves it forward.
    fn advance(&mut self, ctx: &mut Ctx<'_, SymMsg>, target: ProcessId) {
        if !self.view.contains(target) {
            return;
        }
        let electorate = self.electorate(target);
        let votes = self.votes.entry(target).or_default();
        if !electorate.iter().all(|p| votes.contains(p)) {
            return;
        }
        if self.sent_ready.insert(target) {
            let targets: Vec<ProcessId> = self
                .view
                .iter()
                .filter(|&p| p != self.me && p != target)
                .collect();
            ctx.broadcast(targets, SymMsg::Ready { target });
            self.ready.entry(target).or_default().insert(self.me);
        }
        let ready = self.ready.entry(target).or_default();
        if electorate.iter().all(|p| ready.contains(p)) {
            // Everyone has seen everyone's vote: apply deterministically.
            self.view.remove(target);
            self.ver += 1;
            ctx.note(Note::OpApplied {
                op: Op::remove(target),
                ver: self.ver,
            });
            ctx.note(Note::ViewInstalled {
                ver: self.ver,
                members: self.view.to_vec(),
                mgr: self.view.most_senior().unwrap_or(self.me),
            });
            self.votes.remove(&target);
            self.ready.remove(&target);
            // A member's failure may complete other pending rounds.
            let pending: Vec<ProcessId> = self.votes.keys().copied().collect();
            for t in pending {
                self.advance(ctx, t);
            }
        }
    }
}

impl Node<SymMsg> for SymmetricMember {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SymMsg>) {
        self.me = ctx.id();
        let now = ctx.now();
        for p in self.view.to_vec() {
            if p != self.me {
                self.fd.track(p, now);
            }
        }
        ctx.note(Note::ViewInstalled {
            ver: 0,
            members: self.view.to_vec(),
            mgr: self.view.most_senior().expect("non-empty view"),
        });
        ctx.set_timer(self.heartbeat_every, TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SymMsg>, from: ProcessId, msg: SymMsg) {
        if self.iso.is_isolated(from) {
            ctx.note(Note::Isolated { from });
            return;
        }
        self.fd.heard_from(from, ctx.now());
        match msg {
            SymMsg::Heartbeat => {}
            SymMsg::Suspect { target } => {
                if target == self.me {
                    return; // slander about self is ignored (S1 will bite)
                }
                self.votes.entry(target).or_default().insert(from);
                self.suspect(ctx, target, FaultySource::Gossip);
                self.advance(ctx, target);
            }
            SymMsg::Ready { target } => {
                self.ready.entry(target).or_default().insert(from);
                self.advance(ctx, target);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SymMsg>, tag: u64) {
        if tag != TICK {
            return;
        }
        let targets: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&p| p != self.me && !self.faulty.contains(&p))
            .collect();
        ctx.broadcast(targets, SymMsg::Heartbeat);
        for q in self.fd.tick(ctx.now()) {
            self.suspect(ctx, q, FaultySource::Observation);
        }
        ctx.set_timer(self.heartbeat_every, TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_sim::Builder;

    fn cluster(n: u32, seed: u64) -> gmp_sim::Sim<SymMsg, SymmetricMember> {
        let view: View = (0..n).map(ProcessId).collect();
        let mut sim = Builder::new().seed(seed).build();
        for _ in 0..n {
            sim.add_node(SymmetricMember::new(view.clone(), 40, 200));
        }
        sim
    }

    #[test]
    fn symmetric_excludes_crashed_member() {
        let mut sim = cluster(5, 1);
        sim.crash_at(ProcessId(3), 300);
        sim.run_until(10_000);
        for p in sim.living() {
            assert!(!sim.node(p).view().contains(ProcessId(3)), "{p}");
            assert_eq!(sim.node(p).ver(), 1);
        }
    }

    #[test]
    fn symmetric_survives_two_failures() {
        let mut sim = cluster(6, 2);
        sim.crash_at(ProcessId(3), 300);
        sim.crash_at(ProcessId(5), 1_500);
        sim.run_until(20_000);
        for p in sim.living() {
            assert_eq!(sim.node(p).view().len(), 4, "{p}");
            assert_eq!(sim.node(p).ver(), 2);
        }
    }

    #[test]
    fn symmetric_costs_quadratic_messages() {
        // One exclusion costs ~2(n−1)(n−2) protocol messages vs 3n−5 for
        // the asymmetric algorithm — the "order of magnitude" claim.
        let mut sim = cluster(10, 3);
        sim.crash_at(ProcessId(9), 300);
        sim.run_until(10_000);
        let protocol = sim.stats().sends("suspect") + sim.stats().sends("ready");
        assert!(
            protocol >= 2 * 8 * 8,
            "expected quadratic cost, got {protocol}"
        );
    }
}
