//! The one-phase update protocol of Claim 7.1: the coordinator broadcasts a
//! removal commit directly, with no invitation round.
//!
//! The claim: *"A one-phase update algorithm cannot solve GMP when the
//! coordinator can fail."* Succession here is immediate — whoever believes
//! itself the most senior non-faulty member acts as coordinator — so two
//! sides of a partition can commit *different* removals for the same
//! version, violating GMP-2/GMP-3. The [`scenarios`](crate::scenarios)
//! module builds exactly the proof's run.

use gmp_detect::{HeartbeatDetector, Isolation};
use gmp_sim::{Ctx, Message, Node};
use gmp_types::note::FaultySource;
use gmp_types::{Note, Op, ProcessId, Ver, View};

const TICK: u64 = 1;

/// Messages of the one-phase protocol.
#[derive(Clone, Debug)]
pub enum OneMsg {
    /// Periodic life sign.
    Heartbeat,
    /// Unilateral removal commit: apply immediately.
    Commit {
        /// The process being removed.
        target: ProcessId,
        /// The version this installs.
        ver: Ver,
    },
}

impl Message for OneMsg {
    fn tag(&self) -> &'static str {
        match self {
            OneMsg::Heartbeat => "heartbeat",
            OneMsg::Commit { .. } => "commit-1p",
        }
    }
}

/// A member running the (unsound) one-phase protocol.
pub struct OnePhaseMember {
    me: ProcessId,
    view: View,
    ver: Ver,
    fd: HeartbeatDetector,
    iso: Isolation,
    faulty: std::collections::BTreeSet<ProcessId>,
    heartbeat_every: u64,
}

impl OnePhaseMember {
    /// An initial member with the given view and failure-detection timing.
    pub fn new(initial_view: View, heartbeat_every: u64, suspect_after: u64) -> Self {
        OnePhaseMember {
            me: ProcessId(u32::MAX),
            view: initial_view,
            ver: 0,
            fd: HeartbeatDetector::new(suspect_after),
            iso: Isolation::new(),
            faulty: Default::default(),
            heartbeat_every,
        }
    }

    /// Current local view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Current local version.
    pub fn ver(&self) -> Ver {
        self.ver
    }

    /// True when this process currently considers itself coordinator: the
    /// most senior member it does not believe faulty.
    pub fn is_coordinator(&self) -> bool {
        self.view
            .iter()
            .find(|p| !self.faulty.contains(p))
            .map(|p| p == self.me)
            .unwrap_or(false)
    }

    fn apply_remove(&mut self, ctx: &mut Ctx<'_, OneMsg>, target: ProcessId) {
        if !self.view.contains(target) {
            return;
        }
        self.view.remove(target);
        self.ver += 1;
        ctx.note(Note::OpApplied {
            op: Op::remove(target),
            ver: self.ver,
        });
        let mgr = self
            .view
            .iter()
            .find(|p| !self.faulty.contains(p))
            .unwrap_or(self.me);
        ctx.note(Note::ViewInstalled {
            ver: self.ver,
            members: self.view.to_vec(),
            mgr,
        });
    }

    fn handle_faulty(&mut self, ctx: &mut Ctx<'_, OneMsg>, q: ProcessId) {
        if q == self.me || !self.iso.isolate(q) {
            return;
        }
        self.fd.suspect(q);
        ctx.note(Note::Faulty {
            suspect: q,
            source: FaultySource::Observation,
        });
        if !self.view.contains(q) {
            return;
        }
        self.faulty.insert(q);
        if self.is_coordinator() {
            // One phase: no invitation, no acknowledgement — just commit.
            let ver = self.ver + 1;
            ctx.broadcast(
                self.view.iter().filter(|&p| p != self.me),
                OneMsg::Commit { target: q, ver },
            );
            self.apply_remove(ctx, q);
        }
    }
}

impl Node<OneMsg> for OnePhaseMember {
    fn on_start(&mut self, ctx: &mut Ctx<'_, OneMsg>) {
        self.me = ctx.id();
        let now = ctx.now();
        for p in self.view.to_vec() {
            if p != self.me {
                self.fd.track(p, now);
            }
        }
        ctx.note(Note::ViewInstalled {
            ver: 0,
            members: self.view.to_vec(),
            mgr: self.view.most_senior().expect("non-empty view"),
        });
        ctx.set_timer(self.heartbeat_every, TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, OneMsg>, from: ProcessId, msg: OneMsg) {
        if self.iso.is_isolated(from) {
            ctx.note(Note::Isolated { from });
            return;
        }
        self.fd.heard_from(from, ctx.now());
        match msg {
            OneMsg::Heartbeat => {}
            OneMsg::Commit { target, ver } => {
                if target == self.me {
                    ctx.note(Note::Quit {
                        reason: gmp_types::note::QuitReason::Excluded,
                    });
                    ctx.quit();
                    return;
                }
                if ver == self.ver + 1 {
                    self.handle_faulty_belief_only(ctx, target);
                    self.apply_remove(ctx, target);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, OneMsg>, tag: u64) {
        if tag != TICK {
            return;
        }
        let targets: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&p| p != self.me && !self.faulty.contains(&p))
            .collect();
        ctx.broadcast(targets, OneMsg::Heartbeat);
        for q in self.fd.tick(ctx.now()) {
            self.handle_faulty(ctx, q);
        }
        ctx.set_timer(self.heartbeat_every, TICK);
    }
}

impl OnePhaseMember {
    /// Records the faulty belief that justifies an incoming commit (GMP-1
    /// is the one clause this protocol *does* satisfy).
    fn handle_faulty_belief_only(&mut self, ctx: &mut Ctx<'_, OneMsg>, q: ProcessId) {
        if q != self.me && self.iso.isolate(q) {
            self.fd.suspect(q);
            ctx.note(Note::Faulty {
                suspect: q,
                source: FaultySource::Gossip,
            });
            self.faulty.insert(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_sim::Builder;

    fn cluster(n: u32, seed: u64) -> gmp_sim::Sim<OneMsg, OnePhaseMember> {
        let view: View = (0..n).map(ProcessId).collect();
        let mut sim = Builder::new().seed(seed).build();
        for _ in 0..n {
            sim.add_node(OnePhaseMember::new(view.clone(), 40, 200));
        }
        sim
    }

    #[test]
    fn one_phase_handles_simple_failure() {
        // Without coordinator failures the one-phase protocol works.
        let mut sim = cluster(4, 5);
        sim.crash_at(ProcessId(2), 300);
        sim.run_until(5_000);
        for p in sim.living() {
            assert!(!sim.node(p).view().contains(ProcessId(2)));
            assert_eq!(sim.node(p).ver(), 1);
        }
    }

    #[test]
    fn coordinator_is_most_senior_unsuspected() {
        let mut sim = cluster(3, 6);
        sim.run_until(100);
        assert!(sim.node(ProcessId(0)).is_coordinator());
        assert!(!sim.node(ProcessId(1)).is_coordinator());
    }
}
