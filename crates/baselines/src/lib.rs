//! Baseline membership protocols the paper compares against or proves
//! insufficient (§7.2, §7.3, §8).
//!
//! | baseline | paper artifact | what it shows |
//! |----------|----------------|---------------|
//! | [`one_phase`] | Claim 7.1 | one-phase updates violate GMP-3 when the coordinator can fail |
//! | two-phase reconfiguration (`gmp_core::ConfigBuilder::three_phase_reconfig`) | Claim 7.2 / Fig. 11 | without a proposal phase, invisible commits are undetectable |
//! | [`symmetric`] | Bruso \[5\] comparison | symmetric protocols cost an order of magnitude more messages |
//!
//! The [`scenarios`] module builds the deterministic adversarial schedules
//! from the proofs; the uncompressed two-phase update baseline for §7.2 is
//! `gmp_core::Config::without_compression`.

pub mod one_phase;
pub mod scenarios;
pub mod symmetric;

pub use one_phase::{OneMsg, OnePhaseMember};
pub use scenarios::{claim_7_1_run, figure_11_run, Fig11Cast, FIG11_CAST};
pub use symmetric::{SymMsg, SymmetricMember};
