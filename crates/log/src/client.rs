//! The workload generator: a closed-loop client outside the group.
//!
//! Each client keeps a bounded *pipeline window* of requests in flight
//! (`window = 1` reproduces the strict one-at-a-time loop of the unbatched
//! baseline). Every `request_every` ticks it tops the window back up with
//! fresh commands; an unacknowledged command is re-sent after
//! `retry_after` ticks — periodically to the *whole* replica set, which is
//! how a client whose leader died (together with the `Redirect` hints of
//! live followers) rediscovers the new one. The time from issue to `Reply`
//! is recorded per operation; operations that straddle a leader crash are
//! exactly the ones whose latency shows the failover.

use crate::msg::{AppMsg, LogCmd, LogMsg};
use gmp_sim::Ctx;
use gmp_types::ProcessId;
use std::collections::BTreeMap;

/// Timer tag for the client loop. Far outside the membership layer's tag
/// space (1–3), which matters only stylistically — clients are separate
/// processes, not composites.
pub(crate) const CLIENT_TICK: u64 = 64;

/// An in-flight request (keyed by its seq in the window map).
#[derive(Clone, Copy, Debug)]
struct Pending {
    issued_at: u64,
    last_sent: u64,
    tries: u32,
}

/// A closed-loop client of the replicated log.
#[derive(Clone, Debug)]
pub struct Client {
    me: ProcessId,
    /// The initial replica set: fallback contacts for leader rediscovery.
    replicas: Vec<ProcessId>,
    /// Current leader belief (initially the senior replica).
    leader: ProcessId,
    /// Issue interval of the closed loop.
    request_every: u64,
    /// Resend an unacknowledged request after this long.
    retry_after: u64,
    /// Max requests in flight at once (the pipeline window, ≥ 1).
    window: usize,
    /// First issue time (staggered per client by the cluster builder).
    first_at: u64,
    next_seq: u64,
    /// In-flight requests by seq (iteration order = seq order, so resends
    /// and top-ups are deterministic).
    pending: BTreeMap<u64, Pending>,
    /// Commit latency (issue → reply) of every acknowledged operation, in
    /// acknowledgement order.
    latencies: Vec<u64>,
    /// Redirects followed.
    redirects: u64,
    /// Resends after timeout.
    retries: u64,
}

impl Client {
    /// A client issuing every `request_every` ticks starting at
    /// `first_at`, keeping up to `window` requests in flight, retrying
    /// after `retry_after`, against `replicas` (the senior replica is the
    /// initial leader guess).
    pub fn new(
        replicas: Vec<ProcessId>,
        first_at: u64,
        request_every: u64,
        retry_after: u64,
        window: usize,
    ) -> Self {
        assert!(!replicas.is_empty(), "a client needs at least one replica");
        assert!(
            request_every > 0 && retry_after > 0,
            "intervals must be positive"
        );
        assert!(window >= 1, "the pipeline window must admit work");
        Client {
            me: ProcessId(u32::MAX),
            leader: replicas[0],
            replicas,
            request_every,
            retry_after,
            window,
            first_at,
            next_seq: 0,
            pending: BTreeMap::new(),
            latencies: Vec::new(),
            redirects: 0,
            retries: 0,
        }
    }

    /// Acknowledged operations.
    pub fn acked(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// Commit latencies (issue → reply), in acknowledgement order.
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }

    /// Redirects followed while hunting the leader.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Timed-out resends.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn cmd(&self, seq: u64) -> LogCmd {
        LogCmd {
            client: self.me,
            seq,
        }
    }

    pub(crate) fn on_start(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        self.me = ctx.id();
        ctx.set_timer(self.first_at.max(1), CLIENT_TICK);
    }

    pub(crate) fn on_message(&mut self, ctx: &mut Ctx<'_, AppMsg>, _from: ProcessId, msg: LogMsg) {
        match msg {
            LogMsg::Reply { seq, .. } => {
                if let Some(p) = self.pending.remove(&seq) {
                    self.latencies.push(ctx.now() - p.issued_at);
                }
            }
            // The guard keeps a transiently confused pair of followers
            // from bouncing the same request at network speed.
            LogMsg::Redirect { leader } if leader != self.leader => {
                self.leader = leader;
                self.redirects += 1;
                // Chase the hint right away, whole window.
                let now = ctx.now();
                for (&seq, p) in self.pending.iter_mut() {
                    p.last_sent = now;
                    let m = AppMsg::Log(LogMsg::Request {
                        cmd: LogCmd {
                            client: self.me,
                            seq,
                        },
                    });
                    ctx.send(leader, m);
                }
            }
            _ => {}
        }
    }

    pub(crate) fn on_timer(&mut self, ctx: &mut Ctx<'_, AppMsg>, tag: u64) {
        if tag != CLIENT_TICK {
            return;
        }
        let now = ctx.now();
        // Resend anything stale (seq order), …
        let mut stale: Vec<u64> = Vec::new();
        for (&seq, p) in self.pending.iter() {
            if now.saturating_sub(p.last_sent) >= self.retry_after {
                stale.push(seq);
            }
        }
        for seq in stale {
            let p = self.pending.get_mut(&seq).expect("collected above");
            p.last_sent = now;
            p.tries += 1;
            let tries = p.tries;
            self.retries += 1;
            let msg = LogMsg::Request { cmd: self.cmd(seq) };
            if tries.is_multiple_of(2) {
                // Every other retry sweeps the whole replica set: live
                // followers answer with redirects even when our leader
                // belief is a corpse.
                for r in self.replicas.clone() {
                    ctx.send(r, AppMsg::Log(msg.clone()));
                }
            } else {
                ctx.send(self.leader, AppMsg::Log(msg));
            }
        }
        // …then top the pipeline window back up with fresh commands.
        while self.pending.len() < self.window {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.insert(
                seq,
                Pending {
                    issued_at: now,
                    last_sent: now,
                    tries: 0,
                },
            );
            ctx.send(
                self.leader,
                AppMsg::Log(LogMsg::Request { cmd: self.cmd(seq) }),
            );
        }
        ctx.set_timer(self.request_every, CLIENT_TICK);
    }
}
