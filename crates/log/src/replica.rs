//! The replicated-log state machine: multipaxos with GMP as the
//! reconfiguration and leader-election oracle.
//!
//! # How the membership layer is used
//!
//! | multipaxos concept | provided by GMP |
//! |---|---|
//! | configuration / epoch | the installed view |
//! | ballot number | the view version `ver` (monotone, agreed) |
//! | leader | the view's coordinator `Mgr` |
//! | quorum | the view majority (`⌊n/2⌋ + 1`) |
//! | leader election / phase 1 trigger | [`MemberEvent::ViewInstalled`] |
//! | failure notice | [`MemberEvent::PeerSuspected`] |
//!
//! The steady state is phase-2-only: the leader assigns slots in order and
//! broadcasts `Accept`; a view-majority of `AcceptOk`s (the leader counts
//! itself) decides the slot, the leader answers the client and broadcasts
//! `Decide`. Because proposals go out in ascending slot order over FIFO
//! links, decisions also arrive in order and the applied prefix never
//! holds holes for long.
//!
//! On every view install where this process is `Mgr` it (re)runs the
//! **recovery round** — multipaxos phase 1 at ballot = the new `ver`: ask
//! every view member for accepted entries above the committed prefix,
//! adopt the highest-ballot value per slot, fill true gaps with no-ops,
//! and re-propose the lot before serving new client traffic. That is what
//! makes leader failover safe: anything the dead leader may have committed
//! survives in the accepted sets of a majority, and the new view (minus
//! the excluded members) still intersects it whenever the group itself
//! stayed a majority — the same bound the membership layer already lives
//! under (Fig. 8's `μ_Mgr`).
//!
//! The state machine is sans-IO like [`Member`](gmp_core::Member):
//! handlers mutate state and push outbound messages into an outbox the
//! hosting [`Replica`](crate::Replica) node drains into the simulator.

use crate::msg::{LogCmd, LogMsg};
use gmp_core::MemberEvent;
use gmp_types::{ProcessId, Ver};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Simulated-time alias (mirrors `gmp_sim::Time`).
type Time = u64;

/// Leader-only state.
#[derive(Clone, Debug)]
struct LeaderState {
    /// Our ballot: the version of the view that made us `Mgr`.
    ballot: Ver,
    /// Next unproposed slot.
    next_slot: u64,
    /// Client commands admitted but not yet proposed (recovery in
    /// progress, or the in-flight window is full).
    queue: VecDeque<LogCmd>,
    /// Proposed, awaiting a quorum of `AcceptOk`s. Keyed by slot.
    in_flight: BTreeMap<u64, Accepting>,
    /// The recovery round, while it runs. `None` once steady-state.
    recovery: Option<Recovery>,
}

/// One in-flight proposal.
#[derive(Clone, Debug)]
struct Accepting {
    cmd: LogCmd,
    /// Acceptors that answered `AcceptOk` (the leader counts itself
    /// implicitly).
    oks: BTreeSet<ProcessId>,
}

/// Recovery-round bookkeeping (phase 1 at the new ballot).
#[derive(Clone, Debug)]
struct Recovery {
    /// View members whose `RecoverOk` is still awaited.
    pending: BTreeSet<ProcessId>,
    /// Highest-ballot accepted entry reported per slot.
    found: BTreeMap<u64, (Ver, LogCmd)>,
}

/// The per-process replicated-log state machine. Embed one next to a
/// [`Member`](gmp_core::Member) (the [`Replica`](crate::Replica) node does
/// this) and feed it the member's drained events plus incoming [`LogMsg`]s.
#[derive(Clone, Debug)]
pub struct ReplicatedLog {
    me: ProcessId,
    /// Members of the current view (the acceptor set), seniority order.
    view: Vec<ProcessId>,
    /// Version of the current view.
    ver: Ver,
    /// Current leader belief: the view's `Mgr`.
    leader: Option<ProcessId>,
    /// Highest ballot promised: max of every installed version and every
    /// ballot accepted from. Accepts below it are stale and ignored.
    promised: Ver,
    /// Accepted entries, never pruned below by lower ballots: `slot →
    /// (ballot, cmd)`. Recovery reads this.
    accepted: BTreeMap<u64, (Ver, LogCmd)>,
    /// Decided entries not yet contiguous with the applied prefix.
    parked: BTreeMap<u64, (Ver, LogCmd)>,
    /// The applied log: `committed[i]` is slot `i`'s command.
    committed: Vec<LogCmd>,
    /// Ballot under which each applied slot was decided.
    ballots: Vec<Ver>,
    /// Local simulated time each slot was applied.
    applied_at: Vec<Time>,
    /// Slot of each applied client command (for duplicate replies).
    by_cmd: BTreeMap<LogCmd, u64>,
    /// Client of record per in-flight command (answered on decide).
    /// Leader-side dedup: every admitted command identity (queued,
    /// in-flight or applied).
    admitted: BTreeSet<LogCmd>,
    /// Processes the membership layer currently suspects.
    suspected: BTreeSet<ProcessId>,
    /// Leader-only state, while this process is `Mgr`.
    lead: Option<LeaderState>,
    /// Max in-flight proposals before client commands wait in the queue
    /// (the batching knob of [`LogConfig`](crate::LogConfig)).
    max_inflight: usize,
    /// True between activation (initial view / welcome) and quit.
    active: bool,
    /// Outbound messages, drained by the hosting node.
    outbox: Vec<(ProcessId, LogMsg)>,
}

impl ReplicatedLog {
    /// A blank log for a process that will learn its identity and view
    /// from its member's events. `max_inflight` caps concurrently proposed
    /// slots (≥ 1).
    pub fn new(max_inflight: usize) -> Self {
        assert!(max_inflight >= 1, "the in-flight window must admit work");
        ReplicatedLog {
            me: ProcessId(u32::MAX),
            view: Vec::new(),
            ver: 0,
            leader: None,
            promised: 0,
            accepted: BTreeMap::new(),
            parked: BTreeMap::new(),
            committed: Vec::new(),
            ballots: Vec::new(),
            applied_at: Vec::new(),
            by_cmd: BTreeMap::new(),
            admitted: BTreeSet::new(),
            suspected: BTreeSet::new(),
            lead: None,
            max_inflight,
            active: false,
            outbox: Vec::new(),
        }
    }

    /// Binds this log to its process id (called by the hosting node at
    /// start, before any event is fed).
    pub fn bind(&mut self, me: ProcessId) {
        self.me = me;
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The applied log, in slot order (including no-op fillers).
    pub fn committed(&self) -> &[LogCmd] {
        &self.committed
    }

    /// Ballot under which each applied slot was decided (parallel to
    /// [`committed`](Self::committed)).
    pub fn ballots(&self) -> &[Ver] {
        &self.ballots
    }

    /// Local simulated time each applied slot was applied (parallel to
    /// [`committed`](Self::committed)).
    pub fn applied_at(&self) -> &[Time] {
        &self.applied_at
    }

    /// True while this process believes itself leader.
    pub fn is_leader(&self) -> bool {
        self.lead.is_some()
    }

    /// The current leader belief (the view's `Mgr`), once a view is known.
    pub fn leader(&self) -> Option<ProcessId> {
        self.leader
    }

    /// Applied client operations, no-op fillers excluded.
    pub fn committed_ops(&self) -> usize {
        self.committed.iter().filter(|c| !c.is_noop()).count()
    }

    /// Drains the outbound messages queued by the last handler call.
    pub fn take_outbox(&mut self) -> Vec<(ProcessId, LogMsg)> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Membership events
    // ------------------------------------------------------------------

    /// Feeds one membership transition. The hosting node calls this with
    /// everything `Member::take_events` drained, in order.
    pub fn on_member_event(&mut self, ev: MemberEvent, now: Time) {
        match ev {
            MemberEvent::ViewInstalled { ver, members, mgr }
            | MemberEvent::Welcomed { ver, members, mgr } => {
                let welcomed = !self.active;
                self.active = true;
                self.view = members;
                self.ver = ver;
                self.promised = self.promised.max(ver);
                self.leader = Some(mgr);
                self.suspected.retain(|p| self.view.contains(p));
                if mgr == self.me {
                    self.become_leader(ver, now);
                } else {
                    // Demotion (or follower continuation): any in-flight
                    // proposals are the new leader's problem now — its
                    // recovery round reads them out of our accepted set.
                    self.lead = None;
                    if welcomed {
                        // Joiner state transfer: ask the leader for the
                        // committed prefix we missed. Decides from now on
                        // reach us directly (we are in the view the leader
                        // broadcasts to); `SyncOk` fills everything before.
                        self.outbox.push((
                            mgr,
                            LogMsg::Sync {
                                from: self.committed.len() as u64,
                            },
                        ));
                    }
                }
            }
            MemberEvent::PeerSuspected { peer, .. } => {
                self.suspected.insert(peer);
                // A suspect will never answer: stop awaiting its recovery
                // response. (In-flight accepts keep counting toward the
                // *view* majority — the next view install re-proposes them
                // if the quorum died.)
                if let Some(lead) = &mut self.lead {
                    if let Some(rec) = &mut lead.recovery {
                        rec.pending.remove(&peer);
                    }
                }
                self.finish_recovery_if_ready(now);
            }
            MemberEvent::PeerExcluded { .. } => {
                // The matching ViewInstalled (next event) carries the new
                // view; nothing to do on the exclusion itself.
            }
            MemberEvent::Quit { .. } => {
                self.active = false;
                self.lead = None;
            }
            // `MemberEvent` is non_exhaustive: future kinds don't concern
            // the log until someone teaches it otherwise.
            _ => {}
        }
    }

    /// Starts (or restarts) leading at `ballot`. Re-entered on *every*
    /// view install that leaves us `Mgr`: the recovery round is idempotent
    /// and re-proposing at the newest ballot is exactly what un-wedges
    /// slots whose quorum died mid-accept.
    fn become_leader(&mut self, ballot: Ver, now: Time) {
        let mut queue = match self.lead.take() {
            // Keep admitted-but-unserved client work across re-elections.
            Some(prev) => prev.queue,
            None => VecDeque::new(),
        };
        // …minus anything a leader in between already committed (the
        // client resubmitted it there while we were a follower).
        queue.retain(|c| !self.by_cmd.contains_key(c));
        let pending: BTreeSet<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me && !self.suspected.contains(&p))
            .copied()
            .collect();
        self.lead = Some(LeaderState {
            ballot,
            next_slot: self.committed.len() as u64,
            queue,
            in_flight: BTreeMap::new(),
            recovery: Some(Recovery {
                pending,
                found: BTreeMap::new(),
            }),
        });
        let from = self.committed.len() as u64;
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Recover { ballot, from }));
        }
        // A solitary (or fully-suspicious) leader recovers from its own
        // accepted set alone.
        self.finish_recovery_if_ready(now);
    }

    // ------------------------------------------------------------------
    // Log messages
    // ------------------------------------------------------------------

    /// Handles one incoming log message.
    pub fn on_message(&mut self, from: ProcessId, msg: LogMsg, now: Time) {
        if !self.active {
            return;
        }
        match msg {
            LogMsg::Request { cmd } => self.on_request(from, cmd, now),
            LogMsg::Accept { ballot, slot, cmd } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.accepted.insert(slot, (ballot, cmd));
                    self.outbox.push((from, LogMsg::AcceptOk { ballot, slot }));
                }
            }
            LogMsg::AcceptOk { ballot, slot } => self.on_accept_ok(from, ballot, slot, now),
            LogMsg::Decide { ballot, slot, cmd } => {
                self.learn(slot, ballot, cmd);
                self.apply_contiguous(now);
            }
            LogMsg::Recover {
                ballot,
                from: floor,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    let entries: Vec<(u64, Ver, LogCmd)> = self
                        .accepted
                        .range(floor..)
                        .map(|(&s, &(b, c))| (s, b, c))
                        .collect();
                    self.outbox
                        .push((from, LogMsg::RecoverOk { ballot, entries }));
                }
            }
            LogMsg::RecoverOk { ballot, entries } => {
                let Some(lead) = &mut self.lead else { return };
                if lead.ballot != ballot {
                    return; // stale round
                }
                let Some(rec) = &mut lead.recovery else {
                    return;
                };
                for (slot, b, cmd) in entries {
                    match rec.found.get(&slot) {
                        Some(&(have, _)) if have >= b => {}
                        _ => {
                            rec.found.insert(slot, (b, cmd));
                        }
                    }
                }
                rec.pending.remove(&from);
                self.finish_recovery_if_ready(now);
            }
            LogMsg::Sync { from: floor } => {
                let entries: Vec<(Ver, LogCmd)> = (floor as usize..self.committed.len())
                    .map(|i| (self.ballots[i], self.committed[i]))
                    .collect();
                self.outbox.push((
                    from,
                    LogMsg::SyncOk {
                        from: floor,
                        entries,
                    },
                ));
            }
            LogMsg::SyncOk {
                from: floor,
                entries,
            } => {
                for (i, (b, cmd)) in entries.into_iter().enumerate() {
                    self.learn(floor + i as u64, b, cmd);
                }
                self.apply_contiguous(now);
            }
            // Client-side messages; replicas ignore strays.
            LogMsg::Redirect { .. } | LogMsg::Reply { .. } => {}
        }
    }

    fn on_request(&mut self, client: ProcessId, cmd: LogCmd, now: Time) {
        if self.lead.is_none() {
            // Not the leader: point the client at our belief (silence
            // would also work — clients retry — but the hint is what makes
            // failover latency a round trip instead of a timeout).
            if let Some(l) = self.leader {
                if l != self.me {
                    self.outbox.push((client, LogMsg::Redirect { leader: l }));
                }
            }
            return;
        }
        if let Some(&slot) = self.by_cmd.get(&cmd) {
            // Committed duplicate (client re-sent across a failover the
            // first reply did not survive): answer from the log.
            self.outbox
                .push((client, LogMsg::Reply { seq: cmd.seq, slot }));
            return;
        }
        if self.admitted.contains(&cmd) {
            return; // queued or in flight; the decide will answer
        }
        self.admitted.insert(cmd);
        let lead = self.lead.as_mut().expect("leader checked above");
        lead.queue.push_back(cmd);
        self.propose_queued(now);
    }

    fn on_accept_ok(&mut self, from: ProcessId, ballot: Ver, slot: u64, now: Time) {
        let quorum = self.quorum();
        let Some(lead) = &mut self.lead else { return };
        if lead.ballot != ballot {
            return;
        }
        let Some(acc) = lead.in_flight.get_mut(&slot) else {
            return; // already decided (or never ours)
        };
        acc.oks.insert(from);
        // +1: the leader accepted its own proposal at propose time.
        if acc.oks.len() + 1 >= quorum {
            let cmd = acc.cmd;
            lead.in_flight.remove(&slot);
            self.decide(slot, ballot, cmd, now);
        }
    }

    /// Commits `slot`: record, broadcast `Decide`, answer the client, and
    /// let follow-on queued work into the freed in-flight window.
    fn decide(&mut self, slot: u64, ballot: Ver, cmd: LogCmd, now: Time) {
        self.learn(slot, ballot, cmd);
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Decide { ballot, slot, cmd }));
        }
        if !cmd.is_noop() {
            self.outbox
                .push((cmd.client, LogMsg::Reply { seq: cmd.seq, slot }));
        }
        self.apply_contiguous(now);
        self.propose_queued(now);
    }

    /// Records a decided entry (idempotent; decides imply accepts so the
    /// entry also feeds later recoveries).
    fn learn(&mut self, slot: u64, ballot: Ver, cmd: LogCmd) {
        if (slot as usize) < self.committed.len() {
            return; // already applied
        }
        self.accepted.insert(slot, (ballot, cmd));
        self.parked.insert(slot, (ballot, cmd));
    }

    /// Applies every parked decision contiguous with the applied prefix.
    fn apply_contiguous(&mut self, now: Time) {
        while let Some(&(ballot, cmd)) = self.parked.get(&(self.committed.len() as u64)) {
            let slot = self.committed.len() as u64;
            self.parked.remove(&slot);
            self.committed.push(cmd);
            self.ballots.push(ballot);
            self.applied_at.push(now);
            if !cmd.is_noop() {
                self.by_cmd.insert(cmd, slot);
            }
        }
    }

    /// The view majority, acceptor quorum of every ballot.
    fn quorum(&self) -> usize {
        self.view.len() / 2 + 1
    }

    /// Completes the recovery round once every awaited response is in:
    /// adopt the highest-ballot entry per slot, fill gaps with no-ops,
    /// re-propose everything above the committed prefix, then serve the
    /// queue.
    fn finish_recovery_if_ready(&mut self, now: Time) {
        let Some(lead) = &mut self.lead else { return };
        let Some(rec) = &mut lead.recovery else {
            return;
        };
        if !rec.pending.is_empty() {
            return;
        }
        let ballot = lead.ballot;
        let floor = self.committed.len() as u64;
        let mut chosen = std::mem::take(&mut rec.found);
        lead.recovery = None;
        // Our own accepted set is a recovery response like any other.
        for (&slot, &(b, cmd)) in self.accepted.range(floor..) {
            match chosen.get(&slot) {
                Some(&(have, _)) if have >= b => {}
                _ => {
                    chosen.insert(slot, (b, cmd));
                }
            }
        }
        if let Some((&top, _)) = chosen.iter().next_back() {
            let slots: Vec<u64> = (floor..=top).collect();
            for slot in slots {
                let cmd = chosen.get(&slot).map(|&(_, c)| c).unwrap_or(LogCmd::NOOP);
                self.admitted.insert(cmd);
                self.propose(slot, ballot, cmd, now);
            }
            if let Some(lead) = &mut self.lead {
                lead.next_slot = top + 1;
            }
        }
        self.propose_queued(now);
    }

    /// Moves queued client commands into the in-flight window.
    fn propose_queued(&mut self, now: Time) {
        loop {
            let Some(lead) = &mut self.lead else { return };
            if lead.recovery.is_some() || lead.in_flight.len() >= self.max_inflight {
                return;
            }
            let Some(cmd) = lead.queue.pop_front() else {
                return;
            };
            let slot = lead.next_slot;
            lead.next_slot += 1;
            let ballot = lead.ballot;
            self.propose(slot, ballot, cmd, now);
        }
    }

    /// Proposes `cmd` into `slot`: self-accept, broadcast `Accept`, and —
    /// in the degenerate single-member view — decide on the spot.
    fn propose(&mut self, slot: u64, ballot: Ver, cmd: LogCmd, now: Time) {
        self.promised = self.promised.max(ballot);
        self.accepted.insert(slot, (ballot, cmd));
        let Some(lead) = &mut self.lead else { return };
        lead.in_flight.insert(
            slot,
            Accepting {
                cmd,
                oks: BTreeSet::new(),
            },
        );
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Accept { ballot, slot, cmd }));
        }
        if self.quorum() == 1 {
            let Some(lead) = &mut self.lead else { return };
            lead.in_flight.remove(&slot);
            self.decide(slot, ballot, cmd, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view3() -> Vec<ProcessId> {
        vec![ProcessId(0), ProcessId(1), ProcessId(2)]
    }

    fn installed(log: &mut ReplicatedLog, ver: Ver, mgr: u32) {
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver,
                members: view3(),
                mgr: ProcessId(mgr),
            },
            0,
        );
    }

    fn cmd(client: u32, seq: u64) -> LogCmd {
        LogCmd {
            client: ProcessId(client),
            seq,
        }
    }

    #[test]
    fn leader_recovers_then_serves() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(0));
        installed(&mut log, 0, 0);
        // Recovery round goes out to both peers…
        let out = log.take_outbox();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, LogMsg::Recover { ballot: 0, from: 0 }));
        // …and no client work is served until it answers.
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 1);
        assert!(log.take_outbox().is_empty());
        for p in [1, 2] {
            log.on_message(
                ProcessId(p),
                LogMsg::RecoverOk {
                    ballot: 0,
                    entries: vec![],
                },
                2,
            );
        }
        let out = log.take_outbox();
        // Accept for slot 0 to both peers.
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].1,
            LogMsg::Accept {
                ballot: 0,
                slot: 0,
                ..
            }
        ));
        // One AcceptOk + self = 2 of 3: decided, replied, applied.
        log.on_message(ProcessId(1), LogMsg::AcceptOk { ballot: 0, slot: 0 }, 3);
        let out = log.take_outbox();
        assert!(out
            .iter()
            .any(|(to, m)| *to == ProcessId(9) && matches!(m, LogMsg::Reply { seq: 0, slot: 0 })));
        assert_eq!(log.committed(), &[cmd(9, 0)]);
        assert_eq!(log.committed_ops(), 1);
    }

    #[test]
    fn acceptor_rejects_stale_ballots() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        installed(&mut log, 0, 0);
        log.take_outbox();
        // A view install at ver 2 raises the promise…
        installed(&mut log, 2, 0);
        log.take_outbox();
        // …so a ballot-1 accept is ignored.
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 1,
                slot: 0,
                cmd: cmd(9, 0),
            },
            5,
        );
        assert!(log.take_outbox().is_empty());
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 2,
                slot: 0,
                cmd: cmd(9, 0),
            },
            6,
        );
        assert!(matches!(
            log.take_outbox().as_slice(),
            [(ProcessId(0), LogMsg::AcceptOk { ballot: 2, slot: 0 })]
        ));
    }

    #[test]
    fn recovery_adopts_highest_ballot_and_fills_gaps() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        // Follower first: accept slot 1 (not 0) at ballot 0 from the old
        // leader, then take over at ver 1.
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 0,
                slot: 1,
                cmd: cmd(9, 1),
            },
            5,
        );
        log.take_outbox();
        let members = vec![ProcessId(1), ProcessId(2)];
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 1,
                members,
                mgr: ProcessId(1),
            },
            10,
        );
        log.take_outbox();
        // The peer reports a higher-ballot value for slot 1 — adopted.
        log.on_message(
            ProcessId(2),
            LogMsg::RecoverOk {
                ballot: 1,
                entries: vec![(1, 1, cmd(8, 4))],
            },
            11,
        );
        let out = log.take_outbox();
        let accepts: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m {
                LogMsg::Accept { slot, cmd, .. } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        // Slot 0 was a hole → no-op; slot 1 re-proposed with the adopted value.
        assert_eq!(accepts, vec![(0, LogCmd::NOOP), (1, cmd(8, 4))]);
        // The 2-member view decides with the peer's ok.
        log.on_message(ProcessId(2), LogMsg::AcceptOk { ballot: 1, slot: 0 }, 12);
        log.on_message(ProcessId(2), LogMsg::AcceptOk { ballot: 1, slot: 1 }, 12);
        assert_eq!(log.committed(), &[LogCmd::NOOP, cmd(8, 4)]);
        assert_eq!(log.committed_ops(), 1);
        assert_eq!(log.ballots(), &[1, 1]);
    }

    #[test]
    fn duplicate_requests_answer_from_the_log() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(0));
        installed(&mut log, 0, 0);
        log.take_outbox();
        for p in [1, 2] {
            log.on_message(
                ProcessId(p),
                LogMsg::RecoverOk {
                    ballot: 0,
                    entries: vec![],
                },
                1,
            );
        }
        log.take_outbox();
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 2);
        log.take_outbox();
        log.on_message(ProcessId(1), LogMsg::AcceptOk { ballot: 0, slot: 0 }, 3);
        log.take_outbox();
        // Same command again: replied immediately, not re-proposed.
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 4);
        let out = log.take_outbox();
        assert!(matches!(
            out.as_slice(),
            [(ProcessId(9), LogMsg::Reply { seq: 0, slot: 0 })]
        ));
        assert_eq!(log.committed().len(), 1);
    }

    #[test]
    fn followers_redirect_clients() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 1);
        assert!(matches!(
            log.take_outbox().as_slice(),
            [(
                ProcessId(9),
                LogMsg::Redirect {
                    leader: ProcessId(0)
                }
            )]
        ));
    }

    #[test]
    fn out_of_order_decides_apply_contiguously() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(2));
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 1,
                cmd: cmd(9, 1),
            },
            5,
        );
        assert!(log.committed().is_empty());
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 0,
                cmd: cmd(9, 0),
            },
            6,
        );
        assert_eq!(log.committed(), &[cmd(9, 0), cmd(9, 1)]);
        assert_eq!(log.applied_at(), &[6, 6]);
    }
}
