//! The replicated-log state machine: multipaxos with GMP as the
//! reconfiguration and leader-election oracle.
//!
//! # How the membership layer is used
//!
//! | multipaxos concept | provided by GMP |
//! |---|---|
//! | configuration / epoch | the installed view |
//! | ballot number | the view version `ver` (monotone, agreed) |
//! | leader | the view's coordinator `Mgr` |
//! | quorum | the view majority (`⌊n/2⌋ + 1`) |
//! | leader election / phase 1 trigger | [`MemberEvent::ViewInstalled`] |
//! | failure notice | [`MemberEvent::PeerSuspected`] |
//!
//! The steady state is phase-2-only: the leader assigns slots in order and
//! broadcasts accepts; a view-majority of acks (the leader counts itself)
//! decides, the leader answers the client and broadcasts the decision.
//! Because proposals go out in ascending slot order over FIFO links,
//! decisions also arrive in order and the applied prefix never holds holes
//! for long.
//!
//! # Batching and pipelining
//!
//! With `batch_max == 1` the hot path is PR-9's per-slot
//! `Accept`/`AcceptOk`/`Decide` — kept bit-for-bit as the unbatched
//! baseline. With `batch_max > 1` the leader coalesces every command that
//! arrives within a tick (the hosting node arms a 1-tick [`LOG_FLUSH`]
//! timer on the first admission) and proposes up to `batch_max` of them in
//! one `AcceptBatch`; acceptors ack the whole range in one
//! `AcceptOkRange`, and decisions ship as `DecideBatch` runs. Message
//! cost per command drops from `3(n-1) + 2` to `3(n-1)/B + 2` for batch
//! size `B`. Decide-path refills re-propose straight from the queue (no
//! extra flush tick), so a saturated pipeline stays saturated.
//!
//! # Compaction
//!
//! Replicas maintain a **compaction floor**: every slot below it is
//! committed and summarized by a [`Snapshot`] — the floor itself plus one
//! `(last seq, slot)` dedup high-water mark per client. The mark is a
//! complete dedup summary because links are FIFO and the leader proposes
//! in admission order, so each client's sequence numbers commit in
//! monotone order: `seq ≤ mark` ⇔ committed. Once `logical_len - floor >
//! 2·compact_keep`, the floor advances to `logical_len - compact_keep`
//! and `accepted`/`parked`/`by_cmd` are pruned below it — replica hot
//! state is bounded by the window, not the run length. Joiner `Sync`
//! below the floor answers with snapshot + tail (O(tail), not O(log));
//! a snapshot-booted replica starts its applied vectors at `base =
//! snapshot.floor` instead of 0.
//!
//! On every view install where this process is `Mgr` it (re)runs the
//! **recovery round** — multipaxos phase 1 at ballot = the new `ver`: ask
//! every view member for accepted entries above the committed prefix,
//! adopt the highest-ballot value per slot, fill true gaps with no-ops,
//! and re-propose the lot before serving new client traffic. That is what
//! makes leader failover safe: anything the dead leader may have committed
//! survives in the accepted sets of a majority, and the new view (minus
//! the excluded members) still intersects it whenever the group itself
//! stayed a majority — the same bound the membership layer already lives
//! under (Fig. 8's `μ_Mgr`). On completing recovery the new leader also
//! re-sends each client's high-water `Reply`: a command decided under the
//! dead leader may have lost its reply with the crash, and the re-reply
//! is what unsticks that client without waiting for its retry sweep.
//!
//! The state machine is sans-IO like [`Member`](gmp_core::Member):
//! handlers mutate state and push outbound messages into an outbox the
//! hosting [`Replica`](crate::Replica) node drains into the simulator.
//! Batching needs one timer; the log never sets it itself — it raises a
//! flush *request* ([`take_flush_request`](ReplicatedLog::take_flush_request))
//! the hosting node converts into a [`LOG_FLUSH`] timer.

use crate::msg::{LogCmd, LogMsg, Snapshot};
use gmp_core::MemberEvent;
use gmp_types::{ProcessId, Ver};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Simulated-time alias (mirrors `gmp_sim::Time`).
type Time = u64;

/// Timer tag of the leader's batch-coalescing flush. The membership layer
/// owns tags 1–3 and the client loop tag 64; the hosting node routes this
/// one back into [`ReplicatedLog::on_flush`].
pub const LOG_FLUSH: u64 = 65;

/// Leader-only state.
#[derive(Clone, Debug)]
struct LeaderState {
    /// Our ballot: the version of the view that made us `Mgr`.
    ballot: Ver,
    /// Next unproposed slot.
    next_slot: u64,
    /// Client commands admitted but not yet proposed (recovery in
    /// progress, batch flush pending, or the in-flight window is full).
    queue: VecDeque<LogCmd>,
    /// Leader-side dedup: mirror of `queue` ∪ `in_flight`. Entries leave
    /// when their command is learned; committed dedup is `by_cmd` and the
    /// per-client high-water marks, so this set stays window-sized.
    admitted: BTreeSet<LogCmd>,
    /// Proposed, awaiting a quorum of acks. Keyed by slot.
    in_flight: BTreeMap<u64, Accepting>,
    /// The recovery round, while it runs. `None` once steady-state.
    recovery: Option<Recovery>,
}

/// One in-flight proposal.
#[derive(Clone, Debug)]
struct Accepting {
    cmd: LogCmd,
    /// Acceptors that acked (the leader counts itself implicitly).
    oks: BTreeSet<ProcessId>,
}

/// Recovery-round bookkeeping (phase 1 at the new ballot).
#[derive(Clone, Debug)]
struct Recovery {
    /// View members whose `RecoverOk` is still awaited.
    pending: BTreeSet<ProcessId>,
    /// Highest-ballot accepted entry reported per slot.
    found: BTreeMap<u64, (Ver, LogCmd)>,
}

/// The per-process replicated-log state machine. Embed one next to a
/// [`Member`](gmp_core::Member) (the [`Replica`](crate::Replica) node does
/// this) and feed it the member's drained events plus incoming [`LogMsg`]s.
#[derive(Clone, Debug)]
pub struct ReplicatedLog {
    me: ProcessId,
    /// Members of the current view (the acceptor set), seniority order.
    view: Vec<ProcessId>,
    /// Version of the current view.
    ver: Ver,
    /// Current leader belief: the view's `Mgr`.
    leader: Option<ProcessId>,
    /// Highest ballot promised: max of every installed version and every
    /// ballot accepted from. Accepts below it are stale and ignored.
    promised: Ver,
    /// Accepted entries at slot ≥ `floor` (pruned below by compaction,
    /// never by lower ballots): `slot → (ballot, cmd)`. Recovery reads
    /// this; it is a superset of the committed suffix above the floor.
    accepted: BTreeMap<u64, (Ver, LogCmd)>,
    /// Decided entries not yet contiguous with the applied prefix.
    parked: BTreeMap<u64, (Ver, LogCmd)>,
    /// First slot the applied vectors cover: 0 unless this replica booted
    /// from a snapshot, in which case its history starts at the
    /// snapshot's floor.
    base: u64,
    /// The applied log from `base`: `committed[i]` is slot `base + i`.
    committed: Vec<LogCmd>,
    /// Ballot under which each applied slot was decided.
    ballots: Vec<Ver>,
    /// Local simulated time each slot was applied.
    applied_at: Vec<Time>,
    /// Compaction floor: every slot below is committed and summarized by
    /// the per-client high-water marks. `base ≤ floor ≤ logical_len`.
    floor: u64,
    /// Slot of each applied client command at slot ≥ `floor` (exact
    /// duplicate replies above the floor; the marks answer below it).
    by_cmd: BTreeMap<LogCmd, u64>,
    /// Per-client dedup high-water mark: `client → (last committed seq,
    /// its slot)`. Complete because per-client seqs commit in order.
    client_hwm: BTreeMap<ProcessId, (u64, u64)>,
    /// Processes the membership layer currently suspects.
    suspected: BTreeSet<ProcessId>,
    /// Leader-only state, while this process is `Mgr`.
    lead: Option<LeaderState>,
    /// Max in-flight slots before client commands wait in the queue.
    max_inflight: usize,
    /// Max commands per `AcceptBatch`; 1 selects the per-slot legacy wire
    /// path (bit-identical to the unbatched baseline, no flush timer).
    batch_max: usize,
    /// Applied suffix length that triggers compaction (`usize::MAX`
    /// disables it; compaction runs when `logical_len - floor > 2·keep`).
    compact_keep: usize,
    /// A flush timer is wanted (set on first batched admission, drained
    /// by the hosting node via `take_flush_request`).
    flush_asked: bool,
    /// A flush timer is armed and not yet fired — don't ask for another.
    flush_armed: bool,
    /// Shape of the last `SyncOk` received: `(carried a snapshot, tail
    /// length)`. Test/bench observability for the O(tail) gate.
    last_sync: Option<(bool, u64)>,
    /// True between activation (initial view / welcome) and quit.
    active: bool,
    /// Outbound messages, drained by the hosting node.
    outbox: Vec<(ProcessId, LogMsg)>,
}

impl ReplicatedLog {
    /// A blank log in legacy (unbatched, uncompacted) trim: per-slot wire
    /// messages, full history retained. `max_inflight` caps concurrently
    /// proposed slots (≥ 1).
    pub fn new(max_inflight: usize) -> Self {
        Self::with_tuning(max_inflight, 1, usize::MAX)
    }

    /// A blank log with the full perf trim: `batch_max` commands per
    /// `AcceptBatch` (1 = legacy per-slot path) and compaction keeping
    /// `compact_keep` applied slots of hot state (`usize::MAX` = off).
    pub fn with_tuning(max_inflight: usize, batch_max: usize, compact_keep: usize) -> Self {
        assert!(max_inflight >= 1, "the in-flight window must admit work");
        assert!(batch_max >= 1, "a batch carries at least one command");
        assert!(compact_keep >= 1, "compaction must keep the working tail");
        ReplicatedLog {
            me: ProcessId(u32::MAX),
            view: Vec::new(),
            ver: 0,
            leader: None,
            promised: 0,
            accepted: BTreeMap::new(),
            parked: BTreeMap::new(),
            base: 0,
            committed: Vec::new(),
            ballots: Vec::new(),
            applied_at: Vec::new(),
            floor: 0,
            by_cmd: BTreeMap::new(),
            client_hwm: BTreeMap::new(),
            suspected: BTreeSet::new(),
            lead: None,
            max_inflight,
            batch_max,
            compact_keep,
            flush_asked: false,
            flush_armed: false,
            last_sync: None,
            active: false,
            outbox: Vec::new(),
        }
    }

    /// Binds this log to its process id (called by the hosting node at
    /// start, before any event is fed).
    pub fn bind(&mut self, me: ProcessId) {
        self.me = me;
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The applied log from [`base`](Self::base), in slot order (including
    /// no-op fillers): `committed()[i]` is slot `base() + i`. `base()` is
    /// 0 except on snapshot-booted replicas.
    pub fn committed(&self) -> &[LogCmd] {
        &self.committed
    }

    /// Ballot under which each applied slot was decided (parallel to
    /// [`committed`](Self::committed)).
    pub fn ballots(&self) -> &[Ver] {
        &self.ballots
    }

    /// Local simulated time each applied slot was applied (parallel to
    /// [`committed`](Self::committed)).
    pub fn applied_at(&self) -> &[Time] {
        &self.applied_at
    }

    /// First slot the applied vectors cover (the snapshot floor this
    /// replica booted from, or 0 for founders).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The compaction floor: every slot below it is committed here and
    /// summarized by the per-client high-water marks.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// One past the last applied slot (`base + committed().len()`).
    pub fn logical_len(&self) -> u64 {
        self.base + self.committed.len() as u64
    }

    /// Sizes of the prunable hot state, for memory-bound assertions:
    /// `(accepted, parked, by_cmd, client marks)`.
    pub fn hot_sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.accepted.len(),
            self.parked.len(),
            self.by_cmd.len(),
            self.client_hwm.len(),
        )
    }

    /// Shape of the last `SyncOk` this replica received: `(carried a
    /// snapshot, tail entry count)`. `None` until one arrives.
    pub fn last_sync(&self) -> Option<(bool, u64)> {
        self.last_sync
    }

    /// True while this process believes itself leader.
    pub fn is_leader(&self) -> bool {
        self.lead.is_some()
    }

    /// The current leader belief (the view's `Mgr`), once a view is known.
    pub fn leader(&self) -> Option<ProcessId> {
        self.leader
    }

    /// Applied client operations, no-op fillers excluded (not counting
    /// anything below [`base`](Self::base) on snapshot-booted replicas).
    pub fn committed_ops(&self) -> usize {
        self.committed.iter().filter(|c| !c.is_noop()).count()
    }

    /// Drains the outbound messages queued by the last handler call.
    pub fn take_outbox(&mut self) -> Vec<(ProcessId, LogMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// True once per wanted flush: the hosting node calls this after every
    /// handler and arms a 1-tick [`LOG_FLUSH`] timer when it returns true.
    pub fn take_flush_request(&mut self) -> bool {
        if self.flush_asked {
            self.flush_asked = false;
            self.flush_armed = true;
            true
        } else {
            false
        }
    }

    /// The [`LOG_FLUSH`] timer fired: propose everything coalesced since
    /// it was armed (up to `batch_max` per `AcceptBatch`).
    pub fn on_flush(&mut self, now: Time) {
        self.flush_armed = false;
        self.propose_queued_batched(now);
    }

    // ------------------------------------------------------------------
    // Membership events
    // ------------------------------------------------------------------

    /// Feeds one membership transition. The hosting node calls this with
    /// everything `Member::take_events` drained, in order.
    pub fn on_member_event(&mut self, ev: MemberEvent, now: Time) {
        match ev {
            MemberEvent::ViewInstalled { ver, members, mgr }
            | MemberEvent::Welcomed { ver, members, mgr } => {
                let welcomed = !self.active;
                self.active = true;
                self.view = members;
                self.ver = ver;
                self.promised = self.promised.max(ver);
                self.leader = Some(mgr);
                self.suspected.retain(|p| self.view.contains(p));
                if mgr == self.me {
                    self.become_leader(ver, now);
                } else {
                    // Demotion (or follower continuation): any in-flight
                    // proposals are the new leader's problem now — its
                    // recovery round reads them out of our accepted set.
                    self.lead = None;
                    if welcomed {
                        // Joiner state transfer: ask the leader for the
                        // committed prefix we missed. Decides from now on
                        // reach us directly (we are in the view the leader
                        // broadcasts to); `SyncOk` fills everything before.
                        self.outbox.push((
                            mgr,
                            LogMsg::Sync {
                                from: self.logical_len(),
                            },
                        ));
                    }
                }
            }
            MemberEvent::PeerSuspected { peer, .. } => {
                self.suspected.insert(peer);
                // A suspect will never answer: stop awaiting its recovery
                // response. (In-flight accepts keep counting toward the
                // *view* majority — the next view install re-proposes them
                // if the quorum died.)
                if let Some(lead) = &mut self.lead {
                    if let Some(rec) = &mut lead.recovery {
                        rec.pending.remove(&peer);
                    }
                }
                self.finish_recovery_if_ready(now);
            }
            MemberEvent::PeerExcluded { .. } => {
                // The matching ViewInstalled (next event) carries the new
                // view; nothing to do on the exclusion itself.
            }
            MemberEvent::Quit { .. } => {
                self.active = false;
                self.lead = None;
                self.flush_asked = false;
                self.flush_armed = false;
            }
            // `MemberEvent` is non_exhaustive: future kinds don't concern
            // the log until someone teaches it otherwise.
            _ => {}
        }
    }

    /// Starts (or restarts) leading at `ballot`. Re-entered on *every*
    /// view install that leaves us `Mgr`: the recovery round is idempotent
    /// and re-proposing at the newest ballot is exactly what un-wedges
    /// slots whose quorum died mid-accept.
    fn become_leader(&mut self, ballot: Ver, now: Time) {
        let mut queue = match self.lead.take() {
            // Keep admitted-but-unserved client work across re-elections.
            Some(prev) => prev.queue,
            None => VecDeque::new(),
        };
        // …minus anything a leader in between already committed (the
        // client resubmitted it there while we were a follower).
        queue.retain(|c| self.committed_slot_of(c).is_none());
        let admitted: BTreeSet<LogCmd> = queue.iter().copied().collect();
        let pending: BTreeSet<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me && !self.suspected.contains(&p))
            .copied()
            .collect();
        self.lead = Some(LeaderState {
            ballot,
            next_slot: self.logical_len(),
            queue,
            admitted,
            in_flight: BTreeMap::new(),
            recovery: Some(Recovery {
                pending,
                found: BTreeMap::new(),
            }),
        });
        let from = self.logical_len();
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Recover { ballot, from }));
        }
        // A solitary (or fully-suspicious) leader recovers from its own
        // accepted set alone.
        self.finish_recovery_if_ready(now);
    }

    // ------------------------------------------------------------------
    // Log messages
    // ------------------------------------------------------------------

    /// Handles one incoming log message.
    pub fn on_message(&mut self, from: ProcessId, msg: LogMsg, now: Time) {
        if !self.active {
            return;
        }
        match msg {
            LogMsg::Request { cmd } => self.on_request(from, cmd, now),
            LogMsg::Accept { ballot, slot, cmd } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if slot >= self.floor {
                        self.accepted.insert(slot, (ballot, cmd));
                    }
                    self.outbox.push((from, LogMsg::AcceptOk { ballot, slot }));
                }
            }
            LogMsg::AcceptOk { ballot, slot } => self.on_accept_ok(from, ballot, slot, now),
            LogMsg::Decide { ballot, slot, cmd } => {
                self.learn(slot, ballot, cmd);
                self.apply_contiguous(now);
            }
            LogMsg::AcceptBatch {
                ballot,
                first_slot,
                cmds,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    let count = cmds.len() as u64;
                    for (i, cmd) in cmds.into_iter().enumerate() {
                        let slot = first_slot + i as u64;
                        // Slots under the floor are committed and pruned;
                        // acking them is still correct (decided ⊇ accepted).
                        if slot >= self.floor {
                            self.accepted.insert(slot, (ballot, cmd));
                        }
                    }
                    self.outbox.push((
                        from,
                        LogMsg::AcceptOkRange {
                            ballot,
                            first_slot,
                            count,
                        },
                    ));
                }
            }
            LogMsg::AcceptOkRange {
                ballot,
                first_slot,
                count,
            } => self.on_accept_ok_range(from, ballot, first_slot, count, now),
            LogMsg::DecideBatch {
                ballot,
                first_slot,
                cmds,
            } => {
                for (i, cmd) in cmds.into_iter().enumerate() {
                    self.learn(first_slot + i as u64, ballot, cmd);
                }
                self.apply_contiguous(now);
            }
            LogMsg::Recover {
                ballot,
                from: floor,
            } => self.on_recover(from, ballot, floor),
            LogMsg::RecoverOk {
                ballot,
                snapshot,
                entries,
            } => {
                if let Some(snap) = snapshot {
                    self.install_snapshot(snap);
                }
                let Some(lead) = &mut self.lead else { return };
                if lead.ballot != ballot {
                    return; // stale round
                }
                let Some(rec) = &mut lead.recovery else {
                    return;
                };
                for (slot, b, cmd) in entries {
                    match rec.found.get(&slot) {
                        Some(&(have, _)) if have >= b => {}
                        _ => {
                            rec.found.insert(slot, (b, cmd));
                        }
                    }
                }
                rec.pending.remove(&from);
                self.finish_recovery_if_ready(now);
            }
            LogMsg::Sync { from: req } => {
                // Below the floor the prefix is gone: ship the snapshot
                // that summarizes it plus the retained tail — O(tail).
                let (snapshot, start) = if req < self.floor {
                    (Some(self.snapshot()), self.floor)
                } else {
                    (None, req)
                };
                debug_assert!(start >= self.base, "sync start under the applied base");
                let lo = (start - self.base) as usize;
                let entries: Vec<(Ver, LogCmd)> = (lo..self.committed.len())
                    .map(|i| (self.ballots[i], self.committed[i]))
                    .collect();
                self.outbox.push((
                    from,
                    LogMsg::SyncOk {
                        from: start,
                        snapshot,
                        entries,
                    },
                ));
            }
            LogMsg::SyncOk {
                from: start,
                snapshot,
                entries,
            } => {
                self.last_sync = Some((snapshot.is_some(), entries.len() as u64));
                if let Some(snap) = snapshot {
                    self.install_snapshot(snap);
                }
                for (i, (b, cmd)) in entries.into_iter().enumerate() {
                    self.learn(start + i as u64, b, cmd);
                }
                self.apply_contiguous(now);
            }
            // Client-side messages; replicas ignore strays.
            LogMsg::Redirect { .. } | LogMsg::Reply { .. } => {}
        }
    }

    /// Answers a `Recover` probe: promise the ballot and report everything
    /// accepted at slot ≥ `req`. Compaction makes this three-cased: above
    /// the floor the accepted map answers directly; between base and floor
    /// the applied vectors fill in (committed implies accepted); below
    /// base nothing survives as entries and the snapshot goes instead.
    fn on_recover(&mut self, from: ProcessId, ballot: Ver, req: u64) {
        if ballot < self.promised {
            return;
        }
        self.promised = ballot;
        let mut snapshot = None;
        let mut entries: Vec<(u64, Ver, LogCmd)> = Vec::new();
        if req < self.floor {
            if req < self.base {
                snapshot = Some(self.snapshot());
            } else {
                for i in (req - self.base) as usize..(self.floor - self.base) as usize {
                    entries.push((self.base + i as u64, self.ballots[i], self.committed[i]));
                }
            }
            entries.extend(
                self.accepted
                    .range(self.floor..)
                    .map(|(&s, &(b, c))| (s, b, c)),
            );
        } else {
            entries.extend(self.accepted.range(req..).map(|(&s, &(b, c))| (s, b, c)));
        }
        self.outbox.push((
            from,
            LogMsg::RecoverOk {
                ballot,
                snapshot,
                entries,
            },
        ));
    }

    fn on_request(&mut self, client: ProcessId, cmd: LogCmd, now: Time) {
        if self.lead.is_none() {
            // Not the leader: point the client at our belief (silence
            // would also work — clients retry — but the hint is what makes
            // failover latency a round trip instead of a timeout).
            if let Some(l) = self.leader {
                if l != self.me {
                    self.outbox.push((client, LogMsg::Redirect { leader: l }));
                }
            }
            return;
        }
        if let Some(slot) = self.committed_slot_of(&cmd) {
            // Committed duplicate (client re-sent across a failover the
            // first reply did not survive): answer from the log above the
            // floor, or from the client's high-water mark below it.
            self.outbox
                .push((client, LogMsg::Reply { seq: cmd.seq, slot }));
            return;
        }
        let lead = self.lead.as_mut().expect("leader checked above");
        if !lead.admitted.insert(cmd) {
            return; // queued or in flight; the decide will answer
        }
        lead.queue.push_back(cmd);
        if self.batch_max > 1 {
            // Coalesce everything arriving this tick into one batch: the
            // hosting node arms a 1-tick flush on our request.
            self.ask_flush();
        } else {
            self.propose_queued(now);
        }
    }

    /// The committed slot of `cmd`, if it committed: exact from `by_cmd`
    /// above the floor, else inferred from the client's high-water mark
    /// (`seq ≤ mark` ⇔ committed; the mark's slot stands in for the
    /// pruned exact slot — clients match replies by `seq` alone).
    fn committed_slot_of(&self, cmd: &LogCmd) -> Option<u64> {
        if let Some(&slot) = self.by_cmd.get(cmd) {
            return Some(slot);
        }
        match self.client_hwm.get(&cmd.client) {
            Some(&(seq, slot)) if seq >= cmd.seq => Some(slot),
            _ => None,
        }
    }

    /// Asks the hosting node for a flush timer, once per armed window.
    fn ask_flush(&mut self) {
        if !self.flush_armed {
            self.flush_asked = true;
        }
    }

    fn on_accept_ok(&mut self, from: ProcessId, ballot: Ver, slot: u64, now: Time) {
        let quorum = self.quorum();
        let Some(lead) = &mut self.lead else { return };
        if lead.ballot != ballot {
            return;
        }
        let Some(acc) = lead.in_flight.get_mut(&slot) else {
            return; // already decided (or never ours)
        };
        acc.oks.insert(from);
        // +1: the leader accepted its own proposal at propose time.
        if acc.oks.len() + 1 >= quorum {
            let cmd = acc.cmd;
            lead.in_flight.remove(&slot);
            self.decide(slot, ballot, cmd, now);
        }
    }

    /// One `AcceptOkRange` acks every slot in its range; any slot that
    /// reaches quorum decides, and contiguous decisions ship as one
    /// `DecideBatch`.
    fn on_accept_ok_range(
        &mut self,
        from: ProcessId,
        ballot: Ver,
        first_slot: u64,
        count: u64,
        now: Time,
    ) {
        let quorum = self.quorum();
        let Some(lead) = &mut self.lead else { return };
        if lead.ballot != ballot {
            return;
        }
        let mut decided: Vec<(u64, LogCmd)> = Vec::new();
        for slot in first_slot..first_slot + count {
            if let Some(acc) = lead.in_flight.get_mut(&slot) {
                acc.oks.insert(from);
                if acc.oks.len() + 1 >= quorum {
                    decided.push((slot, acc.cmd));
                }
            }
        }
        for &(slot, _) in &decided {
            lead.in_flight.remove(&slot);
        }
        if !decided.is_empty() {
            self.decide_slots(decided, ballot, now);
        }
    }

    /// Commits `slot` on the legacy per-slot path: record, broadcast
    /// `Decide`, answer the client, and let follow-on queued work into
    /// the freed in-flight window.
    fn decide(&mut self, slot: u64, ballot: Ver, cmd: LogCmd, now: Time) {
        self.learn(slot, ballot, cmd);
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Decide { ballot, slot, cmd }));
        }
        if !cmd.is_noop() {
            self.outbox
                .push((cmd.client, LogMsg::Reply { seq: cmd.seq, slot }));
        }
        self.apply_contiguous(now);
        self.propose_queued(now);
    }

    /// Commits a set of slots on the batched path: learn them all, ship
    /// one `DecideBatch` per contiguous run per peer, answer the clients,
    /// and refill the pipeline straight from the queue.
    fn decide_slots(&mut self, decided: Vec<(u64, LogCmd)>, ballot: Ver, now: Time) {
        for &(slot, cmd) in &decided {
            self.learn(slot, ballot, cmd);
        }
        let mut runs: Vec<(u64, Vec<LogCmd>)> = Vec::new();
        for &(slot, cmd) in &decided {
            match runs.last_mut() {
                Some((first, cmds)) if *first + cmds.len() as u64 == slot => cmds.push(cmd),
                _ => runs.push((slot, vec![cmd])),
            }
        }
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for (first_slot, cmds) in &runs {
            for &p in &peers {
                self.outbox.push((
                    p,
                    LogMsg::DecideBatch {
                        ballot,
                        first_slot: *first_slot,
                        cmds: cmds.clone(),
                    },
                ));
            }
        }
        for &(slot, cmd) in &decided {
            if !cmd.is_noop() {
                self.outbox
                    .push((cmd.client, LogMsg::Reply { seq: cmd.seq, slot }));
            }
        }
        self.apply_contiguous(now);
        self.propose_queued_batched(now);
    }

    /// Records a decided entry (idempotent; decides imply accepts so the
    /// entry also feeds later recoveries).
    fn learn(&mut self, slot: u64, ballot: Ver, cmd: LogCmd) {
        if slot < self.logical_len() {
            return; // already applied
        }
        if let Some(lead) = &mut self.lead {
            lead.admitted.remove(&cmd);
        }
        self.accepted.insert(slot, (ballot, cmd));
        self.parked.insert(slot, (ballot, cmd));
    }

    /// Applies every parked decision contiguous with the applied prefix,
    /// then compacts if the hot state outgrew its bound.
    fn apply_contiguous(&mut self, now: Time) {
        while let Some(&(ballot, cmd)) = self.parked.get(&self.logical_len()) {
            let slot = self.logical_len();
            self.parked.remove(&slot);
            self.committed.push(cmd);
            self.ballots.push(ballot);
            self.applied_at.push(now);
            if !cmd.is_noop() {
                self.by_cmd.insert(cmd, slot);
                let mark = self.client_hwm.entry(cmd.client).or_insert((cmd.seq, slot));
                // ≥, not >: a snapshot may have pre-adopted this very mark.
                if cmd.seq >= mark.0 {
                    *mark = (cmd.seq, slot);
                }
            }
        }
        self.maybe_compact();
    }

    /// Advances the compaction floor once the applied suffix above it
    /// exceeds twice the keep budget, pruning `accepted`/`parked`/`by_cmd`
    /// below the new floor. The 2× hysteresis makes the amortized cost
    /// O(1) per applied slot.
    fn maybe_compact(&mut self) {
        if self.compact_keep == usize::MAX {
            return;
        }
        let len = self.logical_len();
        if len - self.floor <= 2 * self.compact_keep as u64 {
            return;
        }
        let new_floor = len - self.compact_keep as u64;
        self.accepted = self.accepted.split_off(&new_floor);
        self.parked = self.parked.split_off(&new_floor);
        self.by_cmd.retain(|_, s| *s >= new_floor);
        self.floor = new_floor;
    }

    /// The compacted summary of everything below the floor: the floor plus
    /// every client's dedup high-water mark.
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            floor: self.floor,
            clients: self
                .client_hwm
                .iter()
                .map(|(&c, &(seq, slot))| (c, seq, slot))
                .collect(),
        }
    }

    /// Installs a received snapshot: adopt any newer client marks, and if
    /// the snapshot's floor is ahead of our applied prefix, restart the
    /// applied vectors at it (the pruned prefix is summarized, not lost —
    /// that is the floor invariant).
    fn install_snapshot(&mut self, snap: Snapshot) {
        for (client, seq, slot) in snap.clients {
            let mark = self.client_hwm.entry(client).or_insert((seq, slot));
            if seq >= mark.0 {
                *mark = (seq, slot);
            }
        }
        if snap.floor > self.logical_len() {
            self.committed.clear();
            self.ballots.clear();
            self.applied_at.clear();
            self.base = snap.floor;
            self.accepted = self.accepted.split_off(&snap.floor);
            self.parked = self.parked.split_off(&snap.floor);
            self.by_cmd.retain(|_, s| *s >= snap.floor);
        }
        self.floor = self.floor.max(snap.floor);
    }

    /// The view majority, acceptor quorum of every ballot.
    fn quorum(&self) -> usize {
        self.view.len() / 2 + 1
    }

    /// Completes the recovery round once every awaited response is in:
    /// adopt the highest-ballot entry per slot, fill gaps with no-ops,
    /// re-propose everything above the committed prefix, re-send each
    /// client's high-water reply, then serve the queue.
    fn finish_recovery_if_ready(&mut self, now: Time) {
        let floor_slot = self.logical_len();
        let Some(lead) = &mut self.lead else { return };
        let Some(rec) = &mut lead.recovery else {
            return;
        };
        if !rec.pending.is_empty() {
            return;
        }
        let ballot = lead.ballot;
        let mut chosen = std::mem::take(&mut rec.found);
        lead.recovery = None;
        // Decides kept arriving from the old leader while we probed:
        // never propose below (or into) the applied prefix.
        lead.next_slot = lead.next_slot.max(floor_slot);
        // Our own accepted set is a recovery response like any other.
        for (&slot, &(b, cmd)) in self.accepted.range(floor_slot..) {
            match chosen.get(&slot) {
                Some(&(have, _)) if have >= b => {}
                _ => {
                    chosen.insert(slot, (b, cmd));
                }
            }
        }
        let top = chosen
            .iter()
            .next_back()
            .map(|(&s, _)| s)
            .filter(|&s| s >= floor_slot);
        if let Some(top) = top {
            let plan: Vec<LogCmd> = (floor_slot..=top)
                .map(|s| chosen.get(&s).map(|&(_, c)| c).unwrap_or(LogCmd::NOOP))
                .collect();
            // A recovered command may *also* sit in our queue (its client
            // retried to us while we probed). Re-proposing it once under
            // its recovered slot is the exactly-once path; drop the
            // queued twin.
            let rec_set: BTreeSet<LogCmd> = plan.iter().copied().filter(|c| !c.is_noop()).collect();
            if let Some(lead) = &mut self.lead {
                lead.queue.retain(|c| !rec_set.contains(c));
                lead.admitted.extend(rec_set.iter().copied());
                lead.next_slot = lead.next_slot.max(top + 1);
            }
            if self.batch_max > 1 {
                let mut i = 0usize;
                while i < plan.len() {
                    let take = (plan.len() - i).min(self.batch_max);
                    let first = floor_slot + i as u64;
                    let cmds: Vec<LogCmd> = plan[i..i + take].to_vec();
                    self.propose_batch(first, ballot, cmds, now);
                    i += take;
                }
            } else {
                for (i, &cmd) in plan.iter().enumerate() {
                    self.propose(floor_slot + i as u64, ballot, cmd, now);
                }
            }
        }
        // Failover re-reply: a command decided under the dead leader may
        // have lost its reply with the crash. One reply per known client
        // (its high-water mark) unsticks any such client immediately;
        // completed clients ignore it by seq.
        let replies: Vec<(ProcessId, u64, u64)> = self
            .client_hwm
            .iter()
            .map(|(&c, &(seq, slot))| (c, seq, slot))
            .collect();
        for (client, seq, slot) in replies {
            self.outbox.push((client, LogMsg::Reply { seq, slot }));
        }
        if self.batch_max > 1 {
            self.propose_queued_batched(now);
        } else {
            self.propose_queued(now);
        }
    }

    /// Moves queued client commands into the in-flight window, one slot
    /// per `Accept` (the legacy path).
    fn propose_queued(&mut self, now: Time) {
        loop {
            let Some(lead) = &mut self.lead else { return };
            if lead.recovery.is_some() || lead.in_flight.len() >= self.max_inflight {
                return;
            }
            let Some(cmd) = lead.queue.pop_front() else {
                return;
            };
            let slot = lead.next_slot;
            lead.next_slot += 1;
            let ballot = lead.ballot;
            self.propose(slot, ballot, cmd, now);
        }
    }

    /// Moves queued client commands into the in-flight window in batches
    /// of up to `batch_max`, as window room allows.
    fn propose_queued_batched(&mut self, now: Time) {
        loop {
            let Some(lead) = &mut self.lead else { return };
            if lead.recovery.is_some() || lead.in_flight.len() >= self.max_inflight {
                return;
            }
            if lead.queue.is_empty() {
                return;
            }
            let room = self.max_inflight - lead.in_flight.len();
            let take = room.min(self.batch_max).min(lead.queue.len());
            let first = lead.next_slot;
            lead.next_slot += take as u64;
            let ballot = lead.ballot;
            let cmds: Vec<LogCmd> = lead.queue.drain(..take).collect();
            self.propose_batch(first, ballot, cmds, now);
        }
    }

    /// Proposes `cmd` into `slot`: self-accept, broadcast `Accept`, and —
    /// in the degenerate single-member view — decide on the spot.
    fn propose(&mut self, slot: u64, ballot: Ver, cmd: LogCmd, now: Time) {
        self.promised = self.promised.max(ballot);
        self.accepted.insert(slot, (ballot, cmd));
        let Some(lead) = &mut self.lead else { return };
        lead.in_flight.insert(
            slot,
            Accepting {
                cmd,
                oks: BTreeSet::new(),
            },
        );
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((p, LogMsg::Accept { ballot, slot, cmd }));
        }
        if self.quorum() == 1 {
            let Some(lead) = &mut self.lead else { return };
            lead.in_flight.remove(&slot);
            self.decide(slot, ballot, cmd, now);
        }
    }

    /// Proposes `cmds` into the contiguous range starting at `first_slot`:
    /// self-accept each, one `AcceptBatch` per peer, and — in the
    /// single-member view — decide the whole range on the spot.
    fn propose_batch(&mut self, first_slot: u64, ballot: Ver, cmds: Vec<LogCmd>, now: Time) {
        self.promised = self.promised.max(ballot);
        for (i, &cmd) in cmds.iter().enumerate() {
            self.accepted.insert(first_slot + i as u64, (ballot, cmd));
        }
        {
            let Some(lead) = &mut self.lead else { return };
            for (i, &cmd) in cmds.iter().enumerate() {
                lead.in_flight.insert(
                    first_slot + i as u64,
                    Accepting {
                        cmd,
                        oks: BTreeSet::new(),
                    },
                );
            }
        }
        let peers: Vec<ProcessId> = self
            .view
            .iter()
            .filter(|&&p| p != self.me)
            .copied()
            .collect();
        for p in peers {
            self.outbox.push((
                p,
                LogMsg::AcceptBatch {
                    ballot,
                    first_slot,
                    cmds: cmds.clone(),
                },
            ));
        }
        if self.quorum() == 1 {
            let decided: Vec<(u64, LogCmd)> = cmds
                .iter()
                .enumerate()
                .map(|(i, &c)| (first_slot + i as u64, c))
                .collect();
            if let Some(lead) = &mut self.lead {
                for &(slot, _) in &decided {
                    lead.in_flight.remove(&slot);
                }
            }
            self.decide_slots(decided, ballot, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view3() -> Vec<ProcessId> {
        vec![ProcessId(0), ProcessId(1), ProcessId(2)]
    }

    fn installed(log: &mut ReplicatedLog, ver: Ver, mgr: u32) {
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver,
                members: view3(),
                mgr: ProcessId(mgr),
            },
            0,
        );
    }

    fn cmd(client: u32, seq: u64) -> LogCmd {
        LogCmd {
            client: ProcessId(client),
            seq,
        }
    }

    fn recover_ok_empty(log: &mut ReplicatedLog, from: u32, ballot: Ver, at: Time) {
        log.on_message(
            ProcessId(from),
            LogMsg::RecoverOk {
                ballot,
                snapshot: None,
                entries: vec![],
            },
            at,
        );
    }

    #[test]
    fn leader_recovers_then_serves() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(0));
        installed(&mut log, 0, 0);
        // Recovery round goes out to both peers…
        let out = log.take_outbox();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].1, LogMsg::Recover { ballot: 0, from: 0 }));
        // …and no client work is served until it answers.
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 1);
        assert!(log.take_outbox().is_empty());
        for p in [1, 2] {
            recover_ok_empty(&mut log, p, 0, 2);
        }
        let out = log.take_outbox();
        // Accept for slot 0 to both peers.
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out[0].1,
            LogMsg::Accept {
                ballot: 0,
                slot: 0,
                ..
            }
        ));
        // One AcceptOk + self = 2 of 3: decided, replied, applied.
        log.on_message(ProcessId(1), LogMsg::AcceptOk { ballot: 0, slot: 0 }, 3);
        let out = log.take_outbox();
        assert!(out
            .iter()
            .any(|(to, m)| *to == ProcessId(9) && matches!(m, LogMsg::Reply { seq: 0, slot: 0 })));
        assert_eq!(log.committed(), &[cmd(9, 0)]);
        assert_eq!(log.committed_ops(), 1);
    }

    #[test]
    fn acceptor_rejects_stale_ballots() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        installed(&mut log, 0, 0);
        log.take_outbox();
        // A view install at ver 2 raises the promise…
        installed(&mut log, 2, 0);
        log.take_outbox();
        // …so a ballot-1 accept is ignored.
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 1,
                slot: 0,
                cmd: cmd(9, 0),
            },
            5,
        );
        assert!(log.take_outbox().is_empty());
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 2,
                slot: 0,
                cmd: cmd(9, 0),
            },
            6,
        );
        assert!(matches!(
            log.take_outbox().as_slice(),
            [(ProcessId(0), LogMsg::AcceptOk { ballot: 2, slot: 0 })]
        ));
    }

    #[test]
    fn recovery_adopts_highest_ballot_and_fills_gaps() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        // Follower first: accept slot 1 (not 0) at ballot 0 from the old
        // leader, then take over at ver 1.
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(
            ProcessId(0),
            LogMsg::Accept {
                ballot: 0,
                slot: 1,
                cmd: cmd(9, 1),
            },
            5,
        );
        log.take_outbox();
        let members = vec![ProcessId(1), ProcessId(2)];
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 1,
                members,
                mgr: ProcessId(1),
            },
            10,
        );
        log.take_outbox();
        // The peer reports a higher-ballot value for slot 1 — adopted.
        log.on_message(
            ProcessId(2),
            LogMsg::RecoverOk {
                ballot: 1,
                snapshot: None,
                entries: vec![(1, 1, cmd(8, 4))],
            },
            11,
        );
        let out = log.take_outbox();
        let accepts: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m {
                LogMsg::Accept { slot, cmd, .. } => Some((*slot, *cmd)),
                _ => None,
            })
            .collect();
        // Slot 0 was a hole → no-op; slot 1 re-proposed with the adopted value.
        assert_eq!(accepts, vec![(0, LogCmd::NOOP), (1, cmd(8, 4))]);
        // The 2-member view decides with the peer's ok.
        log.on_message(ProcessId(2), LogMsg::AcceptOk { ballot: 1, slot: 0 }, 12);
        log.on_message(ProcessId(2), LogMsg::AcceptOk { ballot: 1, slot: 1 }, 12);
        assert_eq!(log.committed(), &[LogCmd::NOOP, cmd(8, 4)]);
        assert_eq!(log.committed_ops(), 1);
        assert_eq!(log.ballots(), &[1, 1]);
    }

    #[test]
    fn duplicate_requests_answer_from_the_log() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(0));
        installed(&mut log, 0, 0);
        log.take_outbox();
        for p in [1, 2] {
            recover_ok_empty(&mut log, p, 0, 1);
        }
        log.take_outbox();
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 2);
        log.take_outbox();
        log.on_message(ProcessId(1), LogMsg::AcceptOk { ballot: 0, slot: 0 }, 3);
        log.take_outbox();
        // Same command again: replied immediately, not re-proposed.
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 4);
        let out = log.take_outbox();
        assert!(matches!(
            out.as_slice(),
            [(ProcessId(9), LogMsg::Reply { seq: 0, slot: 0 })]
        ));
        assert_eq!(log.committed().len(), 1);
    }

    #[test]
    fn followers_redirect_clients() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 1);
        assert!(matches!(
            log.take_outbox().as_slice(),
            [(
                ProcessId(9),
                LogMsg::Redirect {
                    leader: ProcessId(0)
                }
            )]
        ));
    }

    #[test]
    fn out_of_order_decides_apply_contiguously() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(2));
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 1,
                cmd: cmd(9, 1),
            },
            5,
        );
        assert!(log.committed().is_empty());
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 0,
                cmd: cmd(9, 0),
            },
            6,
        );
        assert_eq!(log.committed(), &[cmd(9, 0), cmd(9, 1)]);
        assert_eq!(log.applied_at(), &[6, 6]);
    }

    // ------------------------------------------------------------------
    // Batched hot path
    // ------------------------------------------------------------------

    #[test]
    fn requests_coalesce_into_one_accept_batch() {
        let mut log = ReplicatedLog::with_tuning(8, 4, usize::MAX);
        log.bind(ProcessId(0));
        installed(&mut log, 0, 0);
        log.take_outbox();
        for p in [1, 2] {
            recover_ok_empty(&mut log, p, 0, 1);
        }
        log.take_outbox();
        // Three requests within one tick admit silently and ask one flush.
        for s in 0..3 {
            log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, s) }, 5);
        }
        assert!(log.take_outbox().is_empty());
        assert!(log.take_flush_request());
        assert!(!log.take_flush_request(), "one armed flush at a time");
        log.on_flush(6);
        let out = log.take_outbox();
        // One AcceptBatch per peer carrying all three commands.
        assert_eq!(out.len(), 2);
        assert!(matches!(
            &out[0].1,
            LogMsg::AcceptBatch { ballot: 0, first_slot: 0, cmds } if cmds.len() == 3
        ));
        // One range ack (2 of 3 with self) decides the whole range.
        log.on_message(
            ProcessId(1),
            LogMsg::AcceptOkRange {
                ballot: 0,
                first_slot: 0,
                count: 3,
            },
            7,
        );
        let out = log.take_outbox();
        let batches = out
            .iter()
            .filter(|(_, m)| matches!(m, LogMsg::DecideBatch { cmds, .. } if cmds.len() == 3))
            .count();
        assert_eq!(batches, 2, "one DecideBatch per peer");
        let replies = out
            .iter()
            .filter(|(_, m)| matches!(m, LogMsg::Reply { .. }))
            .count();
        assert_eq!(replies, 3);
        assert_eq!(log.committed(), &[cmd(9, 0), cmd(9, 1), cmd(9, 2)]);
    }

    #[test]
    fn decide_batches_apply_like_single_decides() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(2));
        installed(&mut log, 0, 0);
        log.take_outbox();
        log.on_message(
            ProcessId(0),
            LogMsg::DecideBatch {
                ballot: 0,
                first_slot: 1,
                cmds: vec![cmd(9, 1), cmd(9, 2)],
            },
            5,
        );
        assert!(log.committed().is_empty(), "slot 0 still missing");
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 0,
                cmd: cmd(9, 0),
            },
            6,
        );
        assert_eq!(log.committed(), &[cmd(9, 0), cmd(9, 1), cmd(9, 2)]);
    }

    // ------------------------------------------------------------------
    // Compaction, snapshots, high-water dedup
    // ------------------------------------------------------------------

    /// A solitary leader (quorum 1) that has committed `ops` commands
    /// from client 9, compacting down to `keep`.
    fn solitary_compacted(ops: u64, keep: usize) -> ReplicatedLog {
        let mut log = ReplicatedLog::with_tuning(8, 1, keep);
        log.bind(ProcessId(0));
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 0,
                members: vec![ProcessId(0)],
                mgr: ProcessId(0),
            },
            0,
        );
        log.take_outbox();
        for s in 0..ops {
            log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, s) }, s);
            log.take_outbox();
        }
        log
    }

    #[test]
    fn compaction_prunes_hot_state_and_dedups_from_the_mark() {
        let log = solitary_compacted(20, 4);
        assert_eq!(log.committed_ops(), 20);
        // Floor advances by `keep` each time the suffix exceeds 2·keep:
        // trigger at len 9 → 5, 14 → 10, 19 → 15.
        assert_eq!(log.floor(), 15);
        let (acc, parked, by_cmd, hwm) = log.hot_sizes();
        assert!(acc <= 2 * 4 + 1, "accepted pruned below the floor");
        assert_eq!(parked, 0);
        assert_eq!(by_cmd, 5, "only slots ≥ floor keep exact entries");
        assert_eq!(hwm, 1, "one mark per client");
        // A duplicate far below the floor still answers — from the mark
        // (slot is best-effort; clients match replies by seq).
        let mut log = log;
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 3) }, 30);
        assert!(matches!(
            log.take_outbox().as_slice(),
            [(ProcessId(9), LogMsg::Reply { seq: 3, slot: 19 })]
        ));
        // …while a fresh command is admitted normally.
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 20) }, 31);
        log.take_outbox();
        assert_eq!(log.committed_ops(), 21);
    }

    #[test]
    fn sync_below_the_floor_ships_a_snapshot_plus_tail() {
        let mut log = solitary_compacted(20, 4);
        log.on_message(ProcessId(5), LogMsg::Sync { from: 0 }, 40);
        let out = log.take_outbox();
        assert_eq!(out.len(), 1);
        let LogMsg::SyncOk {
            from,
            snapshot: Some(snap),
            entries,
        } = &out[0].1
        else {
            panic!("expected a snapshot-bearing SyncOk, got {:?}", out[0].1);
        };
        assert_eq!(*from, 15);
        assert_eq!(snap.floor, 15);
        assert_eq!(snap.clients, vec![(ProcessId(9), 19, 19)]);
        assert_eq!(entries.len(), 5, "O(tail), not O(log)");
        // A fresh replica boots from it: vectors restart at the floor.
        let mut joiner = ReplicatedLog::new(8);
        joiner.bind(ProcessId(5));
        joiner.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 1,
                members: vec![ProcessId(0), ProcessId(5)],
                mgr: ProcessId(0),
            },
            41,
        );
        joiner.take_outbox();
        joiner.on_message(ProcessId(0), out[0].1.clone(), 42);
        assert_eq!(joiner.base(), 15);
        assert_eq!(joiner.logical_len(), 20);
        assert_eq!(joiner.committed().len(), 5);
        assert_eq!(joiner.last_sync(), Some((true, 5)));
        // The adopted marks dedup below its base.
        assert_eq!(joiner.committed_slot_of(&cmd(9, 2)), Some(19));
        assert_eq!(joiner.committed_slot_of(&cmd(9, 20)), None);
    }

    #[test]
    fn recover_between_base_and_floor_reports_committed_entries() {
        let mut log = solitary_compacted(20, 4);
        // A new leader probing from slot 10 (< floor 15, ≥ base 0) gets
        // the committed range [10, 15) plus everything accepted above.
        log.on_message(
            ProcessId(1),
            LogMsg::Recover {
                ballot: 7,
                from: 10,
            },
            50,
        );
        let out = log.take_outbox();
        let LogMsg::RecoverOk {
            snapshot: None,
            entries,
            ..
        } = &out[0].1
        else {
            panic!("expected an entry-only RecoverOk, got {:?}", out[0].1);
        };
        assert_eq!(entries.first().map(|e| e.0), Some(10));
        assert_eq!(entries.len(), 10, "[10, 20) with nothing missing");
    }

    // ------------------------------------------------------------------
    // Failover fixes
    // ------------------------------------------------------------------

    #[test]
    fn a_new_leader_re_replies_for_committed_commands() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        installed(&mut log, 0, 0);
        log.take_outbox();
        // Slot 0 committed under the old leader; its Reply died with it.
        log.on_message(
            ProcessId(0),
            LogMsg::Decide {
                ballot: 0,
                slot: 0,
                cmd: cmd(9, 0),
            },
            5,
        );
        log.take_outbox();
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 1,
                members: vec![ProcessId(1), ProcessId(2)],
                mgr: ProcessId(1),
            },
            10,
        );
        log.take_outbox();
        recover_ok_empty(&mut log, 2, 1, 11);
        let out = log.take_outbox();
        assert!(
            out.iter().any(
                |(to, m)| *to == ProcessId(9) && matches!(m, LogMsg::Reply { seq: 0, slot: 0 })
            ),
            "recovery completion re-replies the client's high-water mark"
        );
    }

    #[test]
    fn recovered_commands_are_not_proposed_twice() {
        let mut log = ReplicatedLog::new(8);
        log.bind(ProcessId(1));
        let members = vec![ProcessId(1), ProcessId(2)];
        log.on_member_event(
            MemberEvent::ViewInstalled {
                ver: 1,
                members,
                mgr: ProcessId(1),
            },
            0,
        );
        log.take_outbox();
        // The client retries to the new leader while it is still probing…
        log.on_message(ProcessId(9), LogMsg::Request { cmd: cmd(9, 0) }, 1);
        assert!(log.take_outbox().is_empty(), "queued behind recovery");
        // …and the same command comes back as a recovered entry.
        log.on_message(
            ProcessId(2),
            LogMsg::RecoverOk {
                ballot: 1,
                snapshot: None,
                entries: vec![(0, 0, cmd(9, 0))],
            },
            2,
        );
        let out = log.take_outbox();
        let accepts: Vec<u64> = out
            .iter()
            .filter_map(|(_, m)| match m {
                LogMsg::Accept { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(accepts, vec![0], "the queued twin is dropped");
    }
}
