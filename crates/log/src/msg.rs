//! Wire format of the replicated log, and the combined envelope that lets
//! log traffic and membership traffic share one simulated network.

use gmp_core::Msg;
use gmp_sim::Message;
use gmp_types::{ProcessId, Ver};

/// A client command. The log stores command *identities*; `(client, seq)`
/// is unique because each client numbers its own requests. Slot fillers
/// proposed during leader recovery use [`LogCmd::NOOP`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogCmd {
    /// The issuing client (a process outside the group).
    pub client: ProcessId,
    /// The client's own request counter, starting at 0.
    pub seq: u64,
}

impl LogCmd {
    /// The no-op filler a recovering leader proposes into slots it cannot
    /// otherwise fill (classic multipaxos gap handling). Uses the same
    /// sentinel id space as the membership layer's "unassigned" marker.
    pub const NOOP: LogCmd = LogCmd {
        client: ProcessId(u32::MAX),
        seq: 0,
    };

    /// True for the recovery filler.
    pub fn is_noop(&self) -> bool {
        *self == LogCmd::NOOP
    }
}

/// A compacted summary of everything below a replica's compaction floor:
/// enough for a receiver to serve reads of the dedup state and to accept
/// decides above the floor, without ever seeing the pruned prefix.
///
/// The floor invariant: every slot `< floor` is committed (decided and
/// applied) at the snapshot's producer, and `clients` holds the dedup
/// high-water mark — the last committed `(seq, slot)` — of every client
/// with a command anywhere in `[0, floor)` *or* in the producer's applied
/// suffix (carrying the suffix marks too costs nothing and lets receivers
/// adopt the map wholesale). Client sequence numbers commit in order per
/// client (FIFO links, see the module docs of [`crate::replica`]), so one
/// `(seq, slot)` pair per client is a complete dedup summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// First slot *not* covered: everything below is committed and
    /// summarized here.
    pub floor: u64,
    /// Per-client dedup high-water marks `(client, last seq, its slot)`,
    /// sorted by client id.
    pub clients: Vec<(ProcessId, u64, u64)>,
}

/// Replicated-log protocol messages.
///
/// Ballots are GMP view versions: monotone, agreed, and free — the
/// membership layer already paid for the agreement. The steady state is
/// phase-2-only multipaxos; with batching off it runs per-slot
/// (`Accept`/`AcceptOk`/`Decide`), with batching on the same phase runs
/// per *range* (`AcceptBatch`/`AcceptOkRange`/`DecideBatch`) so the
/// message cost per command is amortized by the batch size. Phase 1
/// exists as the `Recover` round a new leader runs after a view install.
#[derive(Clone, Debug)]
pub enum LogMsg {
    /// Client → leader: append `cmd` to the log.
    Request {
        /// The command to append.
        cmd: LogCmd,
    },
    /// Replica → client: this replica is not the leader; try `leader`.
    Redirect {
        /// The replica's current leader belief (its view's `Mgr`).
        leader: ProcessId,
    },
    /// Leader → client: the command with this `seq` committed into `slot`.
    Reply {
        /// Echo of the client's request counter.
        seq: u64,
        /// The log position the command occupies.
        slot: u64,
    },
    /// Leader → acceptors: accept `cmd` in `slot` at `ballot`.
    Accept {
        /// The proposing leader's ballot (its view version).
        ballot: Ver,
        /// Log position.
        slot: u64,
        /// Proposed command.
        cmd: LogCmd,
    },
    /// Acceptor → leader: accepted.
    AcceptOk {
        /// Echo of the accept's ballot.
        ballot: Ver,
        /// Echo of the accept's slot.
        slot: u64,
    },
    /// Leader → replicas: `slot` is decided (majority-accepted).
    Decide {
        /// Ballot under which the slot was decided.
        ballot: Ver,
        /// Log position.
        slot: u64,
        /// The decided command.
        cmd: LogCmd,
    },
    /// Leader → acceptors: accept `cmds` into the contiguous slot range
    /// starting at `first_slot`, at `ballot`. One message replaces
    /// `cmds.len()` individual `Accept`s — the batched hot path.
    AcceptBatch {
        /// The proposing leader's ballot (its view version).
        ballot: Ver,
        /// Slot of `cmds[0]`; `cmds[i]` goes into `first_slot + i`.
        first_slot: u64,
        /// The proposed commands, in slot order.
        cmds: Vec<LogCmd>,
    },
    /// Acceptor → leader: the whole range `[first_slot, first_slot +
    /// count)` is accepted. One message acks a whole `AcceptBatch`.
    AcceptOkRange {
        /// Echo of the batch's ballot.
        ballot: Ver,
        /// Echo of the batch's first slot.
        first_slot: u64,
        /// Number of contiguous slots accepted.
        count: u64,
    },
    /// Leader → replicas: the contiguous range starting at `first_slot`
    /// is decided. One message replaces `cmds.len()` individual
    /// `Decide`s.
    DecideBatch {
        /// Ballot under which the range was decided.
        ballot: Ver,
        /// Slot of `cmds[0]`.
        first_slot: u64,
        /// The decided commands, in slot order.
        cmds: Vec<LogCmd>,
    },
    /// New leader → view members: report every accepted entry at slot ≥
    /// `from` (the leader's committed length), so in-flight proposals of
    /// the dead leader can be re-proposed at `ballot`.
    Recover {
        /// The new leader's ballot.
        ballot: Ver,
        /// First slot of interest.
        from: u64,
    },
    /// Acceptor → new leader: accepted entries at slot ≥ the recover's
    /// `from`, as `(slot, ballot, cmd)`. When the responder's own log
    /// starts above the requested floor (it booted from a snapshot and
    /// holds nothing below its base), it attaches its current snapshot so
    /// the requester can catch up first.
    RecoverOk {
        /// Echo of the recover's ballot.
        ballot: Ver,
        /// Present iff the responder cannot report entries all the way
        /// down to the requested floor.
        snapshot: Option<Snapshot>,
        /// This acceptor's accepted entries above the requested floor
        /// (above the snapshot's floor, when one is attached).
        entries: Vec<(u64, Ver, LogCmd)>,
    },
    /// Freshly welcomed member → leader: send me the committed prefix from
    /// `from` (state transfer for joiners).
    Sync {
        /// First slot the joiner is missing (its committed length).
        from: u64,
    },
    /// Leader → joiner: state transfer. With compaction idle this is the
    /// committed entries from `from` in slot order, as before; once the
    /// responder's compaction floor has passed `from`, the prefix below
    /// the floor ships as a [`Snapshot`] and `entries` is only the tail
    /// above it — O(tail), not O(log).
    SyncOk {
        /// First slot of `entries`: the sync's `from`, or the snapshot's
        /// floor when one is attached.
        from: u64,
        /// Present iff the responder compacted past the requested `from`.
        snapshot: Option<Snapshot>,
        /// Committed suffix starting at `from`, as `(deciding ballot,
        /// cmd)`.
        entries: Vec<(Ver, LogCmd)>,
    },
}

impl Message for LogMsg {
    fn tag(&self) -> &'static str {
        match self {
            LogMsg::Request { .. } => "log-request",
            LogMsg::Redirect { .. } => "log-redirect",
            LogMsg::Reply { .. } => "log-reply",
            LogMsg::Accept { .. } => "log-accept",
            LogMsg::AcceptOk { .. } => "log-accept-ok",
            LogMsg::Decide { .. } => "log-decide",
            LogMsg::AcceptBatch { .. } => "log-accept-batch",
            LogMsg::AcceptOkRange { .. } => "log-accept-ok-range",
            LogMsg::DecideBatch { .. } => "log-decide-batch",
            LogMsg::Recover { .. } => "log-recover",
            LogMsg::RecoverOk { .. } => "log-recover-ok",
            LogMsg::Sync { .. } => "log-sync",
            LogMsg::SyncOk { .. } => "log-sync-ok",
        }
    }
}

/// The combined wire type of a log-bearing cluster: membership protocol
/// messages and log messages share one network, one trace and one stats
/// table (log tags are `log-*`-prefixed; [`gmp_core::PROTOCOL_TAGS`] keeps
/// counting only the membership side).
#[derive(Clone, Debug)]
pub enum AppMsg {
    /// A membership-protocol message, delivered to the embedded [`Member`]
    /// (see [`Ctx::embedded`](gmp_sim::Ctx::embedded)).
    ///
    /// [`Member`]: gmp_core::Member
    Gmp(Msg),
    /// A replicated-log message, delivered to the [`ReplicatedLog`]
    /// (replicas) or the [`Client`](crate::Client).
    ///
    /// [`ReplicatedLog`]: crate::ReplicatedLog
    Log(LogMsg),
}

impl Message for AppMsg {
    fn tag(&self) -> &'static str {
        match self {
            AppMsg::Gmp(m) => m.tag(),
            AppMsg::Log(m) => m.tag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_not_a_client_command() {
        assert!(LogCmd::NOOP.is_noop());
        assert!(!LogCmd {
            client: ProcessId(3),
            seq: 0
        }
        .is_noop());
    }

    #[test]
    fn tags_delegate_through_the_envelope() {
        let m = AppMsg::Log(LogMsg::Sync { from: 0 });
        assert_eq!(m.tag(), "log-sync");
        let m = AppMsg::Gmp(Msg::Interrogate);
        assert_eq!(m.tag(), "interrogate");
    }
}
