//! Wire format of the replicated log, and the combined envelope that lets
//! log traffic and membership traffic share one simulated network.

use gmp_core::Msg;
use gmp_sim::Message;
use gmp_types::{ProcessId, Ver};

/// A client command. The log stores command *identities*; `(client, seq)`
/// is unique because each client numbers its own requests. Slot fillers
/// proposed during leader recovery use [`LogCmd::NOOP`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LogCmd {
    /// The issuing client (a process outside the group).
    pub client: ProcessId,
    /// The client's own request counter, starting at 0.
    pub seq: u64,
}

impl LogCmd {
    /// The no-op filler a recovering leader proposes into slots it cannot
    /// otherwise fill (classic multipaxos gap handling). Uses the same
    /// sentinel id space as the membership layer's "unassigned" marker.
    pub const NOOP: LogCmd = LogCmd {
        client: ProcessId(u32::MAX),
        seq: 0,
    };

    /// True for the recovery filler.
    pub fn is_noop(&self) -> bool {
        *self == LogCmd::NOOP
    }
}

/// Replicated-log protocol messages.
///
/// Ballots are GMP view versions: monotone, agreed, and free — the
/// membership layer already paid for the agreement. The steady state is
/// phase-2-only multipaxos (`Accept`/`AcceptOk`/`Decide`); phase 1 exists
/// as the `Recover` round a new leader runs after a view install.
#[derive(Clone, Debug)]
pub enum LogMsg {
    /// Client → leader: append `cmd` to the log.
    Request {
        /// The command to append.
        cmd: LogCmd,
    },
    /// Replica → client: this replica is not the leader; try `leader`.
    Redirect {
        /// The replica's current leader belief (its view's `Mgr`).
        leader: ProcessId,
    },
    /// Leader → client: the command with this `seq` committed into `slot`.
    Reply {
        /// Echo of the client's request counter.
        seq: u64,
        /// The log position the command occupies.
        slot: u64,
    },
    /// Leader → acceptors: accept `cmd` in `slot` at `ballot`.
    Accept {
        /// The proposing leader's ballot (its view version).
        ballot: Ver,
        /// Log position.
        slot: u64,
        /// Proposed command.
        cmd: LogCmd,
    },
    /// Acceptor → leader: accepted.
    AcceptOk {
        /// Echo of the accept's ballot.
        ballot: Ver,
        /// Echo of the accept's slot.
        slot: u64,
    },
    /// Leader → replicas: `slot` is decided (majority-accepted).
    Decide {
        /// Ballot under which the slot was decided.
        ballot: Ver,
        /// Log position.
        slot: u64,
        /// The decided command.
        cmd: LogCmd,
    },
    /// New leader → view members: report every accepted entry at slot ≥
    /// `from` (the leader's committed length), so in-flight proposals of
    /// the dead leader can be re-proposed at `ballot`.
    Recover {
        /// The new leader's ballot.
        ballot: Ver,
        /// First slot of interest.
        from: u64,
    },
    /// Acceptor → new leader: accepted entries at slot ≥ the recover's
    /// `from`, as `(slot, ballot, cmd)`.
    RecoverOk {
        /// Echo of the recover's ballot.
        ballot: Ver,
        /// This acceptor's accepted entries above the requested floor.
        entries: Vec<(u64, Ver, LogCmd)>,
    },
    /// Freshly welcomed member → leader: send me the committed prefix from
    /// `from` (state transfer for joiners).
    Sync {
        /// First slot the joiner is missing (its committed length).
        from: u64,
    },
    /// Leader → joiner: the committed entries from `from`, in slot order,
    /// as `(deciding ballot, cmd)`.
    SyncOk {
        /// Echo of the sync's `from`.
        from: u64,
        /// Committed suffix starting at `from`.
        entries: Vec<(Ver, LogCmd)>,
    },
}

impl Message for LogMsg {
    fn tag(&self) -> &'static str {
        match self {
            LogMsg::Request { .. } => "log-request",
            LogMsg::Redirect { .. } => "log-redirect",
            LogMsg::Reply { .. } => "log-reply",
            LogMsg::Accept { .. } => "log-accept",
            LogMsg::AcceptOk { .. } => "log-accept-ok",
            LogMsg::Decide { .. } => "log-decide",
            LogMsg::Recover { .. } => "log-recover",
            LogMsg::RecoverOk { .. } => "log-recover-ok",
            LogMsg::Sync { .. } => "log-sync",
            LogMsg::SyncOk { .. } => "log-sync-ok",
        }
    }
}

/// The combined wire type of a log-bearing cluster: membership protocol
/// messages and log messages share one network, one trace and one stats
/// table (log tags are `log-*`-prefixed; [`gmp_core::PROTOCOL_TAGS`] keeps
/// counting only the membership side).
#[derive(Clone, Debug)]
pub enum AppMsg {
    /// A membership-protocol message, delivered to the embedded [`Member`]
    /// (see [`Ctx::embedded`](gmp_sim::Ctx::embedded)).
    ///
    /// [`Member`]: gmp_core::Member
    Gmp(Msg),
    /// A replicated-log message, delivered to the [`ReplicatedLog`]
    /// (replicas) or the [`Client`](crate::Client).
    ///
    /// [`ReplicatedLog`]: crate::ReplicatedLog
    Log(LogMsg),
}

impl Message for AppMsg {
    fn tag(&self) -> &'static str {
        match self {
            AppMsg::Gmp(m) => m.tag(),
            AppMsg::Log(m) => m.tag(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_not_a_client_command() {
        assert!(LogCmd::NOOP.is_noop());
        assert!(!LogCmd {
            client: ProcessId(3),
            seq: 0
        }
        .is_noop());
    }

    #[test]
    fn tags_delegate_through_the_envelope() {
        let m = AppMsg::Log(LogMsg::Sync { from: 0 });
        assert_eq!(m.tag(), "log-sync");
        let m = AppMsg::Gmp(Msg::Interrogate);
        assert_eq!(m.tag(), "interrogate");
    }
}
