//! The composite simulator node: a [`Member`] and a [`ReplicatedLog`] in
//! one process, or a [`Client`] outside the group.
//!
//! The replica hosts the membership state machine through
//! [`Ctx::embedded`]: membership messages and timers are handed to the
//! embedded [`Member`] unchanged (its sends come back out wrapped in
//! [`AppMsg::Gmp`]), and after *every* member interaction the replica
//! pumps the drained [`MemberEvent`](gmp_core::MemberEvent)s into the log and flushes the log's
//! outbox onto the wire. Timer tags route by value: the membership layer
//! owns tags 1–3, the client loop uses its own, and [`LOG_FLUSH`] is the
//! log's batch-coalescing flush — the log never sets it itself, it raises
//! a request the node converts into a 1-tick timer here.

use crate::client::Client;
use crate::msg::{AppMsg, LogMsg};
use crate::replica::{ReplicatedLog, LOG_FLUSH};
use gmp_core::{Member, Msg};
use gmp_sim::{Ctx, Node};
use gmp_types::ProcessId;

/// A group member with a replicated log riding on its views.
pub struct Replica {
    /// The membership layer.
    pub member: Member,
    /// The log layer, subscribed to the member's events.
    pub log: ReplicatedLog,
}

impl Replica {
    /// Couples a member (initial or joiner) with a fresh log.
    pub fn new(member: Member, log: ReplicatedLog) -> Self {
        Replica { member, log }
    }

    /// Runs `f` against the embedded member, then pumps its events into
    /// the log and the log's outbox onto the wire.
    fn with_member(
        &mut self,
        ctx: &mut Ctx<'_, AppMsg>,
        f: impl FnOnce(&mut Member, &mut Ctx<'_, Msg>),
    ) {
        let member = &mut self.member;
        ctx.embedded(AppMsg::Gmp, |inner| f(member, inner));
        self.pump(ctx);
    }

    /// Event/outbox pump. Member handlers only ever *push* events, and the
    /// log only ever *consumes* them, so one pass settles everything.
    fn pump(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        let now = ctx.now();
        for ev in self.member.take_events() {
            self.log.on_member_event(ev, now);
        }
        self.drain_log(ctx);
    }

    fn on_log_message(&mut self, ctx: &mut Ctx<'_, AppMsg>, from: ProcessId, msg: LogMsg) {
        self.log.on_message(from, msg, ctx.now());
        self.drain_log(ctx);
    }

    /// Sends the log's outbox and arms the batch flush when asked: the
    /// 1-tick timer is what coalesces every same-tick admission into one
    /// `AcceptBatch`.
    fn drain_log(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        for (to, m) in self.log.take_outbox() {
            ctx.send(to, AppMsg::Log(m));
        }
        if self.log.take_flush_request() {
            ctx.set_timer(1, LOG_FLUSH);
        }
    }
}

/// A process of a log-bearing cluster.
pub enum LogProc {
    /// A group member carrying the log (boxed: the member + log pair is
    /// much larger than the client).
    Replica(Box<Replica>),
    /// A workload client outside the group.
    Client(Client),
}

impl LogProc {
    /// The replica's log, for post-run inspection. Panics on a client.
    pub fn log(&self) -> &ReplicatedLog {
        match self {
            LogProc::Replica(r) => &r.log,
            LogProc::Client(_) => panic!("clients carry no log"),
        }
    }

    /// The replica's member, for post-run inspection. Panics on a client.
    pub fn member(&self) -> &Member {
        match self {
            LogProc::Replica(r) => &r.member,
            LogProc::Client(_) => panic!("clients carry no member"),
        }
    }

    /// The client, for post-run inspection. Panics on a replica.
    pub fn client(&self) -> &Client {
        match self {
            LogProc::Client(c) => c,
            LogProc::Replica(_) => panic!("replicas are not clients"),
        }
    }

    /// True for replicas (members and joiners), false for clients.
    pub fn is_replica(&self) -> bool {
        matches!(self, LogProc::Replica(_))
    }
}

impl Node<AppMsg> for LogProc {
    fn on_start(&mut self, ctx: &mut Ctx<'_, AppMsg>) {
        match self {
            LogProc::Replica(r) => {
                r.log.bind(ctx.id());
                r.with_member(ctx, |m, c| m.on_start(c));
            }
            LogProc::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, AppMsg>, from: ProcessId, msg: AppMsg) {
        match (self, msg) {
            (LogProc::Replica(r), AppMsg::Gmp(m)) => {
                r.with_member(ctx, |mem, c| mem.on_message(c, from, m));
            }
            (LogProc::Replica(r), AppMsg::Log(m)) => r.on_log_message(ctx, from, m),
            (LogProc::Client(c), AppMsg::Log(m)) => c.on_message(ctx, from, m),
            (LogProc::Client(_), AppMsg::Gmp(_)) => {} // stray; clients speak log only
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, AppMsg>, tag: u64) {
        match self {
            // The flush tick is the log's; every other replica timer
            // belongs to the membership layer.
            LogProc::Replica(r) if tag == LOG_FLUSH => {
                r.log.on_flush(ctx.now());
                r.drain_log(ctx);
            }
            LogProc::Replica(r) => r.with_member(ctx, |m, c| m.on_timer(c, tag)),
            LogProc::Client(c) => c.on_timer(ctx, tag),
        }
    }
}
