//! Convenience constructors for log-bearing clusters, mirroring
//! [`gmp_core::ClusterBuilder`].

use crate::client::Client;
use crate::msg::{AppMsg, LogCmd};
use crate::node::{LogProc, Replica};
use crate::replica::ReplicatedLog;
use gmp_core::{Config, JoinConfig, Member};
use gmp_sim::{Builder, Sim};
use gmp_types::{ProcessId, View};

/// Workload and log tuning knobs.
///
/// Like [`Config`], construct via [`Default`] and the chained setters;
/// the struct is `#[non_exhaustive]` so knobs can grow.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct LogConfig {
    /// Client issue interval (closed loop: next request one interval after
    /// the previous acknowledgement at the earliest).
    pub request_every: u64,
    /// Client resend timeout for unacknowledged requests.
    pub retry_after: u64,
    /// Leader pipelining: max concurrently proposed slots before client
    /// commands queue.
    pub max_inflight: usize,
    /// Leader batching: max commands per `AcceptBatch`. 1 selects the
    /// per-slot legacy wire path, bit-identical to the PR-9 baseline.
    pub batch: usize,
    /// Client pipeline window: requests each client keeps in flight.
    /// 1 reproduces the strict closed loop of the unbatched baseline.
    pub window: usize,
    /// Compaction: applied slots of hot state each replica keeps above
    /// its floor (`usize::MAX` disables compaction).
    pub compact_keep: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            request_every: 50,
            retry_after: 300,
            max_inflight: 8,
            batch: 8,
            window: 4,
            compact_keep: 4096,
        }
    }
}

impl LogConfig {
    /// Sets the client issue interval.
    pub fn request_every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "issue interval must be positive");
        self.request_every = interval;
        self
    }

    /// Sets the client resend timeout.
    pub fn retry_after(mut self, timeout: u64) -> Self {
        assert!(timeout > 0, "retry timeout must be positive");
        self.retry_after = timeout;
        self
    }

    /// Sets the leader's in-flight window (pipelining knob).
    pub fn max_inflight(mut self, window: usize) -> Self {
        assert!(window >= 1, "the in-flight window must admit work");
        self.max_inflight = window;
        self
    }

    /// Sets the leader's max batch size (1 = unbatched legacy path).
    pub fn batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "a batch carries at least one command");
        self.batch = batch;
        self
    }

    /// Sets the client pipeline window (1 = strict closed loop).
    pub fn window(mut self, window: usize) -> Self {
        assert!(window >= 1, "the pipeline window must admit work");
        self.window = window;
        self
    }

    /// Sets the compaction keep budget (`usize::MAX` = never compact).
    pub fn compact_keep(mut self, keep: usize) -> Self {
        assert!(keep >= 1, "compaction must keep the working tail");
        self.compact_keep = keep;
        self
    }

    /// The unbatched, uncompacted PR-9 baseline trim: per-slot wire
    /// messages, one request in flight per client, full history retained.
    pub fn unbatched(self) -> Self {
        self.batch(1).window(1).compact_keep(usize::MAX)
    }
}

/// Builds a simulator whose processes are `n` log-bearing replicas
/// (pids `0..n`), then any joiners, then `clients` workload clients.
///
/// ```
/// use gmp_log::LogClusterBuilder;
/// use gmp_types::ProcessId;
///
/// let mut sim = LogClusterBuilder::new(3, 2).seed(7).build();
/// sim.run_until(5_000);
/// assert!(sim.node(ProcessId(0)).log().committed_ops() > 0);
/// ```
pub struct LogClusterBuilder {
    n: usize,
    clients: usize,
    cfg: Config,
    log_cfg: LogConfig,
    joiners: Vec<JoinConfig>,
    sim: Builder,
}

impl LogClusterBuilder {
    /// `n` initial replicas and `clients` clients.
    ///
    /// # Panics
    ///
    /// Panics unless both counts are at least 1.
    pub fn new(n: usize, clients: usize) -> Self {
        assert!(n >= 1, "a group needs at least one member");
        assert!(clients >= 1, "a workload needs at least one client");
        LogClusterBuilder {
            n,
            clients,
            cfg: Config::default(),
            log_cfg: LogConfig::default(),
            joiners: Vec::new(),
            sim: Builder::new(),
        }
    }

    /// Seeds the simulator (shorthand for a custom [`Builder`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim = self.sim.seed(seed);
        self
    }

    /// Replaces the simulator builder wholesale (delays, FIFO mode, …).
    pub fn sim(mut self, builder: Builder) -> Self {
        self.sim = builder;
        self
    }

    /// Replaces the membership configuration shared by every replica.
    pub fn config(mut self, cfg: Config) -> Self {
        assert!(
            cfg.join.is_none() && cfg.observe.is_none(),
            "give joiners via LogClusterBuilder::joiner"
        );
        self.cfg = cfg;
        self
    }

    /// Replaces the workload/log configuration.
    pub fn log_config(mut self, cfg: LogConfig) -> Self {
        self.log_cfg = cfg;
        self
    }

    /// Adds a late-joining replica (§7 join + log state transfer). Joiner
    /// pids follow the initial replicas: the k-th call gets pid `n + k`.
    pub fn joiner(mut self, join: JoinConfig) -> Self {
        self.joiners.push(join);
        self
    }

    /// The pid the next [`joiner`](Self::joiner) call would get.
    pub fn next_joiner_pid(&self) -> ProcessId {
        ProcessId((self.n + self.joiners.len()) as u32)
    }

    /// Builds the simulator with replicas, joiners and clients registered.
    pub fn build(self) -> Sim<AppMsg, LogProc> {
        let initial: View = (0..self.n as u32).map(ProcessId).collect();
        let replicas: Vec<ProcessId> = initial.to_vec();
        let mut sim = self.sim.build();
        let log = || {
            ReplicatedLog::with_tuning(
                self.log_cfg.max_inflight,
                self.log_cfg.batch,
                self.log_cfg.compact_keep,
            )
        };
        for _ in 0..self.n {
            sim.add_node(LogProc::Replica(Box::new(Replica::new(
                Member::new(self.cfg.clone(), initial.clone()),
                log(),
            ))));
        }
        for join in self.joiners.iter() {
            let mut cfg = self.cfg.clone();
            cfg.join = Some(join.clone());
            sim.add_node(LogProc::Replica(Box::new(Replica::new(
                Member::joiner(cfg),
                log(),
            ))));
        }
        for k in 0..self.clients {
            // Stagger first issues so clients don't arrive in lockstep.
            let first_at = self.log_cfg.request_every + 7 * k as u64;
            sim.add_node(LogProc::Client(Client::new(
                replicas.clone(),
                first_at,
                self.log_cfg.request_every,
                self.log_cfg.retry_after,
                self.log_cfg.window,
            )));
        }
        sim
    }
}

/// Shorthand: `n` replicas, `clients` clients, defaults everywhere.
pub fn log_cluster(n: usize, clients: usize, seed: u64) -> Sim<AppMsg, LogProc> {
    LogClusterBuilder::new(n, clients).seed(seed).build()
}

/// True when every log in `logs` is a prefix of the longest one — the
/// safety property E14 gates on: survivors may lag, never diverge.
pub fn prefix_identical<'a>(logs: impl IntoIterator<Item = &'a [LogCmd]>) -> bool {
    let mut logs: Vec<&[LogCmd]> = logs.into_iter().collect();
    logs.sort_by_key(|l| l.len());
    logs.windows(2).all(|w| w[1].starts_with(w[0]))
}

/// Base-aware variant of [`prefix_identical`] for clusters where some
/// replica booted from a snapshot: each log comes as `(base, suffix)`
/// with `suffix[i]` the command of slot `base + i`. Agreement means every
/// pair matches on the slot range both actually hold — lagging and
/// snapshot-trimmed histories are fine, divergence is not.
pub fn logs_agree<'a>(logs: impl IntoIterator<Item = (u64, &'a [LogCmd])>) -> bool {
    let logs: Vec<(u64, &[LogCmd])> = logs.into_iter().collect();
    for (i, &(base_a, a)) in logs.iter().enumerate() {
        for &(base_b, b) in &logs[i + 1..] {
            let lo = base_a.max(base_b);
            let hi = (base_a + a.len() as u64).min(base_b + b.len() as u64);
            if lo >= hi {
                continue; // no overlap to compare
            }
            let sa = &a[(lo - base_a) as usize..(hi - base_a) as usize];
            let sb = &b[(lo - base_b) as usize..(hi - base_b) as usize];
            if sa != sb {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(client: u32, seq: u64) -> LogCmd {
        LogCmd {
            client: ProcessId(client),
            seq,
        }
    }

    #[test]
    fn prefix_check_accepts_lagging_survivors() {
        let a = [cmd(9, 0), cmd(9, 1), cmd(8, 0)];
        let b = [cmd(9, 0), cmd(9, 1)];
        let c: [LogCmd; 0] = [];
        assert!(prefix_identical([&a[..], &b[..], &c[..]]));
    }

    #[test]
    fn prefix_check_rejects_divergence() {
        let a = [cmd(9, 0), cmd(9, 1)];
        let b = [cmd(9, 0), cmd(8, 0)];
        assert!(!prefix_identical([&a[..], &b[..]]));
    }

    #[test]
    fn base_aware_agreement_compares_overlaps_only() {
        let full = [cmd(9, 0), cmd(9, 1), cmd(8, 0), cmd(8, 1)];
        let tail = [cmd(8, 0), cmd(8, 1)];
        // A snapshot-booted replica holding slots [2, 4) agrees…
        assert!(logs_agree([(0, &full[..]), (2, &tail[..])]));
        // …and a diverging tail does not.
        let bad = [cmd(8, 0), cmd(7, 7)];
        assert!(!logs_agree([(0, &full[..]), (2, &bad[..])]));
        // Disjoint ranges have nothing to disagree about.
        assert!(logs_agree([(0, &full[..2]), (3, &tail[..])]));
    }
}
