//! A multipaxos-style replicated log on top of the GMP membership service
//! — the consumer the paper promises: process groups make failure
//! detection *usable*, so use them.
//!
//! The membership layer already solves the hard parts of multipaxos:
//! * **leader election** — the view's `Mgr` is the leader; succession is
//!   the three-phase reconfiguration, not a log-level protocol;
//! * **ballots** — view versions are monotone and agreed, so a ballot is
//!   free; there are no dueling proposers by construction (two leaders
//!   can only be `Mgr`s of different versions, and the higher version's
//!   promise wins);
//! * **reconfiguration** — view installs *are* the configuration changes;
//!   [`MemberEvent`](gmp_core::MemberEvent)s deliver them to the log.
//!
//! What remains is the steady-state phase 2 — per-slot
//! (`Accept`/`AcceptOk`/`Decide`) with batching off, per-range
//! (`AcceptBatch`/`AcceptOkRange`/`DecideBatch`) with batching on — the
//! new-leader recovery round, and joiner state transfer (snapshot + tail
//! once compaction has passed the joiner's prefix) — see
//! [`ReplicatedLog`]. Everything is sans-IO and runs inside [`gmp_sim`]'s
//! deterministic engines, sequential or sharded. Batch size, client
//! pipeline window and the compaction budget are [`LogConfig`] knobs;
//! `LogConfig::default()` is the batched trim and
//! [`LogConfig::unbatched`](cluster::LogConfig::unbatched) restores the
//! PR-9 baseline bit-for-bit.
//!
//! # Quickstart
//!
//! ```
//! use gmp_log::{log_cluster, prefix_identical};
//! use gmp_types::ProcessId;
//!
//! // Five replicas, three clients; crash the leader mid-run.
//! let mut sim = log_cluster(5, 3, 7);
//! sim.crash_at(ProcessId(0), 2_000);
//! sim.run_until(20_000);
//!
//! // The survivors agreed on a log and made progress past the failover.
//! let logs: Vec<&[_]> = sim
//!     .living()
//!     .into_iter()
//!     .filter(|&p| p != ProcessId(0) && ProcessId(5) > p)
//!     .map(|p| sim.node(p).log().committed())
//!     .collect();
//! assert!(prefix_identical(logs.iter().copied()));
//! assert!(sim.node(ProcessId(1)).log().committed_ops() > 0);
//! ```

pub mod client;
pub mod cluster;
pub mod msg;
pub mod node;
pub mod replica;

pub use client::Client;
pub use cluster::{log_cluster, logs_agree, prefix_identical, LogClusterBuilder, LogConfig};
pub use msg::{AppMsg, LogCmd, LogMsg, Snapshot};
pub use node::{LogProc, Replica};
pub use replica::{ReplicatedLog, LOG_FLUSH};
