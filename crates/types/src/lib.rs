//! Shared vocabulary for the Ricciardi–Birman group-membership reproduction.
//!
//! This crate defines the domain types used by every other crate in the
//! workspace: process identifiers, membership operations, seniority-ordered
//! [`View`]s with the paper's rank function (§4.2), the `next(p)` bookkeeping
//! entries of §4.4, and the semantic trace [`Note`]s that protocols emit so
//! that runs can be checked against the GMP specification afterwards.
//!
//! # Example
//!
//! ```
//! use gmp_types::{ProcessId, View};
//!
//! let view = View::new(vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
//! // Rank is seniority-based: the most senior member has rank n (§4.2).
//! assert_eq!(view.rank(ProcessId(0)), Some(3));
//! assert_eq!(view.rank(ProcessId(2)), Some(1));
//! assert_eq!(view.majority(), 2);
//! ```

#![deny(missing_docs)]

pub mod arena;
pub mod note;
pub mod view;

pub use arena::{Arena, Gen, PeerIdx, PeerRef, PeerRoster, PeerSlot};
pub use note::{FaultySource, Note, QuitReason};
pub use view::View;

use std::fmt;

/// Identifier of a process instance.
///
/// Following §2.1, a "recovered" process is a *new and different* process
/// instance, so identifiers are never reused: a host that crashes and
/// restarts joins the group again under a fresh `ProcessId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Index form, usable to address per-process arrays (e.g. vector clocks).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Local view version number (the `x` in `Memb_p^x` / `Sys^x`).
///
/// Version 0 is the initial, commonly-known view (GMP-0); each committed
/// membership operation increments it by exactly one (§7, Add/Remove).
pub type Ver = u64;

/// The kind of a membership change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Exclusion of a perceived-faulty member (§3).
    Remove,
    /// Addition of a joining process (§7).
    Add,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Remove => f.write_str("remove"),
            OpKind::Add => f.write_str("add"),
        }
    }
}

/// A membership operation `op(proc-id)` as carried by invitation, commit and
/// reconfiguration messages (§7.1 Final Algorithm).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Op {
    /// Whether the target is being added or removed.
    pub kind: OpKind,
    /// The process being added or removed.
    pub target: ProcessId,
}

impl Op {
    /// Convenience constructor for `remove(target)`.
    pub fn remove(target: ProcessId) -> Self {
        Op {
            kind: OpKind::Remove,
            target,
        }
    }

    /// Convenience constructor for `add(target)`.
    pub fn add(target: ProcessId) -> Self {
        Op {
            kind: OpKind::Add,
            target,
        }
    }

    /// True when this operation removes `p`.
    pub fn removes(&self, p: ProcessId) -> bool {
        self.kind == OpKind::Remove && self.target == p
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.target)
    }
}

/// One element of a process's `next(p)` list (§4.4): how the process expects
/// its local view to change next, on whose command, and which version would
/// result.
///
/// A *placeholder* entry `(? : r : ?)` — recorded when responding to `r`'s
/// interrogation — has `ops == None` and `ver == None`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NextEntry {
    /// The expected operation(s), or `None` for the `?` of a placeholder.
    ///
    /// Reconfiguration proposals may carry more than one operation
    /// ("the reconfiguration proposal RL_r may be more than just a single
    /// process", §5 Remarks), hence a list.
    pub ops: Option<Vec<Op>>,
    /// The coordinator the commit is expected from (`Mgr` or a reconfigurer).
    pub coord: ProcessId,
    /// The version the change would install, or `None` for a placeholder.
    pub ver: Option<Ver>,
}

impl NextEntry {
    /// A concrete expectation `(ops : coord : ver)`.
    pub fn concrete(ops: Vec<Op>, coord: ProcessId, ver: Ver) -> Self {
        NextEntry {
            ops: Some(ops),
            coord,
            ver: Some(ver),
        }
    }

    /// The placeholder `(? : coord : ?)` appended when responding to an
    /// interrogation (§4.4).
    pub fn placeholder(coord: ProcessId) -> Self {
        NextEntry {
            ops: None,
            coord,
            ver: None,
        }
    }

    /// True if this entry is a `(? : r : ?)` placeholder.
    pub fn is_placeholder(&self) -> bool {
        self.ops.is_none()
    }
}

impl fmt::Display for NextEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.ops, self.ver) {
            (Some(ops), Some(v)) => {
                write!(f, "(")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{op}")?;
                }
                write!(f, " : {} : {v})", self.coord)
            }
            _ => write!(f, "(? : {} : ?)", self.coord),
        }
    }
}

/// Majority cardinality `μ(S) = ⌊|S|/2⌋ + 1` of a set of size `n` (§4.3, §7).
#[inline]
pub fn majority_of(n: usize) -> usize {
    n / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_index() {
        let p = ProcessId(7);
        assert_eq!(p.to_string(), "p7");
        assert_eq!(p.index(), 7);
        assert_eq!(ProcessId::from(3u32), ProcessId(3));
    }

    #[test]
    fn op_constructors() {
        let r = Op::remove(ProcessId(1));
        assert_eq!(r.kind, OpKind::Remove);
        assert!(r.removes(ProcessId(1)));
        assert!(!r.removes(ProcessId(2)));
        let a = Op::add(ProcessId(2));
        assert_eq!(a.kind, OpKind::Add);
        assert!(!a.removes(ProcessId(2)));
        assert_eq!(r.to_string(), "remove(p1)");
        assert_eq!(a.to_string(), "add(p2)");
    }

    #[test]
    fn next_entry_placeholder() {
        let ph = NextEntry::placeholder(ProcessId(4));
        assert!(ph.is_placeholder());
        assert_eq!(ph.to_string(), "(? : p4 : ?)");
        let c = NextEntry::concrete(vec![Op::remove(ProcessId(1))], ProcessId(0), 3);
        assert!(!c.is_placeholder());
        assert_eq!(c.to_string(), "(remove(p1) : p0 : 3)");
    }

    /// Fact 7.1: |S| even ⇒ 2μ(S) = |S| + 2.
    #[test]
    fn fact_7_1() {
        for n in (2..100).step_by(2) {
            assert_eq!(2 * majority_of(n), n + 2);
        }
    }

    /// Fact 7.2: |S| odd ⇒ 2μ(S) = |S| + 1.
    #[test]
    fn fact_7_2() {
        for n in (1..100).step_by(2) {
            assert_eq!(2 * majority_of(n), n + 1);
        }
    }

    /// Proposition 7.1: |S'| = |S|+1 ⇒ μ(S) + μ(S') > |S'|, i.e. majority
    /// subsets of neighbouring views intersect.
    #[test]
    fn prop_7_1_neighbouring_majorities_intersect() {
        for n in 1..200 {
            assert!(majority_of(n) + majority_of(n + 1) > n + 1, "n = {n}");
        }
    }
}
