//! Semantic trace annotations emitted by protocol implementations.
//!
//! The GMP specification (§2.3) is stated over *events* in process histories:
//! `faulty_p(q)`, `remove_p(q)`, view installations, quits. Protocols running
//! in the simulator emit these as [`Note`]s; the `gmp-props` crate then
//! checks GMP-0…GMP-5 against the recorded run.

use crate::{Op, ProcessId, Ver};
use std::fmt;

/// A semantic event in a process history, recorded into the simulation trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Note {
    /// The event `faulty_p(q)`: this process now believes `suspect` faulty
    /// (§2.2, sources F1 observation / F2 gossip).
    Faulty {
        /// The process now believed faulty.
        suspect: ProcessId,
        /// Which mechanism produced the belief.
        source: FaultySource,
    },
    /// The analogue of `faulty` for recoveries: this process has learned
    /// that `id` is operational / joining (§7).
    Operating {
        /// The process now believed operational.
        id: ProcessId,
    },
    /// A membership operation was applied to the local view, producing
    /// version `ver` (the events `remove_p(q)` / `add_p(q)`).
    OpApplied {
        /// The operation applied.
        op: Op,
        /// The resulting local version.
        ver: Ver,
    },
    /// A new local view was installed (after applying all operations of a
    /// commit). `members` is seniority-ordered.
    ViewInstalled {
        /// The version of the installed view.
        ver: Ver,
        /// Seniority-ordered membership of the view.
        members: Vec<ProcessId>,
        /// Whom this process considers coordinator in this view.
        mgr: ProcessId,
    },
    /// This process assumed the `Mgr` role (initially, or at the end of a
    /// successful reconfiguration).
    BecameMgr {
        /// The version at which the role was assumed.
        ver: Ver,
    },
    /// This process initiated the three-phase reconfiguration algorithm
    /// (its `HiFaulty` set became full, §4.2).
    ReconfStarted {
        /// The initiator's local version at initiation.
        from_ver: Ver,
    },
    /// A reconfiguration initiator or coordinator aborted and executed
    /// `quit` (e.g. it failed to assemble a majority, §4.3).
    Quit {
        /// Human-readable reason, for diagnostics.
        reason: QuitReason,
    },
    /// An inbound message was discarded by the isolation rule S1
    /// ("once p believes q faulty, p never receives messages from q again").
    Isolated {
        /// The sender whose message was discarded.
        from: ProcessId,
    },
    /// `Mgr` queued a join request (§7).
    JoinRequested {
        /// The process asking to join.
        joiner: ProcessId,
    },
    /// An external observer (§8 hierarchical service) learned of a view.
    /// Distinct from [`Note::ViewInstalled`]: observers are *not* members,
    /// so their knowledge does not participate in the GMP clauses.
    ObservedView {
        /// The version observed.
        ver: Ver,
        /// Seniority-ordered membership observed.
        members: Vec<ProcessId>,
        /// The coordinator according to the notifying member.
        mgr: ProcessId,
    },
    /// Free-form annotation for experiments.
    Custom(String),
}

/// Why a process came to believe another faulty (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultySource {
    /// F1: direct observation (timeout).
    Observation,
    /// F2: gossip — learned from a message sent by a process that already
    /// believed the suspect faulty.
    Gossip,
    /// Inferred from an interrogation: every process senior to the initiator
    /// is in `HiFaulty(initiator)` (§4.5).
    HiFaultyInference,
    /// Injected by a test or experiment (models spurious detection).
    Injected,
}

/// Why a process executed `quit`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuitReason {
    /// The process learned it is being excluded from the group (it was the
    /// target of a removal, appeared in a contingent faulty set, or received
    /// an interrogation from a lower-ranked initiator).
    Excluded,
    /// A coordinator failed to gather a majority of responses (§4.3: "An
    /// initiator that is unable to obtain either majority will execute
    /// quit").
    NoMajority {
        /// Number of responses assembled, counting the coordinator itself.
        got: usize,
        /// The majority threshold that was required.
        needed: usize,
    },
    /// Other (diagnostics).
    Other(String),
}

impl fmt::Display for Note {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Note::Faulty { suspect, source } => write!(f, "faulty({suspect}) [{source:?}]"),
            Note::Operating { id } => write!(f, "operating({id})"),
            Note::OpApplied { op, ver } => write!(f, "applied {op} -> v{ver}"),
            Note::ViewInstalled { ver, members, mgr } => {
                write!(f, "installed v{ver} mgr={mgr} members=[")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "]")
            }
            Note::BecameMgr { ver } => write!(f, "became Mgr at v{ver}"),
            Note::ReconfStarted { from_ver } => {
                write!(f, "reconfiguration started from v{from_ver}")
            }
            Note::Quit { reason } => write!(f, "quit: {reason:?}"),
            Note::Isolated { from } => write!(f, "isolated message from {from}"),
            Note::JoinRequested { joiner } => write!(f, "join requested by {joiner}"),
            Note::ObservedView { ver, members, mgr } => {
                write!(f, "observed v{ver} mgr={mgr} members=[")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "]")
            }
            Note::Custom(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_display_nonempty() {
        let notes = [
            Note::Faulty {
                suspect: ProcessId(1),
                source: FaultySource::Observation,
            },
            Note::Operating { id: ProcessId(2) },
            Note::OpApplied {
                op: Op::remove(ProcessId(1)),
                ver: 3,
            },
            Note::ViewInstalled {
                ver: 1,
                members: vec![ProcessId(0)],
                mgr: ProcessId(0),
            },
            Note::BecameMgr { ver: 2 },
            Note::ReconfStarted { from_ver: 1 },
            Note::Quit {
                reason: QuitReason::Excluded,
            },
            Note::Quit {
                reason: QuitReason::NoMajority { got: 1, needed: 3 },
            },
            Note::Isolated { from: ProcessId(9) },
            Note::JoinRequested {
                joiner: ProcessId(8),
            },
            Note::Custom("hello".into()),
        ];
        for n in &notes {
            assert!(!n.to_string().is_empty());
        }
    }
}
