//! Index-addressed per-peer state: dense slot arenas behind a
//! generation-stamped roster.
//!
//! The protocol keeps several pieces of *hot* per-peer bookkeeping —
//! heartbeat leases, digest-epoch marks, GMP-5 report throttles — that are
//! touched on every tick and every message receipt. Keying them by
//! [`ProcessId`] in ordered maps costs a tree walk per
//! touch and scatters each peer's state across the heap. This module
//! flattens that state into dense arrays:
//!
//! * a [`PeerRoster`] resolves a `ProcessId` to a dense [`PeerIdx`] once
//!   (per message, or per view install), reusing tombstoned slots of
//!   excluded members for newcomers;
//! * any number of [`Arena`]s — one per kind of per-peer state — are then
//!   addressed by that index in O(1), no hashing and no tree walk.
//!
//! # Generations make slot reuse safe
//!
//! Because an excluded member's slot is recycled for the next joiner, a
//! bare index could smuggle the dead peer's state into the newcomer's
//! lap — precisely the "stale lease resurfaces as a suspicion" hazard.
//! Every slot therefore carries a [`Gen`]eration that is bumped on reuse,
//! and every handed-out handle is a [`PeerRef`] embedding the generation
//! it was resolved under. An [`Arena`] access checks the generation, so a
//! handle can only ever touch state written under its *own* occupant:
//! the newcomer never inherits the dead peer's leftovers, and a retired
//! handle can never shadow the newcomer's state. Cross-occupant aliasing
//! is unrepresentable rather than merely unlikely.
//!
//! # Example
//!
//! ```
//! use gmp_types::{Arena, PeerRoster, ProcessId};
//!
//! let mut roster = PeerRoster::new();
//! let mut leases: Arena<u64> = Arena::new();
//!
//! let p1 = roster.insert(ProcessId(1));
//! leases.set(p1, 400);
//! assert_eq!(leases.get(p1), Some(&400));
//!
//! // Exclude p1; a joiner reuses the slot under a fresh generation.
//! roster.remove(ProcessId(1));
//! let p9 = roster.insert(ProcessId(9));
//! assert_eq!(p9.idx(), p1.idx(), "slot is recycled");
//!
//! // The dead peer's lease cannot leak into the newcomer's state,
//! // and once the newcomer writes, the retired handle sees nothing.
//! assert_eq!(leases.get(p9), None, "fresh occupant starts empty");
//! leases.set(p9, 900);
//! assert_eq!(leases.get(p1), None, "retired handle never aliases");
//! ```

use crate::ProcessId;

/// Dense index of a peer's slot in a [`PeerRoster`] (and in every [`Arena`]
/// that shares its index space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerIdx(u32);

impl PeerIdx {
    /// The raw array offset.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Generation of a roster slot, bumped each time the slot is recycled for a
/// new occupant. See the [module docs](self) for why this exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gen(u32);

/// A generation-stamped handle to a peer's slot: the pair (slot, occupant).
///
/// A `PeerRef` resolved while some peer occupied a slot never aliases the
/// slot's later occupants — arena accesses through it fail closed once the
/// roster recycles the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerRef {
    idx: PeerIdx,
    gen: Gen,
}

impl PeerRef {
    /// The dense slot index.
    #[inline]
    pub fn idx(self) -> PeerIdx {
        self.idx
    }

    /// The generation this handle was resolved under.
    #[inline]
    pub fn gen(self) -> Gen {
        self.gen
    }
}

#[derive(Clone, Debug)]
struct RosterSlot {
    pid: ProcessId,
    gen: Gen,
    live: bool,
}

/// The `ProcessId → PeerIdx` remap: assigns each tracked peer a dense slot,
/// tombstones slots of removed peers, and recycles tombstones (bumping the
/// generation) for later insertions.
///
/// Lookup by id is a direct array index (`by_pid[pid]`), not a search;
/// iteration yields live peers in ascending-`ProcessId` order so callers
/// that expose sorted views (detector `tracked()`, GMP-5 report sets) stay
/// byte-identical to their former `BTreeMap`-backed selves.
#[derive(Clone, Debug, Default)]
pub struct PeerRoster {
    /// `pid.index() → slot`, grown on demand. Dense in practice: ids are
    /// small (initial members plus joiners), never `u32::MAX` (the
    /// pre-start sentinel).
    by_pid: Vec<Option<PeerIdx>>,
    slots: Vec<RosterSlot>,
    free: Vec<PeerIdx>,
}

impl PeerRoster {
    /// An empty roster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) peers.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no peer is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + tombstoned) — the index space an
    /// [`Arena`] sharing this roster must cover.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Registers `pid`, returning its handle. Idempotent for an already-live
    /// peer; a tombstoned slot is recycled under a bumped generation.
    pub fn insert(&mut self, pid: ProcessId) -> PeerRef {
        debug_assert_ne!(pid.0, u32::MAX, "the pre-start sentinel has no slot");
        if let Some(r) = self.resolve(pid) {
            return r;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx.index()];
                slot.pid = pid;
                // Wrapping: a slot recycled `u32::MAX + 1` times returns to
                // generation 0. Staleness checks are exact equality (plus a
                // modular ordering in `Arena::set`), so wraparound only
                // matters to a handle held across 2^32 recycles of one slot
                // — out of contract by a factor of billions (recycles are
                // bounded by view changes).
                slot.gen = Gen(slot.gen.0.wrapping_add(1));
                slot.live = true;
                idx
            }
            None => {
                let idx = PeerIdx(self.slots.len() as u32);
                self.slots.push(RosterSlot {
                    pid,
                    gen: Gen(0),
                    live: true,
                });
                idx
            }
        };
        if self.by_pid.len() <= pid.index() {
            self.by_pid.resize(pid.index() + 1, None);
        }
        self.by_pid[pid.index()] = Some(idx);
        PeerRef {
            idx,
            gen: self.slots[idx.index()].gen,
        }
    }

    /// Tombstones `pid`'s slot for recycling. Returns the retired handle,
    /// or `None` if `pid` was not live.
    pub fn remove(&mut self, pid: ProcessId) -> Option<PeerRef> {
        let r = self.resolve(pid)?;
        self.slots[r.idx.index()].live = false;
        self.by_pid[pid.index()] = None;
        self.free.push(r.idx);
        Some(r)
    }

    /// The current handle for `pid`, or `None` if it is not live.
    #[inline]
    pub fn resolve(&self, pid: ProcessId) -> Option<PeerRef> {
        let idx = (*self.by_pid.get(pid.index())?)?;
        let slot = &self.slots[idx.index()];
        debug_assert!(slot.live && slot.pid == pid);
        Some(PeerRef { idx, gen: slot.gen })
    }

    /// True when `pid` is live.
    #[inline]
    pub fn contains(&self, pid: ProcessId) -> bool {
        self.resolve(pid).is_some()
    }

    /// The id occupying `r`'s slot — `None` if the slot has been recycled
    /// or tombstoned since `r` was resolved.
    pub fn pid_of(&self, r: PeerRef) -> Option<ProcessId> {
        let slot = self.slots.get(r.idx.index())?;
        (slot.live && slot.gen == r.gen).then_some(slot.pid)
    }

    /// Test-only: pins a live slot's generation, so wraparound tests reach
    /// the `u32::MAX` boundary without four billion recycles.
    #[cfg(test)]
    fn force_gen(&mut self, pid: ProcessId, gen: Gen) {
        let idx = self.by_pid[pid.index()].expect("force_gen targets a live peer");
        self.slots[idx.index()].gen = gen;
    }

    /// Live peers in ascending-`ProcessId` order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, PeerRef)> + '_ {
        self.by_pid.iter().enumerate().filter_map(|(pid, idx)| {
            let idx = (*idx)?;
            let slot = &self.slots[idx.index()];
            debug_assert!(slot.live && slot.pid.index() == pid);
            Some((slot.pid, PeerRef { idx, gen: slot.gen }))
        })
    }
}

#[derive(Clone, Debug)]
struct PeerSlotInner<T> {
    gen: Gen,
    value: T,
}

/// One occupied arena slot: the stored value stamped with the occupant
/// generation it belongs to.
#[derive(Clone, Debug)]
pub struct PeerSlot<T> {
    inner: PeerSlotInner<T>,
}

impl<T> PeerSlot<T> {
    /// The stored value.
    pub fn value(&self) -> &T {
        &self.inner.value
    }

    /// The generation the value was written under.
    pub fn gen(&self) -> Gen {
        self.inner.gen
    }
}

/// Dense per-peer storage addressed by [`PeerRef`]s from a shared
/// [`PeerRoster`].
///
/// Reads and writes are O(1) array accesses guarded by a generation check:
/// a handle that predates the slot's current occupant reads `None` and its
/// writes can never shadow the occupant's state. See the
/// [module docs](self) for the full contract and an example.
#[derive(Clone, Debug, Default)]
pub struct Arena<T> {
    slots: Vec<Option<PeerSlotInner<T>>>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { slots: Vec::new() }
    }

    /// The value stored for `r`'s occupant, if any.
    #[inline]
    pub fn get(&self, r: PeerRef) -> Option<&T> {
        match self.slots.get(r.idx.index()) {
            Some(Some(s)) if s.gen == r.gen => Some(&s.value),
            _ => None,
        }
    }

    /// Mutable access to the value stored for `r`'s occupant, if any.
    #[inline]
    pub fn get_mut(&mut self, r: PeerRef) -> Option<&mut T> {
        match self.slots.get_mut(r.idx.index()) {
            Some(Some(s)) if s.gen == r.gen => Some(&mut s.value),
            _ => None,
        }
    }

    /// Stores `value` for `r`'s occupant, replacing whatever the slot held
    /// (the previous occupant's leftovers included).
    pub fn set(&mut self, r: PeerRef, value: T) {
        if self.slots.len() <= r.idx.index() {
            self.slots.resize_with(r.idx.index() + 1, || None);
        }
        let slot = &mut self.slots[r.idx.index()];
        // Modular (serial-number) ordering, so the guard survives generation
        // wraparound: `r` counts as current-or-newer iff it is at most 2^31
        // recycles ahead of what the slot holds.
        debug_assert!(
            slot.as_ref()
                .is_none_or(|s| (r.gen.0.wrapping_sub(s.gen.0) as i32) >= 0),
            "write through a stale PeerRef would shadow a newer occupant"
        );
        *slot = Some(PeerSlotInner { gen: r.gen, value });
    }

    /// Mutable access for `r`'s occupant, inserting `T::default()` first if
    /// the slot is empty or holds a previous occupant's value.
    pub fn entry(&mut self, r: PeerRef) -> &mut T
    where
        T: Default,
    {
        let fresh = match self.slots.get(r.idx.index()) {
            Some(Some(s)) => s.gen != r.gen,
            _ => true,
        };
        if fresh {
            self.set(r, T::default());
        }
        &mut self.slots[r.idx.index()]
            .as_mut()
            .expect("just written")
            .value
    }

    /// Removes and returns the value stored for `r`'s occupant, if any.
    pub fn remove(&mut self, r: PeerRef) -> Option<T> {
        let slot = self.slots.get_mut(r.idx.index())?;
        if slot.as_ref().is_some_and(|s| s.gen == r.gen) {
            slot.take().map(|s| s.value)
        } else {
            None
        }
    }

    /// Drops every stored value.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_returns_the_inserted_handle() {
        let mut roster = PeerRoster::new();
        let r = roster.insert(ProcessId(3));
        assert_eq!(roster.resolve(ProcessId(3)), Some(r));
        assert!(roster.contains(ProcessId(3)));
        assert_eq!(roster.pid_of(r), Some(ProcessId(3)));
        assert_eq!(roster.len(), 1);
    }

    #[test]
    fn insert_is_idempotent_for_a_live_peer() {
        let mut roster = PeerRoster::new();
        let a = roster.insert(ProcessId(5));
        let b = roster.insert(ProcessId(5));
        assert_eq!(a, b);
        assert_eq!(roster.len(), 1);
    }

    #[test]
    fn remove_tombstones_and_insert_recycles_with_a_new_generation() {
        let mut roster = PeerRoster::new();
        let p1 = roster.insert(ProcessId(1));
        let p2 = roster.insert(ProcessId(2));
        assert_eq!(roster.remove(ProcessId(1)), Some(p1));
        assert!(!roster.contains(ProcessId(1)));
        assert_eq!(roster.len(), 1);

        let p9 = roster.insert(ProcessId(9));
        assert_eq!(p9.idx(), p1.idx(), "tombstoned slot is reused");
        assert_ne!(p9.gen(), p1.gen(), "reuse bumps the generation");
        assert_eq!(roster.pid_of(p1), None, "stale handle resolves nothing");
        assert_eq!(roster.pid_of(p9), Some(ProcessId(9)));
        assert_eq!(roster.capacity(), 2);
        let _ = p2;
    }

    #[test]
    fn removing_an_unknown_peer_is_a_noop() {
        let mut roster = PeerRoster::new();
        roster.insert(ProcessId(1));
        assert_eq!(roster.remove(ProcessId(7)), None);
        assert_eq!(roster.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_by_process_id() {
        let mut roster = PeerRoster::new();
        for pid in [9u32, 2, 5, 0] {
            roster.insert(ProcessId(pid));
        }
        roster.remove(ProcessId(5));
        let pids: Vec<u32> = roster.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pids, vec![0, 2, 9]);
    }

    #[test]
    fn arena_reads_are_generation_checked() {
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        let p1 = roster.insert(ProcessId(1));
        arena.set(p1, 10);
        assert_eq!(arena.get(p1), Some(&10));

        roster.remove(ProcessId(1));
        let p9 = roster.insert(ProcessId(9));
        assert_eq!(arena.get(p9), None, "new occupant sees no leftovers");

        arena.set(p9, 20);
        assert_eq!(arena.get(p9), Some(&20));
        assert_eq!(arena.get(p1), None, "retired handle never aliases");
    }

    #[test]
    fn entry_resets_a_previous_occupants_value() {
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        let p1 = roster.insert(ProcessId(1));
        *arena.entry(p1) = 99;
        roster.remove(ProcessId(1));
        let p9 = roster.insert(ProcessId(9));
        assert_eq!(*arena.entry(p9), 0, "entry defaults, never inherits");
        *arena.entry(p9) += 1;
        assert_eq!(arena.get(p9), Some(&1));
    }

    #[test]
    fn remove_only_takes_the_matching_generation() {
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        let p1 = roster.insert(ProcessId(1));
        arena.set(p1, 7);
        roster.remove(ProcessId(1));
        let p9 = roster.insert(ProcessId(9));
        arena.set(p9, 8);
        assert_eq!(arena.remove(p1), None, "stale remove cannot evict");
        assert_eq!(arena.remove(p9), Some(8));
        assert_eq!(arena.remove(p9), None);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        let p = roster.insert(ProcessId(2));
        arena.set(p, 1);
        *arena.get_mut(p).unwrap() += 5;
        assert_eq!(arena.get(p), Some(&6));
        arena.clear();
        assert_eq!(arena.get(p), None);
    }

    #[test]
    fn generation_wraps_around_without_panicking() {
        let mut roster = PeerRoster::new();
        roster.insert(ProcessId(1));
        roster.force_gen(ProcessId(1), Gen(u32::MAX));
        let last = roster.resolve(ProcessId(1)).unwrap();
        assert_eq!(last.gen(), Gen(u32::MAX));

        // Recycling the maxed-out slot wraps the generation to 0 rather
        // than overflowing.
        roster.remove(ProcessId(1));
        let wrapped = roster.insert(ProcessId(2));
        assert_eq!(wrapped.idx(), last.idx(), "slot is recycled");
        assert_eq!(wrapped.gen(), Gen(0), "generation wraps to zero");
        assert_eq!(roster.pid_of(wrapped), Some(ProcessId(2)));
    }

    #[test]
    fn stale_handles_from_before_the_wrap_are_rejected() {
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        roster.insert(ProcessId(1));
        roster.force_gen(ProcessId(1), Gen(u32::MAX));
        let pre_wrap = roster.resolve(ProcessId(1)).unwrap();
        arena.set(pre_wrap, 10);
        assert_eq!(arena.get(pre_wrap), Some(&10));

        roster.remove(ProcessId(1));
        let post_wrap = roster.insert(ProcessId(2));
        assert_eq!(post_wrap.gen(), Gen(0));

        // The pre-wrap handle fails closed everywhere: the roster no longer
        // resolves it, and the arena neither reads, mutates, nor evicts
        // through it.
        assert_eq!(
            roster.pid_of(pre_wrap),
            None,
            "stale handle resolves nothing"
        );
        assert_eq!(arena.get(post_wrap), None, "new occupant sees no leftovers");
        arena.set(post_wrap, 20);
        assert_eq!(arena.get(pre_wrap), None, "pre-wrap read rejected");
        assert!(arena.get_mut(pre_wrap).is_none(), "pre-wrap write rejected");
        assert_eq!(arena.remove(pre_wrap), None, "pre-wrap evict rejected");
        assert_eq!(arena.get(post_wrap), Some(&20));
    }

    #[test]
    fn every_retired_handle_stays_dead_across_many_recycles() {
        // Recycle one slot repeatedly across the wrap boundary, keeping
        // every retired handle: each must keep reading nothing — the lazy
        // heap-discard in the detector leans on exactly this.
        let mut roster = PeerRoster::new();
        let mut arena: Arena<u64> = Arena::new();
        roster.insert(ProcessId(0));
        roster.force_gen(ProcessId(0), Gen(u32::MAX - 100));
        let mut retired = Vec::new();
        for round in 0u32..300 {
            let pid = ProcessId(round % 7);
            let r = roster.resolve(pid).unwrap_or_else(|| roster.insert(pid));
            arena.set(r, u64::from(round));
            retired.push(r);
            roster.remove(pid);
        }
        let live = roster.insert(ProcessId(9));
        arena.set(live, 999);
        assert_eq!(
            live.gen(),
            Gen((u32::MAX - 100).wrapping_add(300)),
            "one slot absorbed every recycle, wrapping past u32::MAX"
        );
        for (i, r) in retired.iter().enumerate() {
            assert_eq!(roster.pid_of(*r), None, "retired handle {i} resolved");
            assert_eq!(arena.get(*r), None, "retired handle {i} read a value");
        }
        assert_eq!(arena.get(live), Some(&999));
    }

    #[test]
    fn peer_slot_accessors() {
        let mut roster = PeerRoster::new();
        let p = roster.insert(ProcessId(1));
        let slot = PeerSlot {
            inner: PeerSlotInner {
                gen: p.gen(),
                value: 42u64,
            },
        };
        assert_eq!(*slot.value(), 42);
        assert_eq!(slot.gen(), p.gen());
    }
}
