//! Seniority-ordered membership views and the rank function of §4.2.

use crate::{majority_of, Op, OpKind, ProcessId};
use std::fmt;

/// A local membership view `Memb(p)`, ordered by *seniority*.
///
/// The paper bases process rank on "seniority with respect to duration in the
/// system view" (§4.2, footnote 12): the longest-standing member — initially
/// `Mgr` — has the highest rank `n`, and the most recently added member has
/// rank `1`. Removing a member "increases the rank of all lower-ranked
/// processes by one", which is automatic here because rank is derived from
/// position. Joins append at the junior end.
///
/// Two views are equal iff they contain the same members in the same
/// seniority order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct View {
    members: Vec<ProcessId>,
}

impl View {
    /// Creates a view from a seniority-ordered member list (most senior
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if `members` contains duplicates: a process is a member at
    /// most once.
    pub fn new(members: Vec<ProcessId>) -> Self {
        for (i, m) in members.iter().enumerate() {
            assert!(!members[..i].contains(m), "duplicate member {m} in view");
        }
        View { members }
    }

    /// The empty view (used by processes that have not yet joined).
    pub fn empty() -> Self {
        View {
            members: Vec::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no process is a member.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(&p)
    }

    /// Seniority position: 0 is the most senior member.
    pub fn index_of(&self, p: ProcessId) -> Option<usize> {
        self.members.iter().position(|&m| m == p)
    }

    /// The paper's rank: `rank(p) = n − index(p)`, so the most senior member
    /// has rank `n` and the most junior rank 1 (§4.2). `None` if `p` is not
    /// a member ("the rank of an excluded process is undefined").
    pub fn rank(&self, p: ProcessId) -> Option<usize> {
        self.index_of(p).map(|i| self.members.len() - i)
    }

    /// Members strictly senior to `p` (higher-ranked), most senior first.
    ///
    /// This is exactly the set whose perceived faultiness triggers `p` to
    /// initiate reconfiguration, and the set every receiver of `p`'s
    /// interrogation can infer as `HiFaulty(p)` (§4.5: "rank is commonly
    /// known. Consequently, other processes can infer the contents of
    /// HiFaulty(p)").
    pub fn seniors_of(&self, p: ProcessId) -> &[ProcessId] {
        match self.index_of(p) {
            Some(i) => &self.members[..i],
            None => &[],
        }
    }

    /// The most senior member (the initial `Mgr`), if any.
    pub fn most_senior(&self) -> Option<ProcessId> {
        self.members.first().copied()
    }

    /// Majority cardinality `μ = ⌊n/2⌋ + 1` for this view (§4.3).
    pub fn majority(&self) -> usize {
        majority_of(self.members.len())
    }

    /// Iterator over members in seniority order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.members.iter().copied()
    }

    /// The members as a slice, most senior first.
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.members
    }

    /// Owned copy of the member list in seniority order.
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.members.clone()
    }

    /// Removes a member, preserving the relative seniority of the rest.
    /// Returns whether `p` was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        match self.index_of(p) {
            Some(i) => {
                self.members.remove(i);
                true
            }
            None => false,
        }
    }

    /// Adds a member at the junior end (rank 1). Returns `false` (and leaves
    /// the view unchanged) if `p` is already a member.
    pub fn push_junior(&mut self, p: ProcessId) -> bool {
        if self.contains(p) {
            return false;
        }
        self.members.push(p);
        true
    }

    /// Applies a membership operation. Returns whether the view changed.
    pub fn apply(&mut self, op: Op) -> bool {
        match op.kind {
            OpKind::Remove => self.remove(op.target),
            OpKind::Add => self.push_junior(op.target),
        }
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for View {
    fn from_iter<T: IntoIterator<Item = ProcessId>>(iter: T) -> Self {
        View::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a View {
    type Item = ProcessId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ProcessId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> View {
        View::new(ids.iter().map(|&i| ProcessId(i)).collect())
    }

    #[test]
    fn rank_matches_paper_convention() {
        // "in the x-th system view, rank(Mgr) = |Sys^x|, and rank(p) = 1 if p
        // is the lowest-ranked process" (§4.2).
        let view = v(&[0, 1, 2, 3]);
        assert_eq!(view.rank(ProcessId(0)), Some(4));
        assert_eq!(view.rank(ProcessId(3)), Some(1));
        assert_eq!(view.rank(ProcessId(9)), None);
    }

    #[test]
    fn removal_shifts_ranks_up() {
        // "Whenever a process is removed from a view, the ranks of all
        // lower-ranked processes are increased by one" (§4.2).
        let mut view = v(&[0, 1, 2, 3]);
        let before = view.rank(ProcessId(3)).unwrap();
        assert!(view.remove(ProcessId(1)));
        assert_eq!(view.rank(ProcessId(3)).unwrap(), before); // 1 -> still junior-most
        assert_eq!(view.rank(ProcessId(2)), Some(2));
        assert_eq!(view.rank(ProcessId(0)), Some(3));
        assert!(!view.remove(ProcessId(1)));
    }

    #[test]
    fn relative_rank_is_stable_while_co_members() {
        // "while p and q are in the same system views, their ranking relative
        // to each other will not change" (§4.2).
        let mut view = v(&[0, 1, 2, 3, 4]);
        let ordered = |view: &View, a, b| view.rank(a).unwrap() > view.rank(b).unwrap();
        assert!(ordered(&view, ProcessId(1), ProcessId(3)));
        view.remove(ProcessId(0));
        view.remove(ProcessId(2));
        view.push_junior(ProcessId(9));
        assert!(ordered(&view, ProcessId(1), ProcessId(3)));
    }

    #[test]
    fn joins_are_junior_most() {
        let mut view = v(&[0, 1]);
        assert!(view.push_junior(ProcessId(5)));
        assert_eq!(view.rank(ProcessId(5)), Some(1));
        assert!(!view.push_junior(ProcessId(5)));
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn seniors_of_is_hifaulty_inference() {
        let view = v(&[0, 1, 2, 3]);
        assert_eq!(view.seniors_of(ProcessId(2)), &[ProcessId(0), ProcessId(1)]);
        assert_eq!(view.seniors_of(ProcessId(0)), &[] as &[ProcessId]);
        assert_eq!(view.seniors_of(ProcessId(9)), &[] as &[ProcessId]);
    }

    #[test]
    fn apply_ops() {
        let mut view = v(&[0, 1, 2]);
        assert!(view.apply(Op::remove(ProcessId(1))));
        assert!(view.apply(Op::add(ProcessId(7))));
        assert_eq!(view.as_slice(), &[ProcessId(0), ProcessId(2), ProcessId(7)]);
        assert!(!view.apply(Op::remove(ProcessId(1))));
    }

    #[test]
    fn majority_examples() {
        assert_eq!(v(&[0, 1, 2]).majority(), 2);
        assert_eq!(v(&[0, 1, 2, 3]).majority(), 3);
        assert_eq!(v(&[0]).majority(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_members_rejected() {
        let _ = v(&[0, 1, 0]);
    }

    #[test]
    fn singleton_view_edge_cases() {
        // A group of one: the sole member is both Mgr (rank n = 1) and the
        // junior-most member, and μ({p}) = 1 — it is its own majority.
        let view = v(&[3]);
        assert_eq!(view.len(), 1);
        assert_eq!(view.rank(ProcessId(3)), Some(1));
        assert_eq!(view.most_senior(), Some(ProcessId(3)));
        assert_eq!(view.majority(), 1);
        assert_eq!(view.seniors_of(ProcessId(3)), &[] as &[ProcessId]);
    }

    #[test]
    fn empty_view_edge_cases() {
        // Processes that have not joined yet hold the empty view: no ranks,
        // no Mgr, and μ(∅) = 1 (a vacuous quorum no one can reach).
        let view = View::empty();
        assert!(view.is_empty());
        assert_eq!(view.rank(ProcessId(0)), None);
        assert_eq!(view.most_senior(), None);
        assert_eq!(view.majority(), 1);
    }

    #[test]
    fn joiner_not_in_view_has_no_rank() {
        // "the rank of an excluded process is undefined" (§4.2) — and a
        // joiner's rank is equally undefined until its add commits.
        let mut view = v(&[0, 1, 2]);
        let joiner = ProcessId(7);
        assert!(!view.contains(joiner));
        assert_eq!(view.rank(joiner), None);
        assert_eq!(view.index_of(joiner), None);
        assert_eq!(view.seniors_of(joiner), &[] as &[ProcessId]);
        // Once admitted, the joiner enters at the junior end with rank 1,
        // and existing ranks are untouched.
        assert!(view.push_junior(joiner));
        assert_eq!(view.rank(joiner), Some(1));
        assert_eq!(view.rank(ProcessId(0)), Some(4));
        assert_eq!(view.rank(ProcessId(2)), Some(2));
    }

    #[test]
    fn rank_after_exclusion_follows_seniority_rule() {
        // §4.2: excluding a member promotes exactly the lower-ranked
        // (junior) processes by one; seniors keep their rank only if no one
        // senior to them left. The excluded process's rank becomes None.
        let mut view = v(&[0, 1, 2, 3, 4]);
        assert!(view.remove(ProcessId(2)));
        assert_eq!(view.rank(ProcessId(2)), None);
        // Seniors of the excluded process: ranks drop by one with n.
        assert_eq!(view.rank(ProcessId(0)), Some(4));
        assert_eq!(view.rank(ProcessId(1)), Some(3));
        // Juniors: unchanged absolute rank (promoted relative to n).
        assert_eq!(view.rank(ProcessId(3)), Some(2));
        assert_eq!(view.rank(ProcessId(4)), Some(1));
        // Majority shrinks with the view: μ(5) = 3 before, μ(4) = 3 after.
        assert_eq!(view.majority(), 3);
        assert!(view.remove(ProcessId(4)));
        assert_eq!(view.majority(), 2);
    }

    #[test]
    fn majority_of_neighbouring_sizes_always_intersects() {
        // μ(n) + μ(n+1) > n+1 for every reachable size (Prop. 7.1), checked
        // on View::majority itself rather than majority_of.
        let mut view = View::empty();
        for i in 0..64u32 {
            let mu_before = view.majority();
            let n_before = view.len();
            assert!(view.push_junior(ProcessId(i)));
            // Except when growing from the empty view (μ(∅) is vacuous),
            // quorums of neighbouring views must overlap.
            if n_before > 0 {
                assert!(
                    mu_before + view.majority() > view.len(),
                    "disjoint quorums possible at n = {}",
                    view.len()
                );
            }
        }
    }

    #[test]
    fn display_and_iteration() {
        let view = v(&[2, 0]);
        assert_eq!(view.to_string(), "{p2, p0}");
        let collected: Vec<_> = view.iter().collect();
        assert_eq!(collected, vec![ProcessId(2), ProcessId(0)]);
        let rebuilt: View = view.iter().collect();
        assert_eq!(rebuilt, view);
    }
}
