//! Consistent cuts over an event log.
//!
//! A *consistent cut* is a prefix of each process history, closed under
//! happens-before (§2.1). We represent a cut by the number of events taken
//! from each process history, and validate closure using the vector clocks
//! the simulator stamped on each event.

use crate::Stamp;
use gmp_types::ProcessId;

/// Global index of an event in a recorded run (position in the trace).
pub type EventIndex = usize;

/// An event as seen by the cut machinery: who executed it and its vector
/// timestamp.
///
/// The timestamp is a [`Stamp`] — an `Arc`-shared snapshot — so building a
/// log from a recorded trace copies no clock vectors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedEvent {
    /// The process that executed the event.
    pub pid: ProcessId,
    /// Vector timestamp assigned by the runtime.
    pub vc: Stamp,
}

/// An ordered log of stamped events, grouped per process, supporting
/// happens-before queries and consistent-cut validation.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Vec<LoggedEvent>,
    /// Per-process list of global indices, in history order.
    histories: Vec<Vec<EventIndex>>,
}

impl EventLog {
    /// Builds a log for `n` processes.
    pub fn new(n: usize) -> Self {
        EventLog {
            events: Vec::new(),
            histories: vec![Vec::new(); n],
        }
    }

    /// Appends an event (events must be appended in a causally consistent
    /// total order, e.g. simulation order).
    ///
    /// # Panics
    ///
    /// Panics if the event's process index is out of range.
    pub fn push(&mut self, ev: LoggedEvent) -> EventIndex {
        let idx = self.events.len();
        let p = ev.pid.index();
        assert!(p < self.histories.len(), "process index out of range");
        self.histories[p].push(idx);
        self.events.push(ev);
        idx
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.histories.len()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at a global index.
    pub fn event(&self, idx: EventIndex) -> &LoggedEvent {
        &self.events[idx]
    }

    /// The history (global indices) of one process.
    pub fn history(&self, p: ProcessId) -> &[EventIndex] {
        &self.histories[p.index()]
    }

    /// Happens-before between two logged events.
    pub fn happens_before(&self, a: EventIndex, b: EventIndex) -> bool {
        self.events[a].vc.happened_before(&self.events[b].vc)
    }

    /// True when `a` is in the causal past of `b` (i.e. `a → b` or `a = b`).
    ///
    /// This is the basis of the epistemic analysis: with a full-information
    /// interpretation, process `p` *knows* at event `e` every fact determined
    /// by events in `e`'s causal past.
    pub fn in_causal_past(&self, a: EventIndex, b: EventIndex) -> bool {
        a == b || self.happens_before(a, b)
    }

    /// The cut induced by taking, at every process, exactly the events in
    /// the causal past of `e` (the least consistent cut containing `e`).
    pub fn past_cut(&self, e: EventIndex) -> Cut {
        let mut counts = vec![0usize; self.processes()];
        for (p, hist) in self.histories.iter().enumerate() {
            // Histories are causally ordered, so the past is a prefix.
            let mut k = 0;
            for &idx in hist {
                if self.in_causal_past(idx, e) {
                    k += 1;
                } else {
                    break;
                }
            }
            counts[p] = k;
        }
        Cut { counts }
    }

    /// Checks that a cut is consistent: for every event inside the cut, all
    /// events in its causal past are inside too.
    pub fn is_consistent(&self, cut: &Cut) -> bool {
        if cut.counts.len() != self.processes() {
            return false;
        }
        for (p, hist) in self.histories.iter().enumerate() {
            if cut.counts[p] > hist.len() {
                return false;
            }
        }
        // Frontier check: for each included event e, every event e' with
        // e' -> e must be included. It suffices to check the cut frontier
        // against every excluded event.
        for (p, hist) in self.histories.iter().enumerate() {
            let taken = cut.counts[p];
            if taken == 0 {
                continue;
            }
            let frontier = hist[taken - 1];
            for (q, qhist) in self.histories.iter().enumerate() {
                let qtaken = cut.counts[q];
                for &excluded in &qhist[qtaken..] {
                    if self.happens_before(excluded, frontier) {
                        return false;
                    }
                }
            }
            let _ = p;
        }
        true
    }
}

/// A cut: a per-process count of events taken from each history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    counts: Vec<usize>,
}

impl Cut {
    /// A cut taking `counts[p]` events from process `p`'s history.
    pub fn new(counts: Vec<usize>) -> Self {
        Cut { counts }
    }

    /// Number of events taken from `p`'s history.
    pub fn taken(&self, p: ProcessId) -> usize {
        self.counts[p.index()]
    }

    /// `self ≤ other`: every history prefix of `self` is a prefix of the
    /// corresponding prefix in `other` (the paper's `c < c'`).
    pub fn le(&self, other: &Cut) -> bool {
        self.counts.len() == other.counts.len()
            && self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// The paper's `c << c'`: every prefix strictly shorter.
    pub fn lt_strict(&self, other: &Cut) -> bool {
        self.counts.len() == other.counts.len()
            && self.counts.iter().zip(&other.counts).all(|(a, b)| a < b)
    }

    /// True when the given global event index is inside the cut.
    pub fn contains(&self, log: &EventLog, e: EventIndex) -> bool {
        let ev = log.event(e);
        let hist = log.history(ev.pid);
        let pos = hist
            .iter()
            .position(|&i| i == e)
            .expect("event not in its history");
        pos < self.taken(ev.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorClock;

    /// Builds the classic two-process message scenario:
    /// p0: e0 (send) ; p1: e1 (local), e2 (recv of e0).
    fn sample_log() -> EventLog {
        let mut log = EventLog::new(2);
        let mut vc_a = VectorClock::new(2);
        let mut vc_b = VectorClock::new(2);
        vc_a.tick(0); // e0 = send at p0
        log.push(LoggedEvent {
            pid: ProcessId(0),
            vc: vc_a.clone().into(),
        });
        vc_b.tick(1); // e1 = local at p1
        log.push(LoggedEvent {
            pid: ProcessId(1),
            vc: vc_b.clone().into(),
        });
        vc_b.observe(&vc_a);
        vc_b.tick(1); // e2 = receive at p1
        log.push(LoggedEvent {
            pid: ProcessId(1),
            vc: vc_b.into(),
        });
        log
    }

    #[test]
    fn happens_before_queries() {
        let log = sample_log();
        assert!(log.happens_before(0, 2));
        assert!(!log.happens_before(2, 0));
        assert!(!log.happens_before(0, 1));
        assert!(log.in_causal_past(0, 0));
    }

    #[test]
    fn past_cut_is_consistent_and_minimal() {
        let log = sample_log();
        let cut = log.past_cut(2);
        assert!(log.is_consistent(&cut));
        assert_eq!(cut.taken(ProcessId(0)), 1);
        assert_eq!(cut.taken(ProcessId(1)), 2);
        assert!(cut.contains(&log, 0));
        assert!(cut.contains(&log, 2));
    }

    #[test]
    fn inconsistent_cut_detected() {
        let log = sample_log();
        // Take the receive (e2) but not the send (e0): not closed under ->.
        let cut = Cut::new(vec![0, 2]);
        assert!(!log.is_consistent(&cut));
        // Take only the send: consistent.
        let cut2 = Cut::new(vec![1, 0]);
        assert!(log.is_consistent(&cut2));
    }

    #[test]
    fn cut_ordering() {
        let a = Cut::new(vec![1, 0]);
        let b = Cut::new(vec![1, 2]);
        let c = Cut::new(vec![2, 2]);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.lt_strict(&b)); // first component not strictly smaller
        assert!(a.lt_strict(&c));
    }
}
