//! Causality substrate: Lamport clocks, vector clocks, happens-before, and
//! consistent cuts.
//!
//! The GMP specification (§2) is stated over *consistent cuts* of a system
//! run — prefixes of the run closed under Lamport's happens-before relation.
//! This crate provides the clock machinery the simulator uses to stamp every
//! event, and the cut machinery the property checkers use to evaluate
//! cut-indexed propositions such as `IsSysView(x)`.
//!
//! Two clock representations are provided:
//!
//! * [`VectorClock`] — the plain, owned vector timestamp; mutation is always
//!   in place.
//! * [`CowClock`] / [`Stamp`] — a copy-on-write working clock and its
//!   immutable, `Arc`-shared snapshots. Taking a [`Stamp`] is O(1);
//!   the underlying vector is only deep-copied when the clock advances
//!   (tick/observe) *while a previous snapshot is still alive*. The
//!   simulator stamps every trace event, so this turns the per-event
//!   stamping cost from O(n) copies into amortized O(1) sharing.
//!
//! # Example
//!
//! ```
//! use gmp_causality::{CowClock, VectorClock};
//!
//! let mut a = VectorClock::new(2);
//! let mut b = VectorClock::new(2);
//! a.tick(0);                 // event at p0
//! b.observe(&a); b.tick(1);  // p1 receives p0's message
//! assert!(a.happened_before(&b));
//! assert!(!b.happened_before(&a));
//!
//! // Copy-on-write stamping: snapshots are O(1) and share storage.
//! let mut c = CowClock::new(2);
//! c.tick(0);
//! let s1 = c.stamp();
//! let s2 = c.stamp();        // no copy: same shared vector as s1
//! assert_eq!(s1, s2);
//! c.tick(0);                 // copies once, because s1/s2 are alive
//! assert!(s1.happened_before(c.clock()));
//! ```

#![deny(missing_docs)]

pub mod cut;

pub use cut::{Cut, EventIndex, EventLog, LoggedEvent};

use std::cmp::Ordering;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A Lamport scalar clock (Lamport 1978, cited as \[12\] in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LamportClock(pub u64);

impl LamportClock {
    /// A fresh clock at 0.
    pub fn new() -> Self {
        LamportClock(0)
    }

    /// Advances the clock for a local or send event and returns the new
    /// timestamp.
    pub fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// Merges a received timestamp (`max(local, remote)`) and then ticks.
    /// Returns the new timestamp.
    pub fn merge(&mut self, remote: u64) -> u64 {
        self.0 = self.0.max(remote);
        self.tick()
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A fixed-dimension vector clock.
///
/// Dimension is the number of processes in the run; the simulator fixes it at
/// construction time (joining processes exist from the start of the run and
/// simply have not joined the *group* yet, so the dimension never changes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock of dimension `n`.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Dimension of the clock.
    pub fn dim(&self) -> usize {
        self.entries.len()
    }

    /// Component for process index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn get(&self, i: usize) -> u64 {
        self.entries[i]
    }

    /// Advances the local component `i` by one (a local/send event at
    /// process `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn tick(&mut self, i: usize) {
        self.entries[i] += 1;
    }

    /// Pointwise maximum with another clock (message reception), *without*
    /// ticking the local component.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn observe(&mut self, other: &VectorClock) {
        assert_eq!(self.dim(), other.dim(), "vector clock dimension mismatch");
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` pointwise.
    pub fn le(&self, other: &VectorClock) -> bool {
        assert_eq!(self.dim(), other.dim(), "vector clock dimension mismatch");
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// True when neither clock happened before the other (concurrent
    /// events).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison: `Some(Less)` iff `self → other`,
    /// `Some(Greater)` iff `other → self`, `Some(Equal)` iff identical, and
    /// `None` for concurrent clocks.
    pub fn partial_cmp_causal(&self, other: &VectorClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

/// An immutable, cheaply cloneable vector timestamp.
///
/// A `Stamp` is an `Arc`-shared snapshot of a [`CowClock`] at some event.
/// Cloning a stamp (and thus recording it on a trace event, attaching it to
/// an in-flight message, or copying it into an event log) is O(1) and never
/// copies the underlying vector. Stamps dereference to [`VectorClock`], so
/// all comparison queries (`happened_before`, `concurrent_with`, …) apply
/// directly.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Stamp(Arc<VectorClock>);

impl Stamp {
    /// The zero stamp of dimension `n`.
    pub fn zero(n: usize) -> Self {
        Stamp(Arc::new(VectorClock::new(n)))
    }

    /// The snapshotted clock value.
    pub fn clock(&self) -> &VectorClock {
        &self.0
    }

    /// True when this stamp shares storage with `other` (same allocation —
    /// implies equality; the converse need not hold).
    pub fn shares_storage_with(&self, other: &Stamp) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for Stamp {
    type Target = VectorClock;

    fn deref(&self) -> &VectorClock {
        &self.0
    }
}

impl From<VectorClock> for Stamp {
    fn from(vc: VectorClock) -> Self {
        Stamp(Arc::new(vc))
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A copy-on-write working vector clock.
///
/// The mutable counterpart of [`Stamp`]: a process's current clock, advanced
/// with [`tick`](CowClock::tick) and [`observe`](CowClock::observe) and
/// snapshotted with [`stamp`](CowClock::stamp). Snapshots are O(1) `Arc`
/// clones; the vector is deep-copied only when the clock advances while an
/// earlier snapshot is still alive, and consecutive advances between two
/// snapshots copy at most once. An `observe` that changes nothing (the
/// remote clock is already dominated) never copies.
#[derive(Clone, Debug)]
pub struct CowClock {
    inner: Arc<VectorClock>,
}

impl CowClock {
    /// The zero clock of dimension `n`.
    pub fn new(n: usize) -> Self {
        CowClock {
            inner: Arc::new(VectorClock::new(n)),
        }
    }

    /// Dimension of the clock.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// The current clock value.
    pub fn clock(&self) -> &VectorClock {
        &self.inner
    }

    /// Advances the local component `i` by one, copying the vector first iff
    /// an outstanding [`Stamp`] still shares it.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn tick(&mut self, i: usize) {
        Arc::make_mut(&mut self.inner).tick(i);
    }

    /// Pointwise maximum with another clock (message reception), without
    /// ticking the local component. Does nothing — and copies nothing — when
    /// `other` is already dominated by the current clock.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn observe(&mut self, other: &VectorClock) {
        if other.le(&self.inner) {
            return; // no-op merge: keep sharing
        }
        Arc::make_mut(&mut self.inner).observe(other);
    }

    /// An O(1) immutable snapshot of the current clock.
    pub fn stamp(&self) -> Stamp {
        Stamp(Arc::clone(&self.inner))
    }

    /// True when at least one outstanding [`Stamp`] (or clone) still shares
    /// this clock's storage, i.e. the next advance will copy.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }
}

impl Default for CowClock {
    fn default() -> Self {
        CowClock::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_basics() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.merge(10), 11);
        assert_eq!(c.merge(3), 12);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn vector_clock_message_chain() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        let mut c = VectorClock::new(3);
        a.tick(0); // e1 at p0
        b.observe(&a);
        b.tick(1); // receive at p1
        c.tick(2); // concurrent event at p2
        assert!(a.happened_before(&b));
        assert!(c.concurrent_with(&a));
        assert!(c.concurrent_with(&b));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&c), None);
        assert_eq!(a.partial_cmp_causal(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn display_forms() {
        let mut a = VectorClock::new(2);
        a.tick(1);
        assert_eq!(a.to_string(), "<0,1>");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.le(&b);
    }

    #[test]
    fn stamps_share_storage_until_the_clock_advances() {
        let mut c = CowClock::new(3);
        c.tick(0);
        let s1 = c.stamp();
        let s2 = c.stamp();
        assert!(s1.shares_storage_with(&s2), "repeated stamps must not copy");
        assert!(c.is_shared());
        c.tick(0); // must copy: s1/s2 are alive
        let s3 = c.stamp();
        assert!(!s3.shares_storage_with(&s1));
        assert_eq!(s1.get(0), 1);
        assert_eq!(s3.get(0), 2);
        assert!(s1.happened_before(&s3));
    }

    #[test]
    fn unshared_cow_clock_mutates_in_place() {
        let mut c = CowClock::new(2);
        c.tick(1);
        drop(c.stamp());
        assert!(!c.is_shared());
        c.tick(1); // no outstanding stamp: in-place, no copy
        assert_eq!(c.clock().get(1), 2);
    }

    #[test]
    fn dominated_observe_is_free() {
        let mut c = CowClock::new(2);
        c.tick(0);
        c.tick(0);
        let s = c.stamp();
        let mut old = VectorClock::new(2);
        old.tick(0);
        c.observe(&old); // dominated: no change, no copy
        assert!(s.shares_storage_with(&c.stamp()));
        let mut ahead = VectorClock::new(2);
        ahead.tick(1);
        c.observe(&ahead); // not dominated: copies away from s
        assert!(!s.shares_storage_with(&c.stamp()));
        assert_eq!(c.clock().as_slice(), &[2, 1]);
    }

    #[test]
    fn stamp_equality_is_by_value() {
        let mut a = CowClock::new(2);
        let mut b = CowClock::new(2);
        a.tick(0);
        b.tick(0);
        let sa = a.stamp();
        let sb = b.stamp();
        assert_eq!(sa, sb, "equal values from distinct allocations");
        assert!(!sa.shares_storage_with(&sb));
        assert_eq!(sa.to_string(), "<1,0>");
        let owned: Stamp = VectorClock::new(2).into();
        assert!(owned.happened_before(&sa));
    }
}
