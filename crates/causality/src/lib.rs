//! Causality substrate: Lamport clocks, vector clocks, happens-before, and
//! consistent cuts.
//!
//! The GMP specification (§2) is stated over *consistent cuts* of a system
//! run — prefixes of the run closed under Lamport's happens-before relation.
//! This crate provides the clock machinery the simulator uses to stamp every
//! event, and the cut machinery the property checkers use to evaluate
//! cut-indexed propositions such as `IsSysView(x)`.
//!
//! # Example
//!
//! ```
//! use gmp_causality::VectorClock;
//!
//! let mut a = VectorClock::new(2);
//! let mut b = VectorClock::new(2);
//! a.tick(0);                 // event at p0
//! b.observe(&a); b.tick(1);  // p1 receives p0's message
//! assert!(a.happened_before(&b));
//! assert!(!b.happened_before(&a));
//! ```

pub mod cut;

pub use cut::{Cut, EventIndex, EventLog, LoggedEvent};

use std::cmp::Ordering;
use std::fmt;

/// A Lamport scalar clock (Lamport 1978, cited as [12] in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LamportClock(pub u64);

impl LamportClock {
    /// A fresh clock at 0.
    pub fn new() -> Self {
        LamportClock(0)
    }

    /// Advances the clock for a local or send event and returns the new
    /// timestamp.
    pub fn tick(&mut self) -> u64 {
        self.0 += 1;
        self.0
    }

    /// Merges a received timestamp (`max(local, remote)`) and then ticks.
    /// Returns the new timestamp.
    pub fn merge(&mut self, remote: u64) -> u64 {
        self.0 = self.0.max(remote);
        self.tick()
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// A fixed-dimension vector clock.
///
/// Dimension is the number of processes in the run; the simulator fixes it at
/// construction time (joining processes exist from the start of the run and
/// simply have not joined the *group* yet, so the dimension never changes).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock of dimension `n`.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Dimension of the clock.
    pub fn dim(&self) -> usize {
        self.entries.len()
    }

    /// Component for process index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn get(&self, i: usize) -> u64 {
        self.entries[i]
    }

    /// Advances the local component `i` by one (a local/send event at
    /// process `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn tick(&mut self, i: usize) {
        self.entries[i] += 1;
    }

    /// Pointwise maximum with another clock (message reception), *without*
    /// ticking the local component.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn observe(&mut self, other: &VectorClock) {
        assert_eq!(self.dim(), other.dim(), "vector clock dimension mismatch");
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` pointwise.
    pub fn le(&self, other: &VectorClock) -> bool {
        assert_eq!(self.dim(), other.dim(), "vector clock dimension mismatch");
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        self.le(other) && self != other
    }

    /// True when neither clock happened before the other (concurrent
    /// events).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison: `Some(Less)` iff `self → other`,
    /// `Some(Greater)` iff `other → self`, `Some(Equal)` iff identical, and
    /// `None` for concurrent clocks.
    pub fn partial_cmp_causal(&self, other: &VectorClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// The components as a slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_basics() {
        let mut c = LamportClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.merge(10), 11);
        assert_eq!(c.merge(3), 12);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn vector_clock_message_chain() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        let mut c = VectorClock::new(3);
        a.tick(0); // e1 at p0
        b.observe(&a);
        b.tick(1); // receive at p1
        c.tick(2); // concurrent event at p2
        assert!(a.happened_before(&b));
        assert!(c.concurrent_with(&a));
        assert!(c.concurrent_with(&b));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&c), None);
        assert_eq!(a.partial_cmp_causal(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn display_forms() {
        let mut a = VectorClock::new(2);
        a.tick(1);
        assert_eq!(a.to_string(), "<0,1>");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.le(&b);
    }
}
