//! The Ricciardi–Birman group-membership protocol (Cornell TR 91-1188 /
//! PODC 1991): process-group membership as a failure-detection service for
//! asynchronous systems.
//!
//! # What this implements
//!
//! * the **two-phase update algorithm** run by a distinguished coordinator
//!   (`Mgr`) to exclude perceived-faulty members and admit joiners, with the
//!   *condensed* rounds of §3.1 that piggyback the next invitation on the
//!   current commit;
//! * the **three-phase reconfiguration algorithm** (interrogate → propose →
//!   commit) that elects a successor and stabilizes the system when `Mgr`
//!   itself is perceived faulty, including the `Determine`/`GetStable`
//!   procedures that make *invisibly committed* view changes detectable
//!   (§4–§5);
//! * the **join procedure** of §7, making the service fully *online*: a
//!   continuous stream of removals and additions is processed without
//!   blocking;
//! * the failure-detection rules of §2.2: timeout observation (F1), gossip
//!   (F2) and the isolation rule (S1).
//!
//! The protocol runs inside the deterministic simulator of [`gmp_sim`]; the
//! resulting traces can be checked against the formal GMP specification
//! with `gmp-props`.
//!
//! # Quickstart
//!
//! ```
//! use gmp_core::cluster;
//! use gmp_types::ProcessId;
//!
//! // Five members; p0 is the initial Mgr. Crash p2 and watch the group
//! // agree on its exclusion.
//! let mut sim = cluster(5, 7);
//! sim.crash_at(ProcessId(2), 500);
//! sim.run_until(5_000);
//! for p in sim.living() {
//!     let m = sim.node(p);
//!     assert_eq!(m.ver(), 1);
//!     assert!(!m.view().contains(ProcessId(2)));
//! }
//! ```

pub mod cluster;
pub mod config;
pub mod decide;
pub mod event;
pub mod member;
pub mod msg;
pub mod topology;

pub use cluster::{cluster, cluster_with, ClusterBuilder};
pub use config::{Config, ConfigBuilder, JoinConfig, ObserveConfig};
pub use decide::{determine, get_stable, proposals_for_ver, Decision, PhaseOneResp, Proposal};
pub use event::MemberEvent;
pub use member::{Lifecycle, Member};
pub use msg::{is_protocol_tag, HeartbeatDigest, Msg, PROTOCOL_TAGS};
pub use topology::{Flat, Hierarchical, Sparse, Topology};
