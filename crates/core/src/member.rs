//! The [`Member`] state machine: the paper's full algorithm.
//!
//! A member plays one of several roles at a time:
//!
//! * **Outer process** — responds to `Mgr`'s invitations and commits
//!   (Fig. 9), and to reconfiguration messages (Fig. 10);
//! * **`Mgr`** — coordinates two-phase updates with condensed rounds
//!   (Fig. 8);
//! * **Reconfiguration initiator** — runs the three-phase
//!   interrogate/propose/commit algorithm when every process ranked above
//!   it is perceived faulty (Fig. 10, §4).
//!
//! The failure-detector (F1), gossip (F2) and isolation (S1) rules of §2.2
//! are integrated here; the decision procedures of Fig. 6 live in
//! [`crate::decide`].

use crate::config::Config;
use crate::decide::{determine, PhaseOneResp};
use crate::event::MemberEvent;
use crate::msg::{HeartbeatDigest, Msg};
use gmp_detect::{HeartbeatDetector, Isolation};
use gmp_sim::{Ctx, Node, Shared};
use gmp_types::note::{FaultySource, QuitReason};
use gmp_types::{Arena, NextEntry, Note, Op, OpKind, PeerRef, ProcessId, Ver, View};
use std::collections::{BTreeSet, VecDeque};

/// Timer tag: heartbeat + failure-detector tick.
const TICK: u64 = 1;
/// Timer tag: (re)send a join request.
const JOIN: u64 = 2;
/// Timer tag: observer subscription health check.
const OBSERVE: u64 = 3;

/// Where this process stands in the group lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lifecycle {
    /// Outside the group, soliciting membership (§7).
    Joining,
    /// Outside the group, tracking its membership as an observer (§8
    /// hierarchical service).
    Observing,
    /// A group member executing the protocol.
    Active,
    /// Crashed logically: executed `quit` (excluded or lost a majority).
    Stopped,
}

/// The member's current protocol role.
#[derive(Clone, Debug)]
enum Role {
    /// Follower.
    Outer,
    /// Coordinator with no update in flight.
    MgrIdle,
    /// Coordinator awaiting `OK`s for `op` installing `ver` (Fig. 8 await).
    MgrAwait {
        op: Op,
        ver: Ver,
        pending: BTreeSet<ProcessId>,
        oks: BTreeSet<ProcessId>,
    },
    /// Reconfiguration Phase I: awaiting interrogation responses.
    ReconfInterrogate {
        pending: BTreeSet<ProcessId>,
        resp: Vec<PhaseOneResp>,
    },
    /// Reconfiguration Phase II: awaiting proposal acknowledgements.
    ReconfPropose {
        v: Ver,
        rl: Vec<Op>,
        invis: Vec<Op>,
        pending: BTreeSet<ProcessId>,
        oks: BTreeSet<ProcessId>,
    },
}

/// Deferred continuation after mutating role state (avoids re-borrow).
enum After {
    None,
    MgrStart,
    MgrComplete,
    Phase1Complete,
    Phase2Complete,
    MaybeInitiate,
}

/// A group member running the Ricciardi–Birman membership protocol.
///
/// Construct initial members with [`Member::new`] (all initial members must
/// be given the *same* view — GMP-0 assumes the initial membership is
/// commonly known) and late joiners with a [`Config`] carrying a
/// [`JoinConfig`](crate::JoinConfig).
pub struct Member {
    cfg: Config,
    me: ProcessId,
    lifecycle: Lifecycle,
    view: View,
    ver: Ver,
    seq: Vec<Op>,
    next: Vec<NextEntry>,
    mgr: ProcessId,
    /// `Faulty(p)`: believed faulty but not yet removed from the view.
    faulty: BTreeSet<ProcessId>,
    /// `Recovered(Mgr)`: queued joiners (meaningful while coordinator).
    recovered: VecDeque<ProcessId>,
    /// Contingent operations inherited from reconfiguration (`invis`),
    /// executed first once this member is coordinator.
    forced: VecDeque<Op>,
    iso: Isolation,
    fd: HeartbeatDetector,
    role: Role,
    /// Future-view update messages, waiting for their view (§3).
    buffered: Vec<(ProcessId, Msg)>,
    /// Suspicions queued by tests/experiments, applied at the next tick.
    injected: Vec<ProcessId>,
    /// Last time each suspect was reported to `Mgr` (for re-reports),
    /// addressed by the detector's roster slots: a dense array access per
    /// touch, structurally pruned when a view change tombstones the slot.
    last_report: Arena<u64>,
    /// Sender-side state of the delta-encoded heartbeat digests (F2).
    hb: HbGossip,
    /// The monitoring set computed from `cfg.topology` at the last view
    /// install, in view order: heartbeat targets, digest carriers and
    /// detector enrollment all draw from this cache instead of
    /// re-enumerating the view. [`Member::install_topology`] keeps it (and
    /// the detector roster) in sync with the view.
    topo_monitored: Vec<ProcessId>,
    /// Observers subscribed to this member's view stream (§8).
    subscribers: BTreeSet<ProcessId>,
    /// Observer-side state, when this process is an observer.
    obs: Option<ObsState>,
    /// Undrained consumer events ([`Member::take_events`]). Pushing here is
    /// protocol-invisible — no sends, notes or randomness — so the queue
    /// never perturbs the byte-identical golden runs.
    events: Vec<MemberEvent>,
}

/// Sender-side heartbeat-gossip state: the faulty set travels as one
/// `Arc`-shared snapshot per *change*, not one `Vec` per target per tick.
#[derive(Clone, Debug, Default)]
struct HbGossip {
    /// Bumped whenever the faulty set differs from the previous tick's.
    epoch: u64,
    /// The faulty set as of `epoch` (ascending id order, like `faulty_vec`).
    last: Vec<ProcessId>,
    /// Shared snapshot for `epoch`; `None` while the set is empty (an empty
    /// snapshot and an empty beat are indistinguishable to the receiver).
    snapshot: Option<Shared<[ProcessId]>>,
    /// Per-peer digest-delivery state, addressed by the detector's roster
    /// slots (so it dies structurally with the slot when a view change
    /// tombstones the peer).
    peers: Arena<HbPeer>,
    /// `pid.index() → current detector handle`, maintained at
    /// [`Member::track_peer`]/[`Member::forget_peer`] time. The per-message
    /// hot path ([`HeartbeatDetector::heard_from_ref`] plus the digest
    /// `confirmed` mark) then runs on generation-checked array accesses
    /// with no id→slot resolve per beat. Kept exactly in sync with the
    /// detector's roster: a tombstoned slot's handle is dropped here the
    /// moment `forget` retires it.
    refs: Vec<Option<PeerRef>>,
    /// Snapshot materializations, for the E9 fan-out experiment.
    builds: u64,
}

/// Digest-delivery bookkeeping for one heartbeat target.
#[derive(Clone, Copy, Debug, Default)]
struct HbPeer {
    /// Last epoch whose snapshot this peer is *known* to have received (the
    /// carrying beat was sent while the peer was confirmed `Active`).
    sent: Option<u64>,
    /// Whether we hold evidence the peer reached `Active`: any message it
    /// sent other than its own `JoinRequest` (joiners send those while
    /// still `Joining`, discarding everything but `Welcome` in return).
    /// Until then, a carrying beat might land on a `Joining` receiver and
    /// be discarded, so the snapshot is re-carried instead of marked sent.
    confirmed: bool,
}

/// Observer-side bookkeeping (§8 hierarchical service).
#[derive(Clone, Debug)]
struct ObsState {
    /// Fail-over contact list (config contacts, extended by observed
    /// membership).
    contacts: Vec<ProcessId>,
    /// Index of the contact currently subscribed to.
    idx: usize,
    /// Time of the last update (or subscription attempt).
    last_update: u64,
    /// Whether a subscription attempt is outstanding.
    subscribed: bool,
    /// Latest observed membership.
    view: View,
    /// Latest observed version.
    ver: Ver,
    /// Latest observed coordinator.
    mgr: ProcessId,
    /// Whether any update has arrived yet.
    seen_any: bool,
}

impl Member {
    /// Creates an initial member of `initial_view`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` carries a join configuration (use a joiner
    /// constructor path for that) or if the initial view is empty.
    pub fn new(cfg: Config, initial_view: View) -> Self {
        assert!(
            cfg.join.is_none(),
            "initial members must not carry a join config"
        );
        assert!(!initial_view.is_empty(), "initial view must be non-empty");
        let mgr = initial_view.most_senior().expect("non-empty view");
        let suspect_after = cfg.suspect_after;
        Member {
            cfg,
            me: ProcessId(u32::MAX), // assigned at start
            lifecycle: Lifecycle::Active,
            view: initial_view,
            ver: 0,
            seq: Vec::new(),
            next: Vec::new(),
            mgr,
            faulty: BTreeSet::new(),
            recovered: VecDeque::new(),
            forced: VecDeque::new(),
            iso: Isolation::new(),
            fd: HeartbeatDetector::new(suspect_after),
            role: Role::Outer,
            buffered: Vec::new(),
            injected: Vec::new(),
            last_report: Arena::new(),
            hb: HbGossip::default(),
            topo_monitored: Vec::new(),
            subscribers: BTreeSet::new(),
            obs: None,
            events: Vec::new(),
        }
    }

    /// Creates a process outside the group that will ask to join (§7).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` lacks a join configuration.
    pub fn joiner(cfg: Config) -> Self {
        assert!(cfg.join.is_some(), "a joiner requires a join config");
        let suspect_after = cfg.suspect_after;
        Member {
            cfg,
            me: ProcessId(u32::MAX),
            lifecycle: Lifecycle::Joining,
            view: View::empty(),
            ver: 0,
            seq: Vec::new(),
            next: Vec::new(),
            mgr: ProcessId(u32::MAX),
            faulty: BTreeSet::new(),
            recovered: VecDeque::new(),
            forced: VecDeque::new(),
            iso: Isolation::new(),
            fd: HeartbeatDetector::new(suspect_after),
            role: Role::Outer,
            buffered: Vec::new(),
            injected: Vec::new(),
            last_report: Arena::new(),
            hb: HbGossip::default(),
            topo_monitored: Vec::new(),
            subscribers: BTreeSet::new(),
            obs: None,
            events: Vec::new(),
        }
    }

    /// Creates an observer of the group (§8): it receives every agreed
    /// view transition but never becomes a member.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` lacks an observer configuration.
    pub fn observer(cfg: Config) -> Self {
        let observe = cfg
            .observe
            .clone()
            .expect("an observer requires an observe config");
        let mut m = Member::joiner_unchecked(cfg);
        m.lifecycle = Lifecycle::Observing;
        m.obs = Some(ObsState {
            contacts: observe.contacts,
            idx: 0,
            last_update: 0,
            subscribed: false,
            view: View::empty(),
            ver: 0,
            mgr: ProcessId(u32::MAX),
            seen_any: false,
        });
        m
    }

    /// Shared blank-state constructor for processes outside the group.
    fn joiner_unchecked(cfg: Config) -> Self {
        let suspect_after = cfg.suspect_after;
        Member {
            cfg,
            me: ProcessId(u32::MAX),
            lifecycle: Lifecycle::Joining,
            view: View::empty(),
            ver: 0,
            seq: Vec::new(),
            next: Vec::new(),
            mgr: ProcessId(u32::MAX),
            faulty: BTreeSet::new(),
            recovered: VecDeque::new(),
            forced: VecDeque::new(),
            iso: Isolation::new(),
            fd: HeartbeatDetector::new(suspect_after),
            role: Role::Outer,
            buffered: Vec::new(),
            injected: Vec::new(),
            last_report: Arena::new(),
            hb: HbGossip::default(),
            topo_monitored: Vec::new(),
            subscribers: BTreeSet::new(),
            obs: None,
            events: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Inspection (tests, examples, experiments)
    // ------------------------------------------------------------------

    /// The current local view `Memb(p)`.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The current local version `ver(p)`.
    pub fn ver(&self) -> Ver {
        self.ver
    }

    /// Whom this process considers coordinator.
    pub fn mgr(&self) -> ProcessId {
        self.mgr
    }

    /// True while this process is coordinator.
    pub fn is_mgr(&self) -> bool {
        matches!(self.role, Role::MgrIdle | Role::MgrAwait { .. })
    }

    /// Group lifecycle state.
    pub fn lifecycle(&self) -> Lifecycle {
        self.lifecycle
    }

    /// The committed operation sequence `seq(p)`.
    pub fn seq(&self) -> &[Op] {
        &self.seq
    }

    /// The expectation list `next(p)`.
    pub fn next_list(&self) -> &[NextEntry] {
        &self.next
    }

    /// Processes currently believed faulty and still in the view.
    pub fn faulty_set(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.faulty.iter().copied()
    }

    /// Drains the queued [`MemberEvent`]s, in occurrence order.
    ///
    /// This is the push-flavored consumer API: a layer built on top of the
    /// group (`gmp-log`'s replicated log, most prominently) calls this
    /// after every handler invocation and reacts to membership transitions
    /// instead of polling accessors. See [`crate::event`] for the queue's
    /// contract (protocol-invisible, deterministic, ordered, drained).
    pub fn take_events(&mut self) -> Vec<MemberEvent> {
        std::mem::take(&mut self.events)
    }

    /// Queues a spurious suspicion, applied at the next detector tick.
    /// Models the degraded-performance misdetections of §2.2.
    ///
    /// Test-only hook (enable the `testing` feature): real suspicions come
    /// from the failure-detection rules F1/F2, never from outside.
    #[cfg(any(feature = "testing", test))]
    pub fn inject_suspicion(&mut self, q: ProcessId) {
        self.injected.push(q);
    }

    /// Suspects currently held in the GMP-5 re-report throttle, in
    /// ascending id order. Entries live in an arena addressed by the
    /// detector's roster slots, so a view install prunes them structurally:
    /// tombstoning a slot (or recycling it for a joiner) makes the old
    /// entry unreadable — the state stays bounded by the view size across
    /// arbitrarily long reconfiguration-heavy runs.
    ///
    /// Test/experiment instrumentation (enable the `testing` feature).
    #[cfg(any(feature = "testing", test))]
    pub fn reported_suspects(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.fd
            .enrolled()
            .filter(|&(_, r)| self.last_report.get(r).is_some())
            .map(|(q, _)| q)
    }

    /// How many heartbeat-gossip payloads this member has materialized: one
    /// per *change* of its faulty set, never one per tick or per target.
    /// The E9 fan-out experiment sums this across members to show payload
    /// constructions per interval dropped from Θ(n²) to Θ(n).
    ///
    /// Test/experiment instrumentation (enable the `testing` feature).
    #[cfg(any(feature = "testing", test))]
    pub fn heartbeat_payload_builds(&self) -> u64 {
        self.hb.builds
    }

    /// True when this process is a group observer (§8).
    pub fn is_observer(&self) -> bool {
        self.obs.is_some()
    }

    /// The latest membership an observer has learned of, with its version
    /// and coordinator; `None` until the first update arrives (or if this
    /// process is not an observer).
    pub fn observed_view(&self) -> Option<(&View, Ver, ProcessId)> {
        self.obs
            .as_ref()
            .filter(|o| o.seen_any)
            .map(|o| (&o.view, o.ver, o.mgr))
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn do_quit(&mut self, ctx: &mut Ctx<'_, Msg>, reason: QuitReason) {
        self.lifecycle = Lifecycle::Stopped;
        // A stopped member neither reports nor heartbeats ever again; free
        // the per-peer arenas rather than letting them outlive the
        // membership. The event queue survives: the host gets to observe
        // the terminal transition.
        self.last_report.clear();
        self.hb = HbGossip::default();
        self.topo_monitored.clear();
        self.events.push(MemberEvent::Quit {
            reason: reason.clone(),
        });
        ctx.note(Note::Quit { reason });
        ctx.quit();
    }

    fn others(&self) -> Vec<ProcessId> {
        self.view.iter().filter(|&p| p != self.me).collect()
    }

    /// `Memb − {me} − Faulty`: the processes whose response is awaited.
    fn await_set(&self) -> BTreeSet<ProcessId> {
        self.view
            .iter()
            .filter(|&p| p != self.me && !self.faulty.contains(&p))
            .collect()
    }

    fn faulty_vec(&self) -> Vec<ProcessId> {
        self.faulty.iter().copied().collect()
    }

    /// Records evidence that `p` has reached `Active`: from now on a
    /// digest-carrying beat to `p` may mark its epoch delivered at send
    /// time (lifecycle is monotone past `Active`, so no later beat can land
    /// on a discarding `Joining` receiver). No-op for strangers (observers,
    /// not-yet-admitted joiners) — they have no roster slot.
    fn confirm_peer(&mut self, p: ProcessId) {
        if let Some(r) = self.peer_ref(p) {
            self.hb.peers.entry(r).confirmed = true;
        }
    }

    /// Starts monitoring `p` and caches its detector handle alongside the
    /// digest roster, so every later life sign from `p` is ref-addressed.
    /// Mirrors the detector exactly: a refused track (already-suspected
    /// pid) caches `None`, just as `resolve` would return.
    fn track_peer(&mut self, p: ProcessId, lease: u64) {
        self.fd.track(p, lease);
        let r = self.fd.resolve(p);
        if self.hb.refs.len() <= p.index() {
            self.hb.refs.resize(p.index() + 1, None);
        }
        self.hb.refs[p.index()] = r;
    }

    /// Stops monitoring `p`, dropping the cached handle with the roster
    /// slot (the retired handle would fail the generation check anyway —
    /// clearing it keeps the cache an exact mirror of the roster).
    fn forget_peer(&mut self, p: ProcessId) {
        self.fd.forget(p);
        if let Some(slot) = self.hb.refs.get_mut(p.index()) {
            *slot = None;
        }
    }

    /// Stops monitoring `p` because the *topology* shifted, not because it
    /// left the group: the detector slot is retired without banning the id
    /// (a later view may make `p` a neighbor again — see
    /// [`HeartbeatDetector::release`]), and the cached handle is dropped
    /// with it.
    fn release_peer(&mut self, p: ProcessId) {
        self.fd.release(p);
        if let Some(slot) = self.hb.refs.get_mut(p.index()) {
            *slot = None;
        }
    }

    /// Recomputes the monitoring set from the configured topology against
    /// the current view, diffing it against the previous set: ex-monitors
    /// are released (not forgotten — they are still group members),
    /// new monitors are tracked with `lease` as their presumed last life
    /// sign. Called on every view install (initial start, welcome, and
    /// each applied operation).
    ///
    /// Emits no trace events and draws no randomness; `track` is a no-op
    /// for already-enrolled peers and `release` for never-enrolled ones —
    /// so under [`Flat`](crate::topology::Flat), where the set is always
    /// "everyone else", this reduces exactly to the pre-topology engine's
    /// track-on-add calls and the run stays byte-identical (pinned by the
    /// goldens in `tests/topology.rs`).
    fn install_topology(&mut self, lease: u64) {
        let monitored = self.cfg.topology.monitors(self.me, &self.view);
        debug_assert!(
            !monitored.contains(&self.me),
            "topology contract: no self-monitoring"
        );
        let keep: BTreeSet<ProcessId> = monitored.iter().copied().collect();
        let old = std::mem::replace(&mut self.topo_monitored, monitored);
        for p in old {
            if !keep.contains(&p) && self.view.contains(p) {
                self.release_peer(p);
            }
            // Ex-monitors no longer in the view were already retired by
            // `forget_peer` in the removal path; releasing them again
            // would be a harmless no-op, skipped for clarity.
        }
        for i in 0..self.topo_monitored.len() {
            let p = self.topo_monitored[i];
            self.track_peer(p, lease);
        }
    }

    /// The cached detector handle for `p` — the ref-addressed equivalent
    /// of `fd.resolve(p)`, without the per-call roster lookup. The debug
    /// assertion pins the cache-mirrors-roster invariant on every touch.
    #[inline]
    fn peer_ref(&self, p: ProcessId) -> Option<PeerRef> {
        let cached = self.hb.refs.get(p.index()).copied().flatten();
        debug_assert_eq!(
            cached,
            self.fd.resolve(p),
            "cached detector handle for {p} diverged from the roster"
        );
        cached
    }

    fn recovered_vec(&self) -> Vec<ProcessId> {
        self.recovered.iter().copied().collect()
    }

    /// The initiator's own pending operations for `GetNext`: queued joiners
    /// first (Fig. 8 serves `Recovered` first), then queued removals.
    fn queue_ops(&self) -> Vec<Op> {
        let mut q: Vec<Op> = self
            .recovered
            .iter()
            .filter(|j| !self.view.contains(**j))
            .map(|&j| Op::add(j))
            .collect();
        q.extend(
            self.faulty
                .iter()
                .filter(|f| self.view.contains(**f))
                .map(|&f| Op::remove(f)),
        );
        q
    }

    fn op_valid(&self, op: Op) -> bool {
        match op.kind {
            OpKind::Remove => self.view.contains(op.target) && op.target != self.me,
            OpKind::Add => !self.view.contains(op.target),
        }
    }

    /// Picks the next operation for the coordinator: inherited contingent
    /// plan first, then queued joiners, then queued removals.
    fn mgr_pick_next(&mut self) -> Option<Op> {
        while let Some(&op) = self.forced.front() {
            self.forced.pop_front();
            if self.op_valid(op) {
                return Some(op);
            }
        }
        if let Some(&j) = self.recovered.iter().find(|j| !self.view.contains(**j)) {
            return Some(Op::add(j));
        }
        if let Some(&f) = self.faulty.iter().find(|f| self.view.contains(**f)) {
            return Some(Op::remove(f));
        }
        None
    }

    /// Applies one committed membership operation, bumping the version and
    /// emitting the trace notes the property checkers consume.
    fn apply_op(&mut self, ctx: &mut Ctx<'_, Msg>, op: Op) {
        let excluded = (op.kind == OpKind::Remove).then_some(op.target);
        match op.kind {
            OpKind::Remove => {
                if op.target == self.me {
                    self.do_quit(ctx, QuitReason::Excluded);
                    return;
                }
                // GMP-1: `q ∉ Memb(p) ⇒ faulty_p(q)` — the belief always
                // precedes the removal, whatever path committed it.
                self.mark_faulty_quiet(ctx, op.target, FaultySource::Gossip);
                self.view.remove(op.target);
                self.faulty.remove(&op.target);
                self.forget_peer(op.target);
            }
            OpKind::Add => {
                if op.target == self.me || !self.view.push_junior(op.target) {
                    // Redundant add; still advances the version to stay in
                    // lockstep with the rest of the group.
                }
                self.recovered.retain(|&j| j != op.target);
            }
        }
        // The view changed: re-knit the monitoring graph around it. Under
        // a removal this also enrolls whoever the shifted graph newly
        // assigns to us (a sparse ring closes over the gap); under Flat it
        // reduces to tracking exactly the added member.
        self.install_topology(ctx.now());
        self.seq.push(op);
        self.ver += 1;
        // Installing a view needs no explicit pruning of the per-peer
        // bookkeeping: `last_report` and the digest-delivery state live in
        // arenas addressed by the detector's roster, and `forget_peer` above
        // tombstoned the slots of everyone the new view excludes — their
        // entries are already unreadable (and a recycled slot's generation
        // check keeps them invisible to later joiners). The state stays
        // bounded by the view size across arbitrarily long runs.
        ctx.note(Note::OpApplied { op, ver: self.ver });
        ctx.note(Note::ViewInstalled {
            ver: self.ver,
            members: self.view.to_vec(),
            mgr: self.mgr,
        });
        if let Some(peer) = excluded {
            self.events.push(MemberEvent::PeerExcluded {
                peer,
                ver: self.ver,
            });
        }
        self.events.push(MemberEvent::ViewInstalled {
            ver: self.ver,
            members: self.view.to_vec(),
            mgr: self.mgr,
        });
        self.notify_subscribers(ctx);
    }

    /// Streams the current view to subscribed observers (§8).
    fn notify_subscribers(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.subscribers.is_empty() {
            return;
        }
        let update = Msg::ViewUpdate {
            members: self.view.to_vec(),
            ver: self.ver,
            mgr: self.mgr,
        };
        for s in self.subscribers.clone() {
            ctx.send(s, update.clone());
        }
    }

    /// Records `faulty_p(q)` without driving any protocol step: used while
    /// already inside a protocol transition (e.g. applying a reconfiguration
    /// proposal), where GMP-1 requires the belief to precede the removal but
    /// triggering succession logic mid-step would be unsound.
    fn mark_faulty_quiet(&mut self, ctx: &mut Ctx<'_, Msg>, q: ProcessId, source: FaultySource) {
        if q == self.me || !self.iso.isolate(q) {
            return;
        }
        self.fd.suspect(q);
        self.events
            .push(MemberEvent::PeerSuspected { peer: q, source });
        ctx.note(Note::Faulty { suspect: q, source });
        if self.view.contains(q) {
            self.faulty.insert(q);
        }
        self.recovered.retain(|&j| j != q);
    }

    /// Applies a reconfiguration proposal `rl` installing version `v`,
    /// starting from whatever prefix this process already holds.
    fn apply_rl(&mut self, ctx: &mut Ctx<'_, Msg>, rl: &[Op], v: Ver) {
        if self.ver >= v {
            return;
        }
        debug_assert!(
            !rl.is_empty(),
            "a reconfiguration proposal installs at least one op"
        );
        let start = v.saturating_sub(rl.len() as u64);
        if self.ver < start {
            // Further behind than the proposal can repair; impossible per
            // Prop. 5.1 but tolerated defensively.
            ctx.note(Note::Custom(format!(
                "cannot catch up: at v{} but proposal covers v{}..v{}",
                self.ver, start, v
            )));
            return;
        }
        let skip = (self.ver - start) as usize;
        for &op in &rl[skip..] {
            self.apply_op(ctx, op);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        debug_assert_eq!(self.ver, v);
    }

    /// The core `faulty_p(q)` event (§2.2): isolates `q` (S1), records the
    /// belief, and drives whatever protocol step the suspicion unblocks.
    fn handle_faulty(&mut self, ctx: &mut Ctx<'_, Msg>, q: ProcessId, source: FaultySource) {
        if q == self.me || self.lifecycle == Lifecycle::Stopped {
            return;
        }
        if !self.iso.isolate(q) {
            return; // already believed faulty
        }
        self.fd.suspect(q);
        self.events
            .push(MemberEvent::PeerSuspected { peer: q, source });
        ctx.note(Note::Faulty { suspect: q, source });
        if !self.view.contains(q) {
            return;
        }
        self.faulty.insert(q);
        self.recovered.retain(|&j| j != q);
        if self.lifecycle != Lifecycle::Active {
            return;
        }
        // Drop placeholders of a dead interrogator: we stop waiting for its
        // proposal. Concrete entries are evidence and stay (§4.4).
        self.next.retain(|e| !(e.is_placeholder() && e.coord == q));

        let after = match &mut self.role {
            Role::MgrIdle => After::MgrStart,
            Role::MgrAwait { pending, .. } => {
                pending.remove(&q);
                if pending.is_empty() {
                    After::MgrComplete
                } else {
                    After::None
                }
            }
            Role::ReconfInterrogate { pending, .. } => {
                pending.remove(&q);
                if pending.is_empty() {
                    After::Phase1Complete
                } else {
                    After::None
                }
            }
            Role::ReconfPropose { pending, .. } => {
                pending.remove(&q);
                if pending.is_empty() {
                    After::Phase2Complete
                } else {
                    After::None
                }
            }
            Role::Outer => After::MaybeInitiate,
        };
        match after {
            After::None => {}
            After::MgrStart => self.mgr_start_update(ctx),
            After::MgrComplete => self.mgr_oks_complete(ctx),
            After::Phase1Complete => self.reconf_phase1_complete(ctx),
            After::Phase2Complete => self.reconf_phase2_complete(ctx),
            After::MaybeInitiate => {
                // Report the observation so Mgr starts the exclusion
                // algorithm (§3.1); gossip-derived beliefs are re-reported
                // periodically instead to avoid echo storms.
                if matches!(source, FaultySource::Observation | FaultySource::Injected)
                    && q != self.mgr
                    && self.mgr != self.me
                    && !self.faulty.contains(&self.mgr)
                {
                    ctx.send(self.mgr, Msg::FaultyReport { suspect: q });
                    // `q` is in view, so its roster slot is live (suspicion
                    // keeps the slot; only removal retires it).
                    if let Some(r) = self.peer_ref(q) {
                        self.last_report.set(r, ctx.now());
                    }
                }
                self.maybe_initiate(ctx);
            }
        }
    }

    /// The succession rule (§4.2): initiate reconfiguration when every
    /// member ranked above this process — and the coordinator — is
    /// perceived faulty.
    fn maybe_initiate(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.lifecycle != Lifecycle::Active || !matches!(self.role, Role::Outer) {
            return;
        }
        if self.mgr == self.me || !self.view.contains(self.me) {
            return;
        }
        let seniors_faulty = self
            .view
            .seniors_of(self.me)
            .iter()
            .all(|s| self.faulty.contains(s));
        if seniors_faulty && self.faulty.contains(&self.mgr) {
            self.start_reconf(ctx);
        }
    }

    // ------------------------------------------------------------------
    // Coordinator: two-phase update with condensed rounds (Fig. 8)
    // ------------------------------------------------------------------

    fn mgr_start_update(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(op) = self.mgr_pick_next() else {
            self.role = Role::MgrIdle;
            return;
        };
        let vnext = self.ver + 1;
        ctx.broadcast(self.others(), Msg::Invite { op, ver: vnext });
        let pending = self.await_set();
        self.role = Role::MgrAwait {
            op,
            ver: vnext,
            pending,
            oks: BTreeSet::new(),
        };
        self.mgr_check_complete(ctx);
    }

    fn mgr_check_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let done = matches!(&self.role, Role::MgrAwait { pending, .. } if pending.is_empty());
        if done {
            self.mgr_oks_complete(ctx);
        }
    }

    /// Every awaited member has responded or been suspected: commit.
    fn mgr_oks_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Role::MgrAwait {
            op, ver: v, oks, ..
        } = std::mem::replace(&mut self.role, Role::MgrIdle)
        else {
            return;
        };
        if self.cfg.mgr_majority {
            let got = oks.len() + 1; // counting Mgr itself
            let needed = self.view.majority();
            if got < needed {
                self.do_quit(ctx, QuitReason::NoMajority { got, needed });
                return;
            }
        }
        self.apply_op(ctx, op);
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        debug_assert_eq!(self.ver, v);
        if op.kind == OpKind::Add {
            ctx.send(
                op.target,
                Msg::Welcome {
                    members: self.view.to_vec(),
                    ver: self.ver,
                    seq: self.seq.clone(),
                    mgr: self.me,
                },
            );
        }
        if self.cfg.compression {
            let nxt = self.mgr_pick_next();
            ctx.broadcast(
                self.others(),
                Msg::Commit {
                    op,
                    ver: v,
                    next: nxt,
                    faulty: self.faulty_vec(),
                    recovered: self.recovered_vec(),
                },
            );
            if let Some(n) = nxt {
                let pending = self.await_set();
                self.role = Role::MgrAwait {
                    op: n,
                    ver: v + 1,
                    pending,
                    oks: BTreeSet::new(),
                };
                self.mgr_check_complete(ctx);
            } else {
                self.role = Role::MgrIdle;
            }
        } else {
            ctx.broadcast(
                self.others(),
                Msg::Commit {
                    op,
                    ver: v,
                    next: None,
                    faulty: self.faulty_vec(),
                    recovered: self.recovered_vec(),
                },
            );
            self.role = Role::MgrIdle;
            self.mgr_start_update(ctx); // fresh invitation for the next op
        }
    }

    // ------------------------------------------------------------------
    // Outer process: update protocol (Fig. 9)
    // ------------------------------------------------------------------

    fn on_invite(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, op: Op, v: Ver) {
        if from != self.mgr || !matches!(self.role, Role::Outer) {
            return;
        }
        if v <= self.ver {
            return; // stale duplicate
        }
        if v > self.ver + 1 {
            self.buffered.push((from, Msg::Invite { op, ver: v }));
            return;
        }
        if op.removes(self.me) {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        match op.kind {
            OpKind::Remove => self.handle_faulty(ctx, op.target, FaultySource::Gossip),
            OpKind::Add => ctx.note(Note::Operating { id: op.target }),
        }
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        self.next = vec![NextEntry::concrete(vec![op], self.mgr, v)];
        ctx.send(self.mgr, Msg::UpdateOk { ver: v });
    }

    fn on_update_ok(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, v: Ver) {
        let complete = match &mut self.role {
            Role::MgrAwait {
                ver, pending, oks, ..
            } if *ver == v => {
                if pending.remove(&from) {
                    oks.insert(from);
                }
                pending.is_empty()
            }
            _ => false,
        };
        if complete {
            self.mgr_oks_complete(ctx);
        }
    }

    // One parameter per field of the paper's commit message; bundling them
    // into a struct would just duplicate `Msg::Commit`.
    #[allow(clippy::too_many_arguments)]
    fn on_commit(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ProcessId,
        op: Op,
        v: Ver,
        nxt: Option<Op>,
        f: Vec<ProcessId>,
        r: Vec<ProcessId>,
    ) {
        if from != self.mgr || !matches!(self.role, Role::Outer) {
            return;
        }
        if v > self.ver + 1 {
            self.buffered.push((
                from,
                Msg::Commit {
                    op,
                    ver: v,
                    next: nxt,
                    faulty: f,
                    recovered: r,
                },
            ));
            return;
        }
        if v < self.ver {
            return; // stale
        }
        if f.contains(&self.me) || nxt.map(|n| n.removes(self.me)).unwrap_or(false) {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        if v == self.ver {
            // Already installed (e.g. a joiner bootstrapped by `Welcome` at
            // this very version): only the contingent part matters.
            self.process_contingent(ctx, nxt, &f, &r);
            return;
        }
        // v == self.ver + 1: apply.
        for &q in &f {
            if q != op.target {
                self.handle_faulty(ctx, q, FaultySource::Gossip);
                if self.lifecycle == Lifecycle::Stopped {
                    return;
                }
            }
        }
        for &j in &r {
            ctx.note(Note::Operating { id: j });
        }
        if op.removes(self.me) {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        self.apply_op(ctx, op);
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        self.process_contingent(ctx, nxt, &[], &[]);
        self.drain_buffer(ctx);
    }

    /// Handles the `Contingent(next-op(next-id) : F : R)` part of a commit:
    /// under compression it doubles as the next invitation (§3.1).
    fn process_contingent(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        nxt: Option<Op>,
        f: &[ProcessId],
        r: &[ProcessId],
    ) {
        for &q in f {
            self.handle_faulty(ctx, q, FaultySource::Gossip);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        for &j in r {
            ctx.note(Note::Operating { id: j });
        }
        match nxt {
            Some(n) => {
                if n.removes(self.me) {
                    self.do_quit(ctx, QuitReason::Excluded);
                    return;
                }
                match n.kind {
                    OpKind::Remove => {
                        self.handle_faulty(ctx, n.target, FaultySource::Gossip);
                        if self.lifecycle == Lifecycle::Stopped {
                            return;
                        }
                    }
                    OpKind::Add => ctx.note(Note::Operating { id: n.target }),
                }
                self.next = vec![NextEntry::concrete(vec![n], self.mgr, self.ver + 1)];
                ctx.send(self.mgr, Msg::UpdateOk { ver: self.ver + 1 });
            }
            None => {
                self.next.clear();
            }
        }
    }

    /// Replays buffered future-view messages that have become current.
    fn drain_buffer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
            let cur = self.ver;
            // Discard obsolete entries.
            self.buffered.retain(|(_, m)| match m {
                Msg::Invite { ver, .. } | Msg::Commit { ver, .. } => *ver > cur,
                _ => true,
            });
            let pos = self.buffered.iter().position(|(_, m)| match m {
                Msg::Invite { ver, .. } => *ver == cur + 1,
                Msg::Commit { ver, .. } => *ver == cur + 1,
                _ => false,
            });
            let Some(pos) = pos else { return };
            let (from, msg) = self.buffered.remove(pos);
            self.dispatch(ctx, from, msg);
            if self.ver == cur && !matches!(self.role, Role::Outer) {
                return;
            }
            if self.ver == cur {
                // Nothing advanced (the buffered message was an invite):
                // wait for more traffic.
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Reconfiguration (Figs. 5, 10)
    // ------------------------------------------------------------------

    fn start_reconf(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.note(Note::ReconfStarted { from_ver: self.ver });
        ctx.broadcast(self.others(), Msg::Interrogate);
        let my_resp = PhaseOneResp {
            from: self.me,
            ver: self.ver,
            seq: self.seq.clone(),
            next: self.next.clone(),
        };
        let pending = self.await_set();
        self.role = Role::ReconfInterrogate {
            pending,
            resp: vec![my_resp],
        };
        let done =
            matches!(&self.role, Role::ReconfInterrogate { pending, .. } if pending.is_empty());
        if done {
            self.reconf_phase1_complete(ctx);
        }
    }

    fn on_interrogate(&mut self, ctx: &mut Ctx<'_, Msg>, r: ProcessId) {
        if !matches!(self.lifecycle, Lifecycle::Active) {
            return;
        }
        let (Some(ri), Some(mi)) = (self.view.index_of(r), self.view.index_of(self.me)) else {
            return; // unknown initiator: stale
        };
        // Fig. 10: a process ranked above the initiator is in HiFaulty(r)
        // and is being excluded — it quits.
        if ri > mi {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        // Respond with the pre-placeholder state (§4.4 ordering).
        ctx.send(
            r,
            Msg::InterrogateOk {
                ver: self.ver,
                seq: self.seq.clone(),
                next: self.next.clone(),
            },
        );
        // Infer HiFaulty(r): every member senior to r (§4.5).
        for s in self.view.seniors_of(r).to_vec() {
            self.handle_faulty(ctx, s, FaultySource::HiFaultyInference);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        self.next.push(NextEntry::placeholder(r));
    }

    fn on_interrogate_ok(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ProcessId,
        ver: Ver,
        seq: Vec<Op>,
        next: Vec<NextEntry>,
    ) {
        let complete = match &mut self.role {
            Role::ReconfInterrogate { pending, resp } => {
                if pending.remove(&from) {
                    resp.push(PhaseOneResp {
                        from,
                        ver,
                        seq,
                        next,
                    });
                }
                pending.is_empty()
            }
            _ => return,
        };
        if complete {
            self.reconf_phase1_complete(ctx);
        }
    }

    fn reconf_phase1_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Role::ReconfInterrogate { resp, .. } = std::mem::replace(&mut self.role, Role::Outer)
        else {
            return;
        };
        let got = resp.len(); // includes this initiator
        let needed = self.view.majority();
        if got < needed {
            self.do_quit(ctx, QuitReason::NoMajority { got, needed });
            return;
        }
        let queue = self.queue_ops();
        let decision = determine(&resp[0], &resp[1..], &self.view, self.mgr, &queue);
        if !self.cfg.three_phase_reconfig {
            // Claim 7.2 baseline: commit directly after interrogation. The
            // proposal phase is what plants each initiator's plan in the
            // respondents' `next` lists; skipping it makes invisible commits
            // undetectable — see `gmp-baselines` for the counterexample.
            self.reconf_commit_now(ctx, decision.v, decision.rl, decision.invis);
            return;
        }
        ctx.broadcast(
            self.others(),
            Msg::Propose {
                rl: decision.rl.clone(),
                ver: decision.v,
                invis: decision.invis.clone(),
                faulty: self.faulty_vec(),
            },
        );
        let pending = self.await_set();
        self.role = Role::ReconfPropose {
            v: decision.v,
            rl: decision.rl,
            invis: decision.invis,
            pending,
            oks: BTreeSet::new(),
        };
        let done = matches!(&self.role, Role::ReconfPropose { pending, .. } if pending.is_empty());
        if done {
            self.reconf_phase2_complete(ctx);
        }
    }

    fn on_propose(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ProcessId,
        rl: Vec<Op>,
        v: Ver,
        invis: Vec<Op>,
        f: Vec<ProcessId>,
    ) {
        if !matches!(self.role, Role::Outer) || self.lifecycle != Lifecycle::Active {
            return;
        }
        if v < self.ver {
            return; // initiator is behind us: stale
        }
        if f.contains(&self.me)
            || rl.iter().any(|op| op.removes(self.me))
            || invis.iter().any(|op| op.removes(self.me))
        {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        for &q in &f {
            self.handle_faulty(ctx, q, FaultySource::Gossip);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        // "p executes faulty_p(RL_r) upon receipt of r's proposal" (§6).
        for op in &rl {
            if op.kind == OpKind::Remove {
                self.mark_faulty_quiet(ctx, op.target, FaultySource::Gossip);
            }
        }
        self.next = vec![NextEntry::concrete(rl, from, v)];
        ctx.send(from, Msg::ProposeOk { ver: v });
    }

    fn on_propose_ok(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, v: Ver) {
        let complete = match &mut self.role {
            Role::ReconfPropose {
                v: pv,
                pending,
                oks,
                ..
            } if *pv == v => {
                if pending.remove(&from) {
                    oks.insert(from);
                }
                pending.is_empty()
            }
            _ => return,
        };
        if complete {
            self.reconf_phase2_complete(ctx);
        }
    }

    fn reconf_phase2_complete(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Role::ReconfPropose {
            v, rl, invis, oks, ..
        } = std::mem::replace(&mut self.role, Role::Outer)
        else {
            return;
        };
        let got = oks.len() + 1;
        let needed = self.view.majority();
        if got < needed {
            self.do_quit(ctx, QuitReason::NoMajority { got, needed });
            return;
        }
        self.reconf_commit_now(ctx, v, rl, invis);
    }

    /// Phase III: install `rl`, announce the commit, and assume the `Mgr`
    /// role on the contingent plan.
    fn reconf_commit_now(&mut self, ctx: &mut Ctx<'_, Msg>, v: Ver, rl: Vec<Op>, invis: Vec<Op>) {
        // The commit's authority *is* the new coordinator: attribute the
        // installed views (and observer notifications) to it.
        self.mgr = self.me;
        self.apply_rl(ctx, &rl, v);
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        ctx.note(Note::BecameMgr { ver: self.ver });
        let carried_invis = if self.cfg.compression {
            invis.clone()
        } else {
            Vec::new()
        };
        ctx.broadcast(
            self.others(),
            Msg::ReconfCommit {
                rl,
                ver: v,
                invis: carried_invis,
                faulty: self.faulty_vec(),
            },
        );
        self.next.clear();
        // Begin the Mgr role on the contingent plan.
        self.forced = invis.iter().copied().collect();
        if self.cfg.compression && invis.first().map(|&op| self.op_valid(op)).unwrap_or(false) {
            // The reconfiguration commit doubled as the invitation for the
            // first contingent operation: go straight to the await phase.
            let op = self.forced.pop_front().expect("plan is non-empty");
            let vnext = self.ver + 1;
            let pending = self.await_set();
            self.role = Role::MgrAwait {
                op,
                ver: vnext,
                pending,
                oks: BTreeSet::new(),
            };
            self.mgr_check_complete(ctx);
        } else {
            // No usable plan (or compression off): fresh invitations.
            self.role = Role::MgrIdle;
            self.mgr_start_update(ctx);
        }
    }

    fn on_reconf_commit(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ProcessId,
        rl: Vec<Op>,
        v: Ver,
        invis: Vec<Op>,
        f: Vec<ProcessId>,
    ) {
        if !matches!(self.role, Role::Outer) || self.lifecycle != Lifecycle::Active {
            return;
        }
        if v < self.ver {
            return;
        }
        if f.contains(&self.me)
            || rl.iter().any(|op| op.removes(self.me))
            || invis.first().map(|op| op.removes(self.me)).unwrap_or(false)
        {
            self.do_quit(ctx, QuitReason::Excluded);
            return;
        }
        for &q in &f {
            self.handle_faulty(ctx, q, FaultySource::Gossip);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        self.mgr = from; // the commit's authority is the new coordinator
        self.apply_rl(ctx, &rl, v);
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        // Compressed continuation: the commit doubles as the invitation for
        // the first contingent operation.
        match invis.first().copied() {
            Some(n) => {
                match n.kind {
                    OpKind::Remove => {
                        self.handle_faulty(ctx, n.target, FaultySource::Gossip);
                        if self.lifecycle == Lifecycle::Stopped {
                            return;
                        }
                    }
                    OpKind::Add => ctx.note(Note::Operating { id: n.target }),
                }
                self.next = vec![NextEntry::concrete(vec![n], from, self.ver + 1)];
                ctx.send(from, Msg::UpdateOk { ver: self.ver + 1 });
            }
            None => self.next.clear(),
        }
        // GMP-5 liveness: surviving suspicions reach the new coordinator.
        self.report_suspects(ctx);
        self.drain_buffer(ctx);
    }

    fn report_suspects(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.mgr == self.me || self.faulty.contains(&self.mgr) {
            return;
        }
        let now = ctx.now();
        let suspects: Vec<ProcessId> = self
            .faulty
            .iter()
            .filter(|q| self.view.contains(**q) && **q != self.mgr)
            .copied()
            .collect();
        for q in suspects {
            ctx.send(self.mgr, Msg::FaultyReport { suspect: q });
            if let Some(r) = self.peer_ref(q) {
                self.last_report.set(r, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Joins (§7)
    // ------------------------------------------------------------------

    fn on_join_request(&mut self, ctx: &mut Ctx<'_, Msg>, joiner: ProcessId) {
        if self.lifecycle != Lifecycle::Active || joiner == self.me {
            return;
        }
        if self.view.contains(joiner) {
            // Already a member (it may have missed its Welcome): any member
            // can re-welcome it.
            ctx.send(
                joiner,
                Msg::Welcome {
                    members: self.view.to_vec(),
                    ver: self.ver,
                    seq: self.seq.clone(),
                    mgr: self.mgr,
                },
            );
            return;
        }
        if self.is_mgr() {
            if !self.recovered.contains(&joiner) && !self.iso.is_isolated(joiner) {
                self.recovered.push_back(joiner);
                ctx.note(Note::JoinRequested { joiner });
                if matches!(self.role, Role::MgrIdle) {
                    self.mgr_start_update(ctx);
                }
            }
        } else if !self.faulty.contains(&self.mgr) && self.mgr != self.me {
            ctx.send(self.mgr, Msg::JoinRequest { joiner });
        }
    }

    fn on_welcome(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ProcessId,
        members: Vec<ProcessId>,
        v: Ver,
        seq: Vec<Op>,
        mgr: ProcessId,
    ) {
        if self.lifecycle != Lifecycle::Joining {
            return;
        }
        self.view = View::new(members);
        self.ver = v;
        self.seq = seq;
        self.mgr = mgr;
        self.lifecycle = Lifecycle::Active;
        self.role = Role::Outer;
        // Bootstrap grace: members only start heartbeating this joiner once
        // *their* copy of the add-commit arrives, which can lag well behind
        // the Welcome if the coordinator fails mid-broadcast. Future-dating
        // the first life sign gives them three full timeout windows before
        // the joiner may suspect anyone it has never heard from.
        let grace = ctx.now() + 2 * self.cfg.suspect_after;
        self.install_topology(grace);
        // The welcomer demonstrably executes the protocol; other view
        // members may themselves still be joining, so they stay
        // unconfirmed until their first message arrives here.
        self.confirm_peer(from);
        self.events.push(MemberEvent::Welcomed {
            ver: self.ver,
            members: self.view.to_vec(),
            mgr: self.mgr,
        });
        ctx.note(Note::ViewInstalled {
            ver: self.ver,
            members: self.view.to_vec(),
            mgr: self.mgr,
        });
        ctx.set_timer(self.cfg.heartbeat_every, TICK);
        // Replay coordinator rounds that overtook this Welcome (see the
        // `Joining` arm of `on_message`). `dispatch` re-buffers anything
        // still ahead of the installed view; stale entries fail the
        // handlers' version guards.
        let held = std::mem::take(&mut self.buffered);
        for (sender, msg) in held {
            if self.lifecycle != Lifecycle::Active {
                break;
            }
            if let Some(r) = self.peer_ref(sender) {
                self.fd.heard_from_ref(r, ctx.now());
            }
            self.confirm_peer(sender);
            self.dispatch(ctx, sender, msg);
        }
    }

    // ------------------------------------------------------------------
    // Observer side (§8 hierarchical service)
    // ------------------------------------------------------------------

    /// Handles a view notification at an observer.
    fn on_view_update(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        members: Vec<ProcessId>,
        v: Ver,
        mgr: ProcessId,
    ) {
        let Some(obs) = self.obs.as_mut() else { return };
        obs.last_update = ctx.now();
        obs.subscribed = true;
        if obs.seen_any && v <= obs.ver {
            return; // stale or duplicate snapshot
        }
        obs.view = View::new(members.clone());
        obs.ver = v;
        obs.mgr = mgr;
        obs.seen_any = true;
        ctx.note(Note::ObservedView {
            ver: v,
            members,
            mgr,
        });
    }

    /// Periodic observer maintenance: subscribe, detect a dead contact,
    /// fail over to the next one.
    fn on_observe_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.lifecycle != Lifecycle::Observing {
            return;
        }
        let poll_every = self
            .cfg
            .observe
            .as_ref()
            .expect("observer config")
            .poll_every;
        let now = ctx.now();
        let Some(obs) = self.obs.as_mut() else { return };
        // Fail-over candidates: configured contacts plus every member we
        // have observed (the service outlives any single member).
        let mut candidates: Vec<ProcessId> = obs.contacts.clone();
        for m in obs.view.iter() {
            if !candidates.contains(&m) {
                candidates.push(m);
            }
        }
        let stale = now.saturating_sub(obs.last_update) >= self.cfg.suspect_after;
        if stale {
            if obs.subscribed || obs.last_update > 0 {
                obs.idx = (obs.idx + 1) % candidates.len();
            }
            obs.subscribed = false;
            obs.last_update = now;
        }
        let contact = candidates[obs.idx % candidates.len()];
        if !obs.subscribed {
            ctx.send(contact, Msg::Subscribe);
        }
        ctx.set_timer(poll_every, OBSERVE);
    }

    // ------------------------------------------------------------------
    // Periodic tick: heartbeats + failure detection (F1)
    // ------------------------------------------------------------------

    fn on_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.lifecycle != Lifecycle::Active {
            return;
        }
        let now = ctx.now();

        // Apply injected (spurious) suspicions and detector timeouts
        // *before* choosing heartbeat targets: S1 starts at the suspicion,
        // so a peer declared faulty at this very tick must not receive one
        // more heartbeat from us.
        let injected = std::mem::take(&mut self.injected);
        for q in injected {
            self.handle_faulty(ctx, q, FaultySource::Injected);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }
        for q in self.fd.tick(now) {
            self.handle_faulty(ctx, q, FaultySource::Observation);
            if self.lifecycle == Lifecycle::Stopped {
                return;
            }
        }

        // Heartbeat fan-out. The faulty set is materialized at most once per
        // tick (and only when it changed), wrapped in an `Arc`-shared
        // snapshot, and fanned out by reference: per-recipient payload cost
        // is an O(1) clone of the digest, not a fresh `Vec`. The full set
        // travels only on the first beat to a peer after a change — every
        // later beat on that (reliable FIFO) link is a pure life sign, so
        // the gossip states receivers reach are exactly those of flooding.
        // NB: `sent` marks the epoch at *send* time, which is only sound on
        // the model's reliable channels (§2.1) *and* only for a receiver
        // that will actually process the beat. A `Joining` receiver
        // discards everything but `Welcome`, so a carrying beat that
        // overlaps the join window would be eaten and never retransmitted —
        // the joiner would miss this member's faulty set until it next
        // changed. The epoch is therefore marked sent only once the peer is
        // `confirmed` Active (we received some message from it other than
        // its own `JoinRequest`; lifecycle is monotone past `Active`, so
        // later beats can never land on a `Joining` receiver again). Until
        // then the snapshot is re-carried on every beat — an O(1) `Arc`
        // clone, no extra messages and no extra materializations. Lossy
        // `BlockMode::Drop` links would break the marking the same way,
        // and stay reserved for the baseline counterexample protocols.
        if self.cfg.gossip && !self.faulty.iter().copied().eq(self.hb.last.iter().copied()) {
            self.hb.epoch += 1;
            self.hb.last = self.faulty_vec(); // once per tick, not per target
            self.hb.snapshot = if self.hb.last.is_empty() {
                None
            } else {
                self.hb.builds += 1;
                Some(Shared::from(self.hb.last.clone()))
            };
        }
        // Heartbeats (and their digests) go to the *monitoring set*, not
        // the whole view — under the default Flat topology these coincide.
        // Suspicion relay on sparse graphs falls out of this line plus the
        // epoch bump above: learning `Faulty{q}` (by timeout or digest)
        // changes `self.faulty`, which re-publishes the snapshot to
        // exactly these monitors on this very tick.
        let targets: Vec<ProcessId> = self
            .topo_monitored
            .iter()
            .copied()
            .filter(|p| !self.faulty.contains(p))
            .collect();
        let snapshot = self.hb.snapshot.clone();
        let epoch = self.hb.epoch;
        for p in targets {
            let digest = match (&snapshot, self.peer_ref(p)) {
                (Some(set), Some(r)) => {
                    let peer = self.hb.peers.entry(r);
                    if peer.sent == Some(epoch) {
                        HeartbeatDigest::empty()
                    } else {
                        if peer.confirmed {
                            peer.sent = Some(epoch);
                        }
                        HeartbeatDigest::snapshot(set.clone())
                    }
                }
                _ => HeartbeatDigest::empty(),
            };
            ctx.send(p, Msg::Heartbeat { digest });
        }

        // Periodic re-reports keep GMP-5 live across coordinator changes
        // and lost observers.
        if !self.is_mgr() && self.mgr != self.me && !self.faulty.contains(&self.mgr) {
            let due: Vec<ProcessId> = self
                .faulty
                .iter()
                .filter(|q| self.view.contains(**q))
                .filter(|q| {
                    self.peer_ref(**q)
                        .and_then(|r| self.last_report.get(r))
                        .map(|&t| now.saturating_sub(t) >= self.cfg.suspect_after)
                        .unwrap_or(true)
                })
                .copied()
                .collect();
            for q in due {
                ctx.send(self.mgr, Msg::FaultyReport { suspect: q });
                if let Some(r) = self.peer_ref(q) {
                    self.last_report.set(r, now);
                }
            }
        }

        ctx.set_timer(self.cfg.heartbeat_every, TICK);
    }

    /// Central message dispatch (shared by live delivery and buffer replay).
    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
        match msg {
            Msg::Heartbeat { digest } => {
                if self.cfg.gossip {
                    for q in digest.faulty() {
                        if q != self.me {
                            self.handle_faulty(ctx, q, FaultySource::Gossip);
                            if self.lifecycle == Lifecycle::Stopped {
                                return;
                            }
                        }
                    }
                }
            }
            Msg::FaultyReport { suspect } => {
                if self.is_mgr() {
                    self.handle_faulty(ctx, suspect, FaultySource::Gossip);
                }
            }
            Msg::JoinRequest { joiner } => self.on_join_request(ctx, joiner),
            Msg::Invite { op, ver } => self.on_invite(ctx, from, op, ver),
            Msg::UpdateOk { ver } => self.on_update_ok(ctx, from, ver),
            Msg::Commit {
                op,
                ver,
                next,
                faulty,
                recovered,
            } => self.on_commit(ctx, from, op, ver, next, faulty, recovered),
            Msg::Interrogate => self.on_interrogate(ctx, from),
            Msg::InterrogateOk { ver, seq, next } => {
                self.on_interrogate_ok(ctx, from, ver, seq, next)
            }
            Msg::Propose {
                rl,
                ver,
                invis,
                faulty,
            } => self.on_propose(ctx, from, rl, ver, invis, faulty),
            Msg::ProposeOk { ver } => self.on_propose_ok(ctx, from, ver),
            Msg::ReconfCommit {
                rl,
                ver,
                invis,
                faulty,
            } => self.on_reconf_commit(ctx, from, rl, ver, invis, faulty),
            Msg::Welcome {
                members,
                ver,
                seq,
                mgr,
            } => self.on_welcome(ctx, from, members, ver, seq, mgr),
            Msg::Subscribe => {
                if self.lifecycle == Lifecycle::Active {
                    self.subscribers.insert(from);
                    ctx.send(
                        from,
                        Msg::ViewUpdate {
                            members: self.view.to_vec(),
                            ver: self.ver,
                            mgr: self.mgr,
                        },
                    );
                }
            }
            Msg::ViewUpdate { .. } => {} // members ignore stray updates
        }
    }
}

impl Node<Msg> for Member {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.me = ctx.id();
        if self.obs.is_some() {
            let at = self
                .cfg
                .observe
                .as_ref()
                .expect("observer config")
                .at
                .max(1);
            ctx.set_timer(at, OBSERVE);
            return;
        }
        match self.cfg.join.clone() {
            Some(join) => {
                self.lifecycle = Lifecycle::Joining;
                let delay = join.at.max(1);
                ctx.set_timer(delay, JOIN);
            }
            None => {
                assert!(
                    self.view.contains(self.me),
                    "initial member {} must appear in its initial view",
                    self.me
                );
                let now = ctx.now();
                self.install_topology(now);
                // GMP-0: the initial membership is commonly known and every
                // initial member starts `Active`, so digests to monitored
                // peers may be delta-encoded from the first beat.
                for p in self.topo_monitored.clone() {
                    self.confirm_peer(p);
                }
                self.events.push(MemberEvent::ViewInstalled {
                    ver: 0,
                    members: self.view.to_vec(),
                    mgr: self.mgr,
                });
                ctx.note(Note::ViewInstalled {
                    ver: 0,
                    members: self.view.to_vec(),
                    mgr: self.mgr,
                });
                if self.mgr == self.me {
                    self.role = Role::MgrIdle;
                    ctx.note(Note::BecameMgr { ver: 0 });
                }
                ctx.set_timer(self.cfg.heartbeat_every, TICK);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        // S1: messages from perceived-faulty processes are discarded.
        if self.iso.is_isolated(from) {
            ctx.note(Note::Isolated { from });
            return;
        }
        if self.lifecycle == Lifecycle::Joining {
            match msg {
                Msg::Welcome {
                    members,
                    ver,
                    seq,
                    mgr,
                } => self.on_welcome(ctx, from, members, ver, seq, mgr),
                // Coordinator rounds addressed to this process as an
                // already-added member can overtake its Welcome (the add
                // commits first, and the Welcome may need a retried join
                // request if the original welcomer died). Invitations and
                // interrogations are never retransmitted, so discarding
                // them would wedge the coordinator awaiting this process's
                // response. Hold them and replay once a Welcome installs a
                // view; each handler's version guard discards stale ones.
                Msg::Invite { .. }
                | Msg::Commit { .. }
                | Msg::Interrogate
                | Msg::Propose { .. }
                | Msg::ReconfCommit { .. } => self.buffered.push((from, msg)),
                _ => {}
            }
            return;
        }
        if self.lifecycle == Lifecycle::Observing {
            if let Msg::ViewUpdate { members, ver, mgr } = msg {
                self.on_view_update(ctx, members, ver, mgr);
            }
            return;
        }
        // Ref-addressed life sign: the handle cached at track time replaces
        // the id→slot resolve on every received message. The
        // generation-checked lease read subsumes the id path's guards — a
        // suspected peer's lease was cleared, a forgotten peer's handle was
        // dropped with its slot, and a stranger has no handle at all.
        if let Some(r) = self.peer_ref(from) {
            self.fd.heard_from_ref(r, ctx.now());
        }
        // Any message except the sender's own `JoinRequest` is evidence the
        // sender reached `Active` (joiners emit join requests while still
        // `Joining`; everything else is sent by active members — observers'
        // `Subscribe`s come from processes without a roster slot, so
        // confirming them is a structural no-op). A *forwarded* join
        // request (`joiner != from`) does confirm the forwarder.
        if !matches!(&msg, Msg::JoinRequest { joiner } if *joiner == from) {
            self.confirm_peer(from);
        }
        self.dispatch(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if self.lifecycle == Lifecycle::Stopped {
            return;
        }
        match tag {
            TICK => self.on_tick(ctx),
            JOIN if self.lifecycle == Lifecycle::Joining => {
                let join = self.cfg.join.clone().expect("joiner has join config");
                for c in &join.contacts {
                    ctx.send(*c, Msg::JoinRequest { joiner: self.me });
                }
                ctx.set_timer(join.retry_every, JOIN);
            }
            OBSERVE => self.on_observe_tick(ctx),
            _ => {}
        }
    }
}
