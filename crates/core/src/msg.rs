//! Protocol messages of the full algorithm (§3, §4.5, §7.1).

use gmp_sim::{Message, Shared};
use gmp_types::{NextEntry, Op, ProcessId, Ver};

/// The gossip payload (F2) piggybacked on a heartbeat, delta-encoded.
///
/// The paper treats the faulty set as a single gossip source; re-flooding
/// it on every beat to every peer is pure overhead (§2.2 costs protocols in
/// *messages*, and the message count is unchanged either way). A digest
/// therefore carries the sender's full faulty set only on the first beat to
/// a peer after the set changed — as an [`Shared`]-backed snapshot built
/// once per change, not once per target — and is an empty pure life sign
/// otherwise. Links are reliable FIFO (§2.1), so every peer observes the
/// carrying beat before any later empty one and the gossip states reached
/// are exactly those of full-set flooding.
#[derive(Clone, Debug)]
pub struct HeartbeatDigest {
    /// `Some(set)`: the sender's complete faulty set as of this beat.
    /// `None`: unchanged since the last set this peer was sent (or empty).
    faulty: Option<Shared<[ProcessId]>>,
}

impl HeartbeatDigest {
    /// A pure life sign: the receiver's view of the sender's faulty set is
    /// already current (or the set is empty).
    pub fn empty() -> Self {
        HeartbeatDigest { faulty: None }
    }

    /// A beat carrying the sender's full faulty set. The snapshot is shared:
    /// cloning this digest per broadcast recipient copies nothing.
    pub fn snapshot(set: Shared<[ProcessId]>) -> Self {
        HeartbeatDigest { faulty: Some(set) }
    }

    /// True when this beat carries a faulty-set snapshot.
    pub fn carries_set(&self) -> bool {
        self.faulty.is_some()
    }

    /// The carried faulty set; empty for a pure life sign.
    pub fn faulty(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.faulty.iter().flat_map(|s| s.iter().copied())
    }
}

/// Messages exchanged by [`Member`](crate::Member) processes.
///
/// Version fields always name the view version the message is *about* (the
/// version an invite proposes to install, the version a commit installs).
#[derive(Clone, Debug)]
pub enum Msg {
    /// Periodic life sign; carries delta-encoded faulty-set gossip when F2
    /// is enabled.
    Heartbeat {
        /// The piggybacked gossip digest.
        digest: HeartbeatDigest,
    },
    /// An outer process asks `Mgr` to start the exclusion algorithm for
    /// `suspect` (§3.1: "it sends a message to Mgr, requesting that it
    /// start the removal algorithm").
    FaultyReport {
        /// The perceived-faulty process.
        suspect: ProcessId,
    },
    /// A process outside the group asks to be added (§7). Members forward
    /// this to their `Mgr`.
    JoinRequest {
        /// The process that wants to join.
        joiner: ProcessId,
    },
    /// Phase I of the update algorithm: `Invite(op(proc-id))` (Fig. 8).
    Invite {
        /// The proposed membership change.
        op: Op,
        /// The version the change would install (`ver(Mgr)+1`).
        ver: Ver,
    },
    /// An outer process's `OK` response to an invitation or to the
    /// contingent part of a commit (condensed rounds, §3.1).
    UpdateOk {
        /// The version being agreed to.
        ver: Ver,
    },
    /// Phase II of the update algorithm:
    /// `Commit(op(proc-id)) : Contingent(next-op(next-id) : Faulty : Recovered)`.
    Commit {
        /// The committed change.
        op: Op,
        /// The version this commit installs.
        ver: Ver,
        /// `Mgr`'s plan for the next change, doubling as the next
        /// invitation under compression (`None` outside condensed rounds).
        next: Option<Op>,
        /// `Faulty(Mgr)`: contingent removals the receivers must regard as
        /// faulty (F2 propagation).
        faulty: Vec<ProcessId>,
        /// `Recovered(Mgr)`: queued joiners.
        recovered: Vec<ProcessId>,
    },
    /// Phase I of reconfiguration: the initiator's interrogation (§4.5).
    Interrogate,
    /// An outer process's Phase I response `OK(seq(p), next(p))`.
    InterrogateOk {
        /// Responder's local version.
        ver: Ver,
        /// Responder's committed operation sequence `seq(p)`.
        seq: Vec<Op>,
        /// Responder's expectation list `next(p)`.
        next: Vec<NextEntry>,
    },
    /// Phase II of reconfiguration:
    /// `Propose((RL_r : r : v) : (invis, Faulty(r)))`.
    Propose {
        /// The reconfiguration proposal `RL_r`.
        rl: Vec<Op>,
        /// The version `RL_r` installs.
        ver: Ver,
        /// The contingent plan the initiator will execute as the new `Mgr`.
        invis: Vec<Op>,
        /// `Faulty(r)`.
        faulty: Vec<ProcessId>,
    },
    /// An outer process's Phase II `OK`.
    ProposeOk {
        /// The proposed version being acknowledged.
        ver: Ver,
    },
    /// Phase III of reconfiguration:
    /// `Commit(RL_r) : (invis, Faulty(r))`.
    ReconfCommit {
        /// The committed reconfiguration proposal.
        rl: Vec<Op>,
        /// The version installed.
        ver: Ver,
        /// Contingent plan (doubles as the first invitation of the new
        /// `Mgr` under compression).
        invis: Vec<Op>,
        /// `Faulty(r)`.
        faulty: Vec<ProcessId>,
    },
    /// State transfer to a newly added member (implementation addition; see
    /// `DESIGN.md` substitutions).
    Welcome {
        /// Seniority-ordered membership of the current view.
        members: Vec<ProcessId>,
        /// Current version.
        ver: Ver,
        /// Committed operation sequence (so the joiner can serve future
        /// interrogations).
        seq: Vec<Op>,
        /// The current coordinator.
        mgr: ProcessId,
    },
    /// An external *observer* asks a member to stream view changes to it —
    /// the hierarchical management service sketched in §8 ("by not
    /// requiring processes to be members of their own local views").
    Subscribe,
    /// A view notification pushed to subscribed observers.
    ViewUpdate {
        /// Seniority-ordered membership.
        members: Vec<ProcessId>,
        /// The version of this view.
        ver: Ver,
        /// The sender's coordinator.
        mgr: ProcessId,
    },
}

impl Message for Msg {
    fn tag(&self) -> &'static str {
        match self {
            Msg::Heartbeat { .. } => "heartbeat",
            Msg::FaultyReport { .. } => "faulty-report",
            Msg::JoinRequest { .. } => "join-request",
            Msg::Invite { .. } => "invite",
            Msg::UpdateOk { .. } => "update-ok",
            Msg::Commit { .. } => "commit",
            Msg::Interrogate => "interrogate",
            Msg::InterrogateOk { .. } => "interrogate-ok",
            Msg::Propose { .. } => "propose",
            Msg::ProposeOk { .. } => "propose-ok",
            Msg::ReconfCommit { .. } => "reconf-commit",
            Msg::Welcome { .. } => "welcome",
            Msg::Subscribe => "subscribe",
            Msg::ViewUpdate { .. } => "view-update",
        }
    }
}

/// Tags counted by the §7.2 message-complexity experiments: the update and
/// reconfiguration protocol proper, excluding heartbeats, suspicion reports,
/// join requests and state transfer (see `EXPERIMENTS.md`).
pub const PROTOCOL_TAGS: [&str; 8] = [
    "invite",
    "update-ok",
    "commit",
    "interrogate",
    "interrogate-ok",
    "propose",
    "propose-ok",
    "reconf-commit",
];

/// True when `tag` belongs to the §7.2 counting convention.
pub fn is_protocol_tag(tag: &str) -> bool {
    PROTOCOL_TAGS.contains(&tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable_and_counted_correctly() {
        assert_eq!(Msg::Interrogate.tag(), "interrogate");
        assert_eq!(
            Msg::Heartbeat {
                digest: HeartbeatDigest::empty()
            }
            .tag(),
            "heartbeat"
        );
        assert!(is_protocol_tag("invite"));
        assert!(is_protocol_tag("reconf-commit"));
        assert!(!is_protocol_tag("heartbeat"));
        assert!(!is_protocol_tag("welcome"));
        assert!(!is_protocol_tag("faulty-report"));
    }

    #[test]
    fn digest_clones_share_the_snapshot() {
        let set: Shared<[ProcessId]> = vec![ProcessId(3), ProcessId(7)].into();
        let d = HeartbeatDigest::snapshot(set.clone());
        let fanned = d.clone(); // what broadcast does per recipient
        assert!(d.carries_set() && fanned.carries_set());
        assert_eq!(
            fanned.faulty().collect::<Vec<_>>(),
            vec![ProcessId(3), ProcessId(7)]
        );
        assert!(
            Shared::ptr_eq(&set, d.faulty.as_ref().unwrap()),
            "digest wraps, never copies, the snapshot"
        );

        let beat = HeartbeatDigest::empty();
        assert!(!beat.carries_set());
        assert_eq!(beat.faulty().count(), 0);
    }
}
