//! The reconfiguration decision procedures `Determine` and `GetStable`
//! (Fig. 6), and the `ProposalsForVer` sets of §4.4–§4.5.
//!
//! These are pure functions of the initiator's state and its Phase I
//! responses, which makes the case analysis of §5 directly unit- and
//! property-testable.
//!
//! Two indexing ambiguities in the paper's pseudo-code are resolved here as
//! documented in `DESIGN.md`:
//!
//! * in the `L = S = ∅` branch we examine `ProposalsForVer(v)` with
//!   `v = ver(r)+1` (the paper writes `v+1`, but by Prop. 5.3 respondents
//!   can hold proposals only up to `ver(r)+1`, so `v+1` would always be
//!   empty);
//! * `GetStable` receives the version whose proposal set is being decided.

use gmp_types::{NextEntry, Op, ProcessId, Ver, View};

/// A Phase I response `OK(seq(p), next(p))` together with the responder's
/// version, as collected by a reconfiguration initiator. The initiator's own
/// state participates as a response too (`r ∈ PhaseIResp(r)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseOneResp {
    /// The responder.
    pub from: ProcessId,
    /// `ver(p)` at response time.
    pub ver: Ver,
    /// `seq(p)`: the committed operation sequence.
    pub seq: Vec<Op>,
    /// `next(p)`: the expectation list.
    pub next: Vec<NextEntry>,
}

/// The outcome of `Determine(RL_r, invis, v)` (Fig. 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The version the initiator proposes to install.
    pub v: Ver,
    /// `RL_r`: the operations installing version `v`.
    pub rl: Vec<Op>,
    /// `invis`: the contingent plan the initiator will execute as the new
    /// `Mgr` immediately after committing (possibly empty).
    pub invis: Vec<Op>,
}

/// A candidate proposal for some version: the operations and their proposer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proposal {
    /// The proposed operations `z`.
    pub ops: Vec<Op>,
    /// The coordinator that proposed them (`Mgr` or a reconfigurer).
    pub coord: ProcessId,
}

/// `ProposalsForVer(x, r)`: every concrete `next` entry for version `x`
/// found among the Phase I responses (§4.5). Proposals are deduplicated by
/// `(ops, coord)`; distinct proposers of identical operations are kept so
/// `GetStable` can rank them.
pub fn proposals_for_ver(responses: &[PhaseOneResp], x: Ver) -> Vec<Proposal> {
    let mut out: Vec<Proposal> = Vec::new();
    for resp in responses {
        for entry in &resp.next {
            if entry.ver == Some(x) {
                if let Some(ops) = &entry.ops {
                    let prop = Proposal {
                        ops: ops.clone(),
                        coord: entry.coord,
                    };
                    if !out.contains(&prop) {
                        out.push(prop);
                    }
                }
            }
        }
    }
    out
}

/// Number of *distinct operation sets* among proposals — the cardinality the
/// paper bounds by 2 (Prop. 5.5).
pub fn distinct_op_sets(proposals: &[Proposal]) -> usize {
    let mut seen: Vec<&Vec<Op>> = Vec::new();
    for p in proposals {
        if !seen.contains(&&p.ops) {
            seen.push(&p.ops);
        }
    }
    seen.len()
}

/// `GetStable(r, x)` (Fig. 6): among competing proposals for the same
/// version, selects the one whose *proposer has the lowest rank* — the only
/// proposal that could have been committed invisibly (Prop. 5.6: the
/// lower-ranked proposer supersedes the higher-ranked one, because every
/// respondent to the junior initiator stops listening to its seniors).
///
/// Proposers no longer in `view` are treated as junior-most.
///
/// # Panics
///
/// Panics if `proposals` is empty.
pub fn get_stable(proposals: &[Proposal], view: &View) -> Vec<Op> {
    assert!(
        !proposals.is_empty(),
        "GetStable requires at least one proposal"
    );
    let junior_most = proposals
        .iter()
        .min_by_key(|p| view.rank(p.coord).unwrap_or(0))
        .expect("non-empty");
    junior_most.ops.clone()
}

/// Selects the proposal operations for a version according to the
/// 0 / 1 / many case split shared by all three `Determine` branches.
fn select_proposal(responses: &[PhaseOneResp], x: Ver, view: &View) -> Option<Vec<Op>> {
    let proposals = proposals_for_ver(responses, x);
    match distinct_op_sets(&proposals) {
        0 => None,
        1 => Some(proposals[0].ops.clone()),
        _ => Some(get_stable(&proposals, view)),
    }
}

/// `GetNext`: the initiator's own queued operations, used for the contingent
/// plan when no competing proposal must be propagated. Operations whose
/// target already appears in `rl` are skipped.
fn get_next(queue: &[Op], rl: &[Op]) -> Vec<Op> {
    queue
        .iter()
        .filter(|op| !rl.iter().any(|r| r.target == op.target))
        .take(1)
        .copied()
        .collect()
}

/// `Determine(RL_r, invis, v)` (Fig. 6): computes the reconfiguration
/// proposal for initiator `r`.
///
/// * `me` — the initiator's own state, counted as a Phase I response;
/// * `others` — the collected responses (majority subset, initiator
///   excluded);
/// * `view` — the initiator's current local view (for ranking proposers);
/// * `old_mgr` — the coordinator the initiator believes failed (the default
///   removal when no proposal is detectable, line D.4);
/// * `queue` — the initiator's own pending operations, in execution order
///   (`Recovered` then `Faulty`), for `GetNext`.
///
/// Respondents outside the `ver(r) ± 1` band permitted by Prop. 5.1 are
/// ignored defensively (they cannot occur in protocol-generated runs).
pub fn determine(
    me: &PhaseOneResp,
    others: &[PhaseOneResp],
    view: &View,
    old_mgr: ProcessId,
    queue: &[Op],
) -> Decision {
    let mut all: Vec<&PhaseOneResp> = Vec::with_capacity(others.len() + 1);
    all.push(me);
    all.extend(
        others
            .iter()
            .filter(|r| r.ver + 1 >= me.ver && r.ver <= me.ver + 1),
    );
    let owned: Vec<PhaseOneResp> = all.iter().map(|r| (*r).clone()).collect();

    // L: respondents one version ahead; S: one version behind (§5).
    let l_rep = all.iter().find(|r| r.ver == me.ver + 1);
    let s_rep = all.iter().find(|r| r.ver + 1 == me.ver);
    // The proposal must cover the gap from the *slowest* respondent: with
    // two successive partial commits, L (at ver(r)+1) and S (at ver(r)−1)
    // can coexist (Prop. 5.1 allows the ±1 band), and a proposal starting
    // at ver(r) would strand S forever — it could then never acknowledge a
    // future invitation and the group would stall. Re-proposing the full
    // suffix is safe: all seqs are prefix-compatible (Theorem 5.1), so
    // every competing committed proposal installs the same views.
    let min_len = all
        .iter()
        .map(|r| r.seq.len())
        .min()
        .unwrap_or(me.seq.len());

    if let Some(l) = l_rep {
        // Incomplete installation of version ver(L): catch everyone up.
        let v = l.ver;
        debug_assert!(
            l.seq.len() >= me.seq.len(),
            "seqs must be prefix-compatible"
        );
        let rl: Vec<Op> = l.seq[min_len..].to_vec();
        let invis = select_proposal(&owned, v + 1, view).unwrap_or_else(|| get_next(queue, &rl));
        Decision { v, rl, invis }
    } else if let Some(s) = s_rep {
        // Incomplete installation of version ver(r): re-propose the suffix
        // the laggards are missing.
        let v = me.ver;
        debug_assert!(
            me.seq.len() >= s.seq.len(),
            "seqs must be prefix-compatible"
        );
        let rl: Vec<Op> = me.seq[min_len..].to_vec();
        let invis = select_proposal(&owned, v + 1, view).unwrap_or_else(|| get_next(queue, &rl));
        Decision { v, rl, invis }
    } else {
        // Everyone agrees on ver(r): propose a fresh change for v =
        // ver(r)+1, propagating any detectable proposal for it (D.4–D.6,
        // with the index fix described in the module docs).
        let v = me.ver + 1;
        let rl = select_proposal(&owned, v, view).unwrap_or_else(|| vec![Op::remove(old_mgr)]);
        let invis = get_next(queue, &rl);
        Decision { v, rl, invis }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_types::NextEntry;

    fn pid(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn view(ids: &[u32]) -> View {
        View::new(ids.iter().map(|&i| pid(i)).collect())
    }

    fn resp(from: u32, ver: Ver, seq: Vec<Op>, next: Vec<NextEntry>) -> PhaseOneResp {
        PhaseOneResp {
            from: pid(from),
            ver,
            seq,
            next,
        }
    }

    /// Quiescent failure of Mgr: no proposals anywhere, everyone at the same
    /// version. The initiator proposes removing Mgr (line D.4) and plans its
    /// own queue next.
    #[test]
    fn fresh_branch_proposes_mgr_removal() {
        let v = view(&[0, 1, 2, 3, 4]);
        let me = resp(1, 0, vec![], vec![]);
        let others = [resp(2, 0, vec![], vec![]), resp(3, 0, vec![], vec![])];
        let d = determine(
            &me,
            &others,
            &v,
            pid(0),
            &[Op::remove(pid(0)), Op::remove(pid(4))],
        );
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![Op::remove(pid(0))]);
        // GetNext skips ops already in rl.
        assert_eq!(d.invis, vec![Op::remove(pid(4))]);
    }

    /// D.5: exactly one detectable proposal for the fresh version is
    /// propagated — Mgr's in-flight plan survives Mgr's death.
    #[test]
    fn fresh_branch_propagates_single_proposal() {
        let v = view(&[0, 1, 2, 3, 4]);
        let mgr_plan = NextEntry::concrete(vec![Op::remove(pid(4))], pid(0), 1);
        let me = resp(1, 0, vec![], vec![]);
        let others = [
            resp(2, 0, vec![], vec![mgr_plan]),
            resp(3, 0, vec![], vec![]),
        ];
        let d = determine(&me, &others, &v, pid(0), &[Op::remove(pid(0))]);
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![Op::remove(pid(4))]);
        assert_eq!(d.invis, vec![Op::remove(pid(0))]);
    }

    /// D.6 / Prop. 5.6: with two competing proposals, the junior proposer's
    /// is the stably-defined one (case 1 of the proof: Mgr's proposal could
    /// not have reached a majority, so the reconfigurer's wins).
    #[test]
    fn fresh_branch_two_proposals_picks_junior_proposer() {
        let v = view(&[0, 1, 2, 3, 4]);
        // Mgr (p0, rank 5) planned remove(p4); reconfigurer p1 (rank 4)
        // proposed remove(p0). p1's proposal is stably-defined.
        let from_mgr = NextEntry::concrete(vec![Op::remove(pid(4))], pid(0), 1);
        let from_rec = NextEntry::concrete(vec![Op::remove(pid(0))], pid(1), 1);
        let me = resp(2, 0, vec![], vec![]);
        let others = [
            resp(3, 0, vec![], vec![from_mgr]),
            resp(4, 0, vec![], vec![from_rec]),
        ];
        let d = determine(&me, &others, &v, pid(0), &[]);
        assert_eq!(d.v, 1);
        assert_eq!(
            d.rl,
            vec![Op::remove(pid(0))],
            "junior proposer is stable (Prop. 5.6)"
        );
    }

    /// L ≠ ∅: some respondent already installed ver(r)+1 — the initiator
    /// catches up by re-proposing the missing suffix.
    #[test]
    fn ahead_branch_catches_up() {
        let v = view(&[0, 1, 2, 3, 4]);
        let committed = Op::remove(pid(4));
        let me = resp(1, 0, vec![], vec![]);
        let others = [
            resp(2, 1, vec![committed], vec![]), // member of L
            resp(3, 0, vec![], vec![]),
        ];
        let d = determine(&me, &others, &v, pid(0), &[Op::remove(pid(0))]);
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![committed]);
        assert_eq!(d.invis, vec![Op::remove(pid(0))]);
    }

    /// L ≠ ∅ with an attendant contingent plan for v+1 at the ahead
    /// respondent: the plan is adopted as invis (condensed-round evidence).
    #[test]
    fn ahead_branch_adopts_contingent_plan() {
        let v = view(&[0, 1, 2, 3, 4]);
        let committed = Op::remove(pid(4));
        let plan = NextEntry::concrete(vec![Op::remove(pid(0))], pid(0), 2);
        let me = resp(1, 0, vec![], vec![]);
        let others = [resp(2, 1, vec![committed], vec![plan])];
        let d = determine(&me, &others, &v, pid(0), &[]);
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![committed]);
        assert_eq!(d.invis, vec![Op::remove(pid(0))]);
    }

    /// S ≠ ∅: laggards one version behind get the initiator's suffix
    /// re-proposed.
    #[test]
    fn behind_branch_reproposes_suffix() {
        let v = view(&[0, 1, 2, 3, 4]);
        let committed = Op::remove(pid(4));
        let me = resp(1, 1, vec![committed], vec![]);
        let others = [
            resp(2, 1, vec![committed], vec![]),
            resp(3, 0, vec![], vec![]),
        ];
        let d = determine(&me, &others, &v, pid(0), &[Op::remove(pid(0))]);
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![committed]);
        assert_eq!(d.invis, vec![Op::remove(pid(0))]);
    }

    /// Placeholders `(? : r : ?)` never contribute proposals.
    #[test]
    fn placeholders_are_ignored() {
        let v = view(&[0, 1, 2]);
        let me = resp(1, 0, vec![], vec![NextEntry::placeholder(pid(2))]);
        let others = [resp(2, 0, vec![], vec![NextEntry::placeholder(pid(1))])];
        let d = determine(&me, &others, &v, pid(0), &[]);
        assert_eq!(d.rl, vec![Op::remove(pid(0))]);
    }

    /// Identical operations proposed by the same coordinator are one
    /// proposal, not two.
    #[test]
    fn proposals_dedupe() {
        let e = NextEntry::concrete(vec![Op::remove(pid(3))], pid(0), 1);
        let rs = [
            resp(1, 0, vec![], vec![e.clone()]),
            resp(2, 0, vec![], vec![e]),
        ];
        let props = proposals_for_ver(&rs, 1);
        assert_eq!(props.len(), 1);
        assert_eq!(distinct_op_sets(&props), 1);
    }

    /// Same ops from two coordinators: one distinct op-set, two proposers.
    #[test]
    fn distinct_op_sets_vs_proposers() {
        let a = NextEntry::concrete(vec![Op::remove(pid(3))], pid(0), 1);
        let b = NextEntry::concrete(vec![Op::remove(pid(3))], pid(1), 1);
        let rs = [resp(1, 0, vec![], vec![a]), resp(2, 0, vec![], vec![b])];
        let props = proposals_for_ver(&rs, 1);
        assert_eq!(props.len(), 2);
        assert_eq!(distinct_op_sets(&props), 1);
    }

    /// Responses outside the Prop. 5.1 band are ignored defensively.
    #[test]
    fn out_of_band_responses_ignored() {
        let v = view(&[0, 1, 2]);
        let me = resp(1, 5, vec![], vec![]);
        let others = [resp(2, 9, vec![], vec![])]; // impossible per Prop. 5.1
        let d = determine(&me, &others, &v, pid(0), &[]);
        assert_eq!(d.v, 6, "fresh branch from the initiator's own version");
    }

    #[test]
    #[should_panic(expected = "at least one proposal")]
    fn get_stable_requires_proposals() {
        let _ = get_stable(&[], &view(&[0]));
    }
}

#[cfg(test)]
mod catch_up_tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// L and S can coexist after two partial commits (Prop. 5.1 permits a
    /// ±1 band around the initiator): the proposal must cover the gap from
    /// the slowest respondent, or it can never acknowledge again.
    #[test]
    fn proposal_covers_slowest_respondent() {
        let view = View::new((0..6).map(pid).collect());
        let op1 = Op::remove(pid(0));
        let op2 = Op::remove(pid(1));
        let me = PhaseOneResp {
            from: pid(2),
            ver: 1,
            seq: vec![op1],
            next: vec![],
        };
        let ahead = PhaseOneResp {
            from: pid(3),
            ver: 2,
            seq: vec![op1, op2],
            next: vec![],
        };
        let behind = PhaseOneResp {
            from: pid(4),
            ver: 0,
            seq: vec![],
            next: vec![],
        };
        let d = determine(&me, &[ahead, behind], &view, pid(0), &[]);
        assert_eq!(d.v, 2);
        assert_eq!(
            d.rl,
            vec![op1, op2],
            "must start from the slowest respondent"
        );
    }

    /// Same with no one ahead: the initiator re-proposes its own suffix
    /// from the slowest respondent.
    #[test]
    fn behind_branch_covers_multiple_missing_ops() {
        let view = View::new((0..6).map(pid).collect());
        let op1 = Op::remove(pid(0));
        let me = PhaseOneResp {
            from: pid(2),
            ver: 1,
            seq: vec![op1],
            next: vec![],
        };
        let behind = PhaseOneResp {
            from: pid(4),
            ver: 0,
            seq: vec![],
            next: vec![],
        };
        let d = determine(&me, &[behind], &view, pid(0), &[]);
        assert_eq!(d.v, 1);
        assert_eq!(d.rl, vec![op1]);
    }

    /// GetNext yields nothing when the whole queue conflicts with RL.
    #[test]
    fn get_next_can_be_empty() {
        let view = View::new((0..4).map(pid).collect());
        let me = PhaseOneResp {
            from: pid(1),
            ver: 0,
            seq: vec![],
            next: vec![],
        };
        let d = determine(&me, &[], &view, pid(0), &[Op::remove(pid(0))]);
        assert_eq!(d.rl, vec![Op::remove(pid(0))]);
        assert!(d.invis.is_empty(), "queue head conflicts with RL");
    }
}
