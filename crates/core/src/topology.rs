//! The monitoring-graph layer: who heartbeats (and digests to) whom.
//!
//! The paper's protocol implicitly assumes a *clique*: every member
//! heartbeats every other member, so failure detection (F1) is direct and
//! gossip (F2) reaches everyone in one hop. That is exactly what caps
//! practical group sizes — heartbeat fan-out is Θ(n²) per interval.
//!
//! This module lifts the graph into a first-class, swappable [`Topology`]:
//! the member recomputes its *monitoring set* from the configured topology
//! on every view install and confines heartbeats (with their piggybacked
//! faulty-set digests) to that set. Everything *agreement-critical* stays
//! global and untouched: update/reconfiguration broadcasts, await sets,
//! majorities and point-to-point suspicion reports to `Mgr` are addressed
//! to the whole view regardless of topology — the graph only decides where
//! failure *detection* and gossip *dissemination* happen.
//!
//! On a sparse graph, completeness is restored by **suspicion relay**: a
//! member that learns `Faulty{p}` — by its own timeout or via a received
//! digest — adds `p` to its faulty set, which changes the digest it
//! carries, which re-publishes the suspicion to *its* monitors on the next
//! beat. Suspicions therefore flood the monitoring graph hop by hop, and
//! any connected graph eventually informs every surviving member (Sens &
//! Arantes et al. make the same argument for failure detectors under
//! partial connectivity; Duarte's system-level diagnosis model is the
//! classic source for "any connected test graph suffices").
//!
//! # Contract
//!
//! * `monitors(me, view)` must be **symmetric** (`q ∈ monitors(p) ⇔
//!   p ∈ monitors(q)`): heartbeats are sent to exactly the monitoring set,
//!   so an asymmetric graph would beat peers that never enrolled the
//!   sender — their detector (correctly) ignores strangers and every
//!   digest would be re-carried forever.
//! * The graph over any view's *surviving* members should be connected,
//!   or relayed suspicions cannot reach everyone.
//! * `me ∉ monitors(me, view)`; every returned peer is a view member.
//! * The result must be a pure function of `(me, view)` — it is recomputed
//!   at every view install on every member, and determinism of whole runs
//!   rests on it.
//! * Peers must be returned in *view (seniority) order*: the order decides
//!   detector-arena slot assignment and heartbeat send order, both of
//!   which are pinned byte-identical for [`Flat`] by the golden tests.

use gmp_types::{ProcessId, View};
use std::fmt;

/// A monitoring graph over the current view.
///
/// Implementations are shared by every member of a cluster via
/// `Arc<dyn Topology>` (see [`Config::topology`](crate::Config)), so they
/// must be `Send + Sync` and carry no per-member state.
pub trait Topology: fmt::Debug + Send + Sync {
    /// The peers `me` monitors in `view`: heartbeat targets, digest
    /// carriers, and failure-detector enrollment. See the module docs for
    /// the symmetry/connectivity/purity contract.
    fn monitors(&self, me: ProcessId, view: &View) -> Vec<ProcessId>;
}

/// The paper's implicit clique: everyone monitors everyone else.
///
/// This is the default and reproduces the pre-topology engine
/// byte-for-byte (pinned by the goldens in `tests/determinism.rs`,
/// `tests/sharding.rs` and `tests/topology.rs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Flat;

impl Topology for Flat {
    fn monitors(&self, me: ProcessId, view: &View) -> Vec<ProcessId> {
        view.iter().filter(|&p| p != me).collect()
    }
}

/// A k-regular ring of neighbors over the view's seniority order.
///
/// Member at seniority index `i` monitors the `⌈k/2⌉` members on each side
/// of it (indices `i ± 1..=⌈k/2⌉`, modulo the view size) — a symmetric
/// circulant graph of effective degree `min(2·⌈k/2⌉, n−1)`, diameter
/// `⌈(n−1)/2⌉ / ⌈k/2⌉` hops. Heartbeat load drops from Θ(n²) to Θ(n·k)
/// per interval; a suspicion reaches the whole ring in diameter-many
/// relay rounds (each round ≤ one heartbeat interval once the carrier has
/// beaten all its monitors).
///
/// `k ≥ 2` keeps the graph connected under any single failure pattern the
/// protocol survives anyway; `k ≥ n − 1` degenerates to [`Flat`].
#[derive(Clone, Copy, Debug)]
pub struct Sparse {
    /// Requested degree; the ring realizes `2·⌈k/2⌉` (capped at `n−1`).
    pub k: usize,
}

impl Sparse {
    /// A ring of degree (at least) `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`: degree-1 rings disconnect on the first failure.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "a sparse ring needs degree k >= 2");
        Sparse { k }
    }
}

impl Topology for Sparse {
    fn monitors(&self, me: ProcessId, view: &View) -> Vec<ProcessId> {
        let n = view.len();
        let Some(i) = view.index_of(me) else {
            // Not (yet) a member — e.g. a joiner bootstrapping from its
            // Welcome before the add committed everywhere. Monitor no one;
            // the next view install recomputes.
            return Vec::new();
        };
        let half = self.k.div_ceil(2);
        if half * 2 >= n.saturating_sub(1) {
            return view.iter().filter(|&p| p != me).collect();
        }
        let mut picked = vec![false; n];
        for d in 1..=half {
            picked[(i + d) % n] = true;
            picked[(i + n - d) % n] = true;
        }
        picked[i] = false;
        view.iter()
            .enumerate()
            .filter(|&(j, _)| picked[j])
            .map(|(_, p)| p)
            .collect()
    }
}

/// Two-level hierarchy: local groups run the paper's protocol among
/// themselves, group leaders form a top-level overlay.
///
/// The view's seniority order is partitioned into consecutive groups of
/// `group` members; the most senior member of each group is its *leader*.
/// A member monitors its group peers; a leader additionally monitors the
/// other leaders. Heartbeat load is Θ(n·g + (n/g)²) per interval —
/// minimized around `g ≈ √n` — instead of Θ(n²).
///
/// GMP events *escalate* across levels without any new message type:
/// an intra-group F1 detection is reported point-to-point to the global
/// `Mgr` exactly as in the flat protocol (reports were never broadcast),
/// and the resulting commit is a global broadcast, so every group installs
/// the same view. Suspicions travel *between* groups along the leader
/// overlay via digest relay: group → leader → other leaders → their
/// groups. If an entire group (leader included) crashes, the leader
/// overlay detects the leader first; its exclusion shifts the seniority
/// ranks, the next view install re-partitions the groups, and the
/// re-grouped survivors monitor (and then exclude) the remaining victims —
/// a cascade, each step driven by ordinary F1 detection.
///
/// `group ≥ n` degenerates to [`Flat`].
#[derive(Clone, Copy, Debug)]
pub struct Hierarchical {
    /// Members per local group (the last group may be smaller).
    pub group: usize,
}

impl Hierarchical {
    /// A hierarchy of local groups of `group` members.
    ///
    /// # Panics
    ///
    /// Panics if `group < 2`: singleton groups monitor nothing locally,
    /// which disconnects every non-leader.
    pub fn new(group: usize) -> Self {
        assert!(group >= 2, "hierarchical groups need at least 2 members");
        Hierarchical { group }
    }
}

impl Topology for Hierarchical {
    fn monitors(&self, me: ProcessId, view: &View) -> Vec<ProcessId> {
        let n = view.len();
        let Some(i) = view.index_of(me) else {
            return Vec::new();
        };
        let g = self.group;
        if g >= n {
            return view.iter().filter(|&p| p != me).collect();
        }
        let my_group = i / g;
        let is_leader = i % g == 0;
        view.iter()
            .enumerate()
            .filter(|&(j, _)| j != i && (j / g == my_group || (is_leader && j % g == 0)))
            .map(|(_, p)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: u32) -> View {
        (0..n).map(ProcessId).collect()
    }

    /// The contract every impl must hold: symmetry, no self-loops, members
    /// only, view order.
    fn check_contract(t: &dyn Topology, v: &View) {
        for p in v.iter() {
            let m = t.monitors(p, v);
            assert!(!m.contains(&p), "{t:?}: {p} monitors itself");
            let mut last = None;
            for q in &m {
                assert!(v.contains(*q), "{t:?}: {p} monitors non-member {q}");
                let idx = v.index_of(*q);
                assert!(last < Some(idx), "{t:?}: {p}'s monitors not in view order");
                last = Some(idx);
                assert!(
                    t.monitors(*q, v).contains(&p),
                    "{t:?}: asymmetric edge {p} -> {q}"
                );
            }
        }
    }

    #[test]
    fn flat_is_the_clique() {
        let v = view(6);
        check_contract(&Flat, &v);
        for p in v.iter() {
            assert_eq!(Flat.monitors(p, &v).len(), 5);
        }
        // Exactly the order the pre-topology engine enumerated.
        assert_eq!(
            Flat.monitors(ProcessId(2), &v),
            [0, 1, 3, 4, 5].map(ProcessId).to_vec()
        );
    }

    #[test]
    fn sparse_ring_has_even_degree_and_wraps() {
        let v = view(8);
        let t = Sparse::new(2);
        check_contract(&t, &v);
        for p in v.iter() {
            assert_eq!(t.monitors(p, &v).len(), 2, "{p}");
        }
        // p0's ring neighbors are indices 1 and 7.
        assert_eq!(t.monitors(ProcessId(0), &v), [1, 7].map(ProcessId).to_vec());
        // Odd k rounds up to the next even degree.
        let t3 = Sparse::new(3);
        check_contract(&t3, &v);
        assert_eq!(t3.monitors(ProcessId(0), &v).len(), 4);
    }

    #[test]
    fn sparse_degenerates_to_flat_on_small_views() {
        for n in 2..=6u32 {
            let v = view(n);
            let t = Sparse::new(6);
            check_contract(&t, &v);
            for p in v.iter() {
                assert_eq!(t.monitors(p, &v), Flat.monitors(p, &v), "n={n} {p}");
            }
        }
    }

    #[test]
    fn sparse_is_connected_by_construction() {
        // Offsets ±1 are always included (k >= 2), so the plain ring is a
        // subgraph: connectivity is immediate. Spot-check reachability.
        let v = view(9);
        let t = Sparse::new(2);
        let mut reach = [false; 9];
        let mut frontier = vec![ProcessId(0)];
        reach[0] = true;
        while let Some(p) = frontier.pop() {
            for q in t.monitors(p, &v) {
                if !reach[q.index()] {
                    reach[q.index()] = true;
                    frontier.push(q);
                }
            }
        }
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn hierarchical_groups_and_leader_overlay() {
        let v = view(9);
        let t = Hierarchical::new(3);
        check_contract(&t, &v);
        // Non-leader p4 (group 1: indices 3,4,5) monitors its group peers.
        assert_eq!(t.monitors(ProcessId(4), &v), [3, 5].map(ProcessId).to_vec());
        // Leader p3 also monitors the other leaders (indices 0 and 6).
        assert_eq!(
            t.monitors(ProcessId(3), &v),
            [0, 4, 5, 6].map(ProcessId).to_vec()
        );
    }

    #[test]
    fn hierarchical_handles_a_ragged_last_group() {
        let v = view(7); // groups {0,1,2}, {3,4,5}, {6}
        let t = Hierarchical::new(3);
        check_contract(&t, &v);
        // p6 is a singleton group's leader: only the leader overlay links it.
        assert_eq!(t.monitors(ProcessId(6), &v), [0, 3].map(ProcessId).to_vec());
    }

    #[test]
    fn hierarchical_degenerates_to_flat_on_small_views() {
        let v = view(4);
        let t = Hierarchical::new(5);
        check_contract(&t, &v);
        for p in v.iter() {
            assert_eq!(t.monitors(p, &v), Flat.monitors(p, &v));
        }
    }

    #[test]
    fn strangers_monitor_no_one() {
        let v = view(5);
        let outsider = ProcessId(99);
        assert!(Sparse::new(2).monitors(outsider, &v).is_empty());
        assert!(Hierarchical::new(2).monitors(outsider, &v).is_empty());
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn degree_one_rings_are_rejected() {
        let _ = Sparse::new(1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn singleton_groups_are_rejected() {
        let _ = Hierarchical::new(1);
    }
}
