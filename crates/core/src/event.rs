//! The consumer-facing event queue: what a layer built *on top of*
//! membership needs to hear from it.
//!
//! A [`Member`](crate::Member) exposes accessors (`view()`, `faulty_set()`,
//! …) for inspection, but a consumer embedded in the same process — a
//! replicated log, a lock service, a router — must learn about membership
//! *transitions*, not poll state. Every protocol-visible transition
//! therefore also pushes a [`MemberEvent`] onto an internal queue that the
//! host drains with [`Member::take_events`](crate::Member::take_events)
//! after each handler call.
//!
//! # Contract
//!
//! * **Protocol-invisible.** Recording an event is a plain vector push: no
//!   sends, no timers, no trace notes, no randomness. Runs are byte-
//!   identical whether or not anyone drains the queue (the golden
//!   fingerprints in `tests/determinism.rs` pin this).
//! * **Deterministic.** For a fixed `(n, seed, fault schedule)` the event
//!   stream of every process is a pure function of the run — identical
//!   under the sequential and sharded engines (`tests/member_events.rs`
//!   proptests this).
//! * **Ordered.** Events appear in the order the transitions happened at
//!   this process. A `ViewInstalled` for version `v` precedes any event
//!   whose precondition is version `v`.
//! * **Drained, not broadcast.** `take_events` hands the queue over and
//!   empties it; an undrained queue grows only with membership activity
//!   (view changes and suspicions), never with steady-state traffic.
//!
//! # Relation to trace [`Note`](gmp_types::Note)s
//!
//! Notes go to the *global* trace for offline property checking; events go
//! to the *local* consumer for online reaction. They overlap deliberately
//! (`ViewInstalled` exists as both) but serve different masters: notes are
//! diagnostic and may grow richer, events are the stable API surface.

use gmp_types::{FaultySource, ProcessId, QuitReason, Ver};

/// A membership transition observed by the local process, for consumers
/// layered on top of the group (drained via
/// [`Member::take_events`](crate::Member::take_events)).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemberEvent {
    /// A view was installed: the initial view at start (`ver == 0`), or an
    /// agreed membership operation committed locally. `mgr` is the
    /// coordinator of the installed view — consumers using the group for
    /// leader election (e.g. `gmp-log`) treat it as the leader and `ver`
    /// as the leader's ballot.
    ViewInstalled {
        /// Version of the installed view (`ver(p)`).
        ver: Ver,
        /// Members of the installed view, in seniority order.
        members: Vec<ProcessId>,
        /// Coordinator (`Mgr`) of the installed view.
        mgr: ProcessId,
    },
    /// This process began believing `peer` faulty (`faulty_p(q)`, §2.2) —
    /// by its own timeout (F1), by gossip (F2), by the `HiFaulty`
    /// inference, or injected by a test. The exclusion has *not* committed
    /// yet; a `ViewInstalled` without `peer` follows once it does.
    PeerSuspected {
        /// The newly suspected process.
        peer: ProcessId,
        /// What produced the belief.
        source: FaultySource,
    },
    /// An exclusion committed: `peer` left the membership at version `ver`.
    /// Always preceded by `PeerSuspected { peer, .. }` (GMP-1) and
    /// immediately followed by the matching `ViewInstalled`.
    PeerExcluded {
        /// The excluded process.
        peer: ProcessId,
        /// Version of the view that no longer contains `peer`.
        ver: Ver,
    },
    /// This process, having started as a joiner (§7), was welcomed into
    /// the group and is now `Active` in the carried view. Takes the place
    /// of the first `ViewInstalled` at a joiner.
    Welcomed {
        /// Version of the first view this process belongs to.
        ver: Ver,
        /// Members of that view, in seniority order (including this
        /// process).
        members: Vec<ProcessId>,
        /// Coordinator of that view.
        mgr: ProcessId,
    },
    /// This process left the group for good (`quit_p`, §2.1): excluded by
    /// the others, or resigned after losing the `Mgr` majority. Terminal —
    /// no further events follow.
    Quit {
        /// Why the process quit.
        reason: QuitReason,
    },
}
