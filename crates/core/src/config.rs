//! Protocol configuration.

use crate::topology::{Flat, Topology};
use gmp_types::ProcessId;
use std::sync::Arc;

/// Tuning knobs for a [`Member`](crate::Member).
///
/// Defaults reproduce the paper's *final* algorithm: condensed update rounds
/// (§3.1), the `Mgr` majority requirement of Fig. 8, and gossip piggybacking
/// (F2) on heartbeats.
///
/// Construct with [`Config::default`] or, to change any knob, through
/// [`Config::builder`]:
///
/// ```
/// use gmp_core::Config;
///
/// let cfg = Config::builder().timing(40, 400).gossip(false).build();
/// assert_eq!(cfg.suspect_after, 400);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable everywhere, but
/// new knobs (topology landed in PR 7; lease policies and log batching are
/// next) can be added without breaking downstream construction sites.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Config {
    /// Interval between heartbeat/failure-detector ticks.
    pub heartbeat_every: u64,
    /// Silence threshold after which a peer is suspected (F1). Must
    /// comfortably exceed the network round trip or every run degenerates
    /// into mutual suspicion.
    pub suspect_after: u64,
    /// Condensed update rounds: piggyback the next invitation on the commit
    /// (§3.1). Disable to measure the standard two-phase cost (§7.2).
    pub compression: bool,
    /// The final algorithm's majority requirement for `Mgr` (Fig. 8,
    /// `μ_Mgr`). Disable to run the §3.1 basic algorithm, which tolerates
    /// `|Memb|−1` failures but assumes `Mgr` never fails.
    pub mgr_majority: bool,
    /// Piggyback the local faulty set on heartbeats (gossip source F2).
    pub gossip: bool,
    /// Run the full three-phase reconfiguration (interrogate → propose →
    /// commit). Disabling this skips the proposal phase — exactly the
    /// protocol Claim 7.2 proves *cannot* solve GMP. It exists solely so
    /// the baseline experiments can reproduce that counterexample; never
    /// disable it otherwise.
    pub three_phase_reconfig: bool,
    /// Present when this process starts *outside* the group and must join
    /// (§7). `None` for initial members.
    pub join: Option<JoinConfig>,
    /// Present when this process is an *observer* of the group — the §8
    /// hierarchical management service: it tracks the agreed membership
    /// without ever being a member. `None` for members and joiners.
    pub observe: Option<ObserveConfig>,
    /// The monitoring graph: who this member heartbeats (and carries
    /// digests to). Recomputed against the view on every view install.
    /// Defaults to the paper's clique ([`Flat`]); see
    /// [`crate::topology`] for the sparse and hierarchical graphs. All
    /// members of a cluster must share one topology (the symmetry contract
    /// is between *peers*), which `ClusterBuilder` guarantees by cloning
    /// the config.
    pub topology: Arc<dyn Topology>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            heartbeat_every: 40,
            suspect_after: 200,
            compression: true,
            mgr_majority: true,
            gossip: true,
            three_phase_reconfig: true,
            join: None,
            observe: None,
            topology: Arc::new(Flat),
        }
    }
}

impl Config {
    /// Starts a [`ConfigBuilder`] from the defaults. The only supported
    /// way to construct a non-default configuration.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Default configuration for an initial member.
    #[deprecated(
        since = "0.1.0",
        note = "use `Config::default()` or `Config::builder()`"
    )]
    pub fn new() -> Self {
        Config::default()
    }
}

/// Builds a [`Config`], knob by knob.
///
/// Obtained from [`Config::builder`]; every setter has a default (the
/// paper's final algorithm), so only the knobs under study need naming.
/// Because `Config` itself is `#[non_exhaustive]`, the builder is the
/// construction path that stays source-compatible when knobs are added.
///
/// ```
/// use gmp_core::{Config, Sparse};
///
/// let cfg = Config::builder()
///     .timing(100, 400)
///     .compression(false)
///     .topology(Sparse::new(4))
///     .build();
/// assert!(!cfg.compression);
/// ```
#[derive(Clone, Debug, Default)]
#[must_use = "call `.build()` to obtain the Config"]
pub struct ConfigBuilder {
    cfg: Config,
}

impl ConfigBuilder {
    /// Sets the heartbeat interval and the suspicion timeout together —
    /// the two only make sense relative to each other.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive.
    pub fn timing(mut self, heartbeat_every: u64, suspect_after: u64) -> Self {
        assert!(
            heartbeat_every > 0 && suspect_after > 0,
            "timing values must be positive"
        );
        self.cfg.heartbeat_every = heartbeat_every;
        self.cfg.suspect_after = suspect_after;
        self
    }

    /// Enables or disables condensed update rounds (§3.1). Off measures
    /// the standard two-phase cost (§7.2).
    pub fn compression(mut self, on: bool) -> Self {
        self.cfg.compression = on;
        self
    }

    /// Enables or disables the `Mgr` majority requirement (Fig. 8). Off
    /// runs the §3.1 basic algorithm, valid only when `Mgr` cannot fail.
    pub fn mgr_majority(mut self, on: bool) -> Self {
        self.cfg.mgr_majority = on;
        self
    }

    /// Enables or disables faulty-set gossip on heartbeats (F2).
    pub fn gossip(mut self, on: bool) -> Self {
        self.cfg.gossip = on;
        self
    }

    /// Enables or disables the third reconfiguration phase. **Disabling is
    /// unsound** — provided only to reproduce the Claim 7.2
    /// counterexample; see `gmp-baselines`.
    pub fn three_phase_reconfig(mut self, on: bool) -> Self {
        self.cfg.three_phase_reconfig = on;
        self
    }

    /// Marks this process as a joiner with the given parameters (§7).
    pub fn joining(mut self, join: JoinConfig) -> Self {
        self.cfg.join = Some(join);
        self
    }

    /// Marks this process as a group observer (§8).
    pub fn observing(mut self, observe: ObserveConfig) -> Self {
        self.cfg.observe = Some(observe);
        self
    }

    /// Replaces the monitoring graph (default: [`Flat`]).
    pub fn topology(mut self, topology: impl Topology + 'static) -> Self {
        self.cfg.topology = Arc::new(topology);
        self
    }

    /// Replaces the monitoring graph with an already-shared instance —
    /// what sweeps use to hand one `Arc` to every member of many runs.
    pub fn topology_shared(mut self, topology: Arc<dyn Topology>) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Config {
        self.cfg
    }
}

/// How a process outside the group joins it (§7).
#[derive(Clone, Debug)]
pub struct JoinConfig {
    /// Simulated time at which the first join request is sent.
    pub at: u64,
    /// Group members to contact (any member forwards to `Mgr`).
    pub contacts: Vec<ProcessId>,
    /// Retry interval until a `Welcome` arrives.
    pub retry_every: u64,
}

impl JoinConfig {
    /// A join request first sent at `at` to `contacts`, retried every 250
    /// ticks.
    pub fn new(at: u64, contacts: Vec<ProcessId>) -> Self {
        assert!(!contacts.is_empty(), "a joiner needs at least one contact");
        JoinConfig {
            at,
            contacts,
            retry_every: 250,
        }
    }

    /// Overrides the retry interval.
    pub fn retry_every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "retry interval must be positive");
        self.retry_every = interval;
        self
    }
}

/// How an observer follows the group (§8 hierarchical service).
#[derive(Clone, Debug)]
pub struct ObserveConfig {
    /// Simulated time of the first subscription attempt.
    pub at: u64,
    /// Members to subscribe to, tried in order; once view updates arrive,
    /// the observed membership itself extends the fail-over list.
    pub contacts: Vec<ProcessId>,
    /// How often subscription health is re-checked.
    pub poll_every: u64,
}

impl ObserveConfig {
    /// An observer first subscribing at `at` through `contacts`, polling
    /// every 100 ticks.
    pub fn new(at: u64, contacts: Vec<ProcessId>) -> Self {
        assert!(
            !contacts.is_empty(),
            "an observer needs at least one contact"
        );
        ObserveConfig {
            at,
            contacts,
            poll_every: 100,
        }
    }

    /// Overrides the polling interval.
    pub fn poll_every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "poll interval must be positive");
        self.poll_every = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_final_algorithm() {
        let c = Config::default();
        assert!(c.compression);
        assert!(c.mgr_majority);
        assert!(c.gossip);
        assert!(c.join.is_none());
    }

    #[test]
    fn builder_methods() {
        let c = Config::builder()
            .timing(10, 50)
            .compression(false)
            .mgr_majority(false)
            .gossip(false)
            .build();
        assert_eq!(c.heartbeat_every, 10);
        assert_eq!(c.suspect_after, 50);
        assert!(!c.compression && !c.mgr_majority && !c.gossip);
    }

    #[test]
    #[allow(deprecated)]
    fn new_shim_matches_default() {
        let c = Config::new();
        assert_eq!(c.heartbeat_every, Config::default().heartbeat_every);
        assert!(c.compression && c.mgr_majority && c.gossip);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn builder_rejects_zero_timing() {
        let _ = Config::builder().timing(0, 50);
    }

    #[test]
    #[should_panic(expected = "at least one contact")]
    fn join_needs_contacts() {
        let _ = JoinConfig::new(0, vec![]);
    }
}
