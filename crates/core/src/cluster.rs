//! Convenience harness for assembling simulated groups.
//!
//! Tests, examples and benchmarks all build the same shape of run: `n`
//! initial members (process ids `0..n`, member 0 the initial `Mgr`) plus
//! optional late joiners. This module centralizes that setup.

use crate::config::{Config, JoinConfig, ObserveConfig};
use crate::member::Member;
use crate::msg::Msg;
use gmp_sim::{Builder, Sim};
use gmp_types::{ProcessId, View};

/// A simulated group under construction.
pub struct ClusterBuilder {
    sim_builder: Builder,
    n: usize,
    cfg: Config,
    joiners: Vec<JoinConfig>,
    observers: Vec<ObserveConfig>,
}

impl ClusterBuilder {
    /// A cluster of `n` initial members sharing `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, cfg: Config) -> Self {
        assert!(n > 0, "a cluster needs at least one member");
        ClusterBuilder {
            sim_builder: Builder::new(),
            n,
            cfg,
            joiners: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Replaces the simulator builder (seed, delays, FIFO).
    pub fn sim(mut self, builder: Builder) -> Self {
        self.sim_builder = builder;
        self
    }

    /// Adds a late joiner; it receives the next free process id.
    pub fn joiner(mut self, join: JoinConfig) -> Self {
        self.joiners.push(join);
        self
    }

    /// Adds an external observer (§8 hierarchical service); observers are
    /// registered after all joiners and receive the subsequent ids.
    pub fn observer(mut self, observe: ObserveConfig) -> Self {
        self.observers.push(observe);
        self
    }

    /// The process id the next joiner added would receive.
    pub fn next_joiner_id(&self) -> ProcessId {
        ProcessId((self.n + self.joiners.len()) as u32)
    }

    /// Builds the simulator with all members registered.
    pub fn build(self) -> Sim<Msg, Member> {
        let initial: View = (0..self.n as u32).map(ProcessId).collect();
        let mut sim = self.sim_builder.build();
        for _ in 0..self.n {
            sim.add_node(Member::new(self.cfg.clone(), initial.clone()));
        }
        for join in self.joiners {
            let mut cfg = self.cfg.clone();
            cfg.join = Some(join);
            sim.add_node(Member::joiner(cfg));
        }
        for observe in self.observers {
            let mut cfg = self.cfg.clone();
            cfg.observe = Some(observe);
            sim.add_node(Member::observer(cfg));
        }
        sim
    }
}

/// Shorthand: an `n`-member cluster with the given seed and default
/// protocol configuration.
///
/// ```
/// use gmp_core::cluster;
/// use gmp_types::ProcessId;
///
/// let mut sim = cluster(5, 42);
/// sim.run_until(1_000);
/// assert_eq!(sim.node(ProcessId(0)).view().len(), 5);
/// ```
pub fn cluster(n: usize, seed: u64) -> Sim<Msg, Member> {
    ClusterBuilder::new(n, Config::default())
        .sim(Builder::new().seed(seed))
        .build()
}

/// Shorthand: an `n`-member cluster with explicit protocol configuration.
pub fn cluster_with(n: usize, seed: u64, cfg: Config) -> Sim<Msg, Member> {
    ClusterBuilder::new(n, cfg)
        .sim(Builder::new().seed(seed))
        .build()
}
