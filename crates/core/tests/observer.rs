//! The §8 hierarchical management service: observers track the agreed
//! membership without being members.

use gmp_core::{ClusterBuilder, Config, Lifecycle, ObserveConfig};
use gmp_sim::Builder;
use gmp_types::ProcessId;

fn observed_cluster(
    n: usize,
    seed: u64,
    contacts: Vec<ProcessId>,
) -> gmp_sim::Sim<gmp_core::Msg, gmp_core::Member> {
    ClusterBuilder::new(n, Config::default())
        .observer(ObserveConfig::new(200, contacts))
        .sim(Builder::new().seed(seed))
        .build()
}

#[test]
fn observer_receives_initial_snapshot() {
    let mut sim = observed_cluster(4, 1, vec![ProcessId(1)]);
    sim.run_until(2_000);
    let obs = sim.node(ProcessId(4));
    assert!(obs.is_observer());
    assert!(matches!(obs.lifecycle(), Lifecycle::Observing));
    let (view, ver, mgr) = obs.observed_view().expect("snapshot arrived");
    assert_eq!(ver, 0);
    assert_eq!(view.len(), 4);
    assert_eq!(mgr, ProcessId(0));
}

#[test]
fn observer_sees_every_membership_change() {
    let mut sim = observed_cluster(5, 2, vec![ProcessId(1)]);
    sim.crash_at(ProcessId(4), 800);
    sim.crash_at(ProcessId(3), 2_500);
    sim.run_until(12_000);
    let obs = sim.node(ProcessId(5));
    let (view, ver, _) = obs.observed_view().expect("updates arrived");
    assert_eq!(ver, 2, "both exclusions observed");
    assert!(!view.contains(ProcessId(4)));
    assert!(!view.contains(ProcessId(3)));
    // The observed view equals the members' agreed view.
    assert_eq!(view, sim.node(ProcessId(0)).view());
}

#[test]
fn observer_fails_over_when_contact_dies() {
    // The observer's only configured contact crashes; the observed
    // membership extends the fail-over list, so it resubscribes elsewhere.
    let mut sim = observed_cluster(5, 3, vec![ProcessId(2)]);
    sim.crash_at(ProcessId(2), 1_500);
    sim.crash_at(ProcessId(4), 4_000); // a change after the fail-over
    sim.run_until(20_000);
    let obs = sim.node(ProcessId(5));
    let (view, ver, _) = obs.observed_view().expect("still receiving");
    assert_eq!(ver, 2, "the post-failover change was observed");
    assert!(!view.contains(ProcessId(2)));
    assert!(!view.contains(ProcessId(4)));
}

#[test]
fn observer_survives_coordinator_change() {
    let mut sim = observed_cluster(5, 4, vec![ProcessId(3)]);
    sim.crash_at(ProcessId(0), 1_000); // Mgr dies; reconfiguration
    sim.run_until(15_000);
    let obs = sim.node(ProcessId(5));
    let (view, ver, mgr) = obs.observed_view().expect("updates arrived");
    assert_eq!(ver, 1);
    assert!(!view.contains(ProcessId(0)));
    assert_eq!(
        mgr,
        ProcessId(1),
        "the successor is reported as coordinator"
    );
}

#[test]
fn observer_is_never_a_member() {
    let mut sim = observed_cluster(4, 5, vec![ProcessId(1)]);
    sim.crash_at(ProcessId(3), 800);
    sim.run_until(10_000);
    let obs_id = ProcessId(4);
    for p in sim.living() {
        if p != obs_id {
            assert!(
                !sim.node(p).view().contains(obs_id),
                "observer must never appear in a member view"
            );
        }
    }
    // And the GMP properties are computed over members only.
    gmp_props::check_all(sim.trace()).assert_ok();
}

#[test]
fn multiple_observers_converge_on_the_same_history() {
    let mut sim = ClusterBuilder::new(5, Config::default())
        .observer(ObserveConfig::new(200, vec![ProcessId(1)]))
        .observer(ObserveConfig::new(250, vec![ProcessId(3)]))
        .sim(Builder::new().seed(6))
        .build();
    sim.crash_at(ProcessId(4), 900);
    sim.run_until(12_000);
    let a = sim.node(ProcessId(5)).observed_view().expect("observer a");
    let b = sim.node(ProcessId(6)).observed_view().expect("observer b");
    assert_eq!(a.0, b.0, "observers agree on membership");
    assert_eq!(a.1, b.1, "observers agree on version");
}
