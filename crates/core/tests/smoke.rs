use gmp_core::cluster;
use gmp_types::ProcessId;

#[test]
fn mgr_crash_triggers_reconfiguration() {
    let mut sim = cluster(5, 11);
    sim.crash_at(ProcessId(0), 500); // the initial Mgr
    sim.run_until(10_000);
    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.mgr(), ProcessId(1), "p1 should take over at {p}");
        assert!(
            !m.view().contains(ProcessId(0)),
            "{p} still has p0: {}",
            m.view()
        );
        assert_eq!(m.ver(), 1, "{p}");
    }
    assert_eq!(sim.living().len(), 4);
}

#[test]
fn mgr_crash_mid_commit_repaired() {
    // Figure 3: Mgr dies after delivering the commit to exactly one member.
    let mut sim = cluster(5, 13);
    sim.crash_at(ProcessId(4), 400);
    sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);
    sim.run_until(20_000);
    let living = sim.living();
    assert!(living.len() >= 3, "living: {living:?}");
    let v0 = sim.node(living[0]).view().clone();
    for &p in &living {
        assert_eq!(sim.node(p).view(), &v0, "views diverge at {p}");
        assert!(!sim.node(p).view().contains(ProcessId(0)));
        assert!(!sim.node(p).view().contains(ProcessId(4)));
    }
}

#[test]
fn cascade_of_failures() {
    let mut sim = cluster(7, 17);
    sim.crash_at(ProcessId(0), 500);
    sim.crash_at(ProcessId(1), 900);
    sim.crash_at(ProcessId(3), 1300);
    sim.run_until(30_000);
    let living = sim.living();
    assert_eq!(living.len(), 4, "living: {living:?}");
    for &p in &living {
        let m = sim.node(p);
        assert_eq!(m.view().len(), 4, "{p}: {}", m.view());
        assert_eq!(m.mgr(), ProcessId(2));
    }
}

#[test]
fn join_is_processed() {
    use gmp_core::{ClusterBuilder, Config, JoinConfig};
    use gmp_sim::Builder;
    let mut sim = ClusterBuilder::new(4, Config::default())
        .sim(Builder::new().seed(23))
        .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
        .build();
    sim.run_until(10_000);
    let joiner = ProcessId(4);
    for p in sim.living() {
        let m = sim.node(p);
        assert!(m.view().contains(joiner), "{p} lacks joiner: {}", m.view());
        assert_eq!(m.ver(), 1);
    }
    assert!(matches!(
        sim.node(joiner).lifecycle(),
        gmp_core::Lifecycle::Active
    ));
}
