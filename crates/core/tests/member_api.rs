//! Public inspection API of `Member`: the surface a downstream user builds
//! failure-detection services on.

use gmp_core::{cluster, Config, Lifecycle, Member};
use gmp_types::{Op, ProcessId, View};

#[test]
fn initial_member_state() {
    let view: View = (0..3u32).map(ProcessId).collect();
    let m = Member::new(Config::default(), view.clone());
    assert_eq!(m.ver(), 0);
    assert_eq!(m.view(), &view);
    assert_eq!(m.mgr(), ProcessId(0));
    assert!(m.seq().is_empty());
    assert!(m.next_list().is_empty());
    assert_eq!(m.faulty_set().count(), 0);
    assert!(matches!(m.lifecycle(), Lifecycle::Active));
    assert!(!m.is_observer());
    assert!(m.observed_view().is_none());
}

#[test]
#[should_panic(expected = "non-empty")]
fn empty_initial_view_rejected() {
    let _ = Member::new(Config::default(), View::empty());
}

#[test]
#[should_panic(expected = "join config")]
fn joiner_requires_join_config() {
    let _ = Member::joiner(Config::default());
}

#[test]
#[should_panic(expected = "observe config")]
fn observer_requires_observe_config() {
    let _ = Member::observer(Config::default());
}

#[test]
fn seq_records_committed_operations_in_order() {
    let mut sim = cluster(5, 17);
    sim.crash_at(ProcessId(4), 400);
    sim.crash_at(ProcessId(3), 1_500);
    sim.run_until(12_000);
    let m = sim.node(ProcessId(1));
    assert_eq!(
        m.seq(),
        &[Op::remove(ProcessId(4)), Op::remove(ProcessId(3))]
    );
    assert_eq!(m.ver() as usize, m.seq().len());
}

#[test]
fn mgr_flag_tracks_the_coordinator_role() {
    let mut sim = cluster(4, 18);
    sim.run_until(2_000);
    assert!(sim.node(ProcessId(0)).is_mgr());
    assert!(!sim.node(ProcessId(1)).is_mgr());
    sim.crash_at(ProcessId(0), 2_500);
    sim.run_until(15_000);
    assert!(
        sim.node(ProcessId(1)).is_mgr(),
        "successor assumes the role"
    );
    assert_eq!(sim.node(ProcessId(2)).mgr(), ProcessId(1));
}

#[test]
fn faulty_set_drains_as_exclusions_commit() {
    let mut sim = cluster(5, 19);
    sim.crash_at(ProcessId(4), 400);
    sim.run_until(12_000);
    // After the exclusion commits nobody still *holds* a pending suspicion.
    for p in sim.living() {
        assert_eq!(
            sim.node(p).faulty_set().count(),
            0,
            "{p} still holds a pending suspicion"
        );
    }
}
