//! Heartbeat-tick regression tests: suspicion ordering within a tick and
//! the boundedness of the per-suspect bookkeeping maps.

use gmp_core::cluster;
use gmp_sim::TraceKind;
use gmp_types::note::FaultySource;
use gmp_types::{Note, ProcessId};

/// Regression for the tick-ordering bug: `on_tick` used to broadcast
/// heartbeats *before* draining injected suspicions and running the
/// detector, so a peer the sender declared faulty at that very tick still
/// received one more heartbeat from it — violating the spirit of S1, which
/// severs communication *at* the suspicion. Suspicions now apply first, so
/// no heartbeat is ever sent to a process suspected at the same instant.
#[test]
fn no_heartbeat_to_a_peer_suspected_at_the_same_instant() {
    let observer = ProcessId(2);
    let victim = ProcessId(3);
    let mut sim = cluster(5, 23);
    sim.run_until(210);
    sim.node_mut(observer).inject_suspicion(victim);
    sim.run_until(2_000);

    // The injected suspicion lands at observer's next tick.
    let suspected_at = sim
        .trace()
        .notes()
        .find(|(e, n)| {
            e.pid == observer
                && matches!(
                    n,
                    Note::Faulty {
                        suspect,
                        source: FaultySource::Injected,
                    } if *suspect == victim
                )
        })
        .map(|(e, _)| e.time)
        .expect("the injected suspicion must fire");

    // From that instant on — *including* the suspicion's own tick — the
    // observer sends the victim nothing, heartbeats included.
    let late_sends: Vec<u64> = sim
        .trace()
        .events
        .iter()
        .filter(|e| e.pid == observer && e.time >= suspected_at)
        .filter_map(|e| match &e.kind {
            TraceKind::Send { to, .. } if *to == victim => Some(e.time),
            _ => None,
        })
        .collect();
    assert!(
        late_sends.is_empty(),
        "observer kept messaging the peer it suspected at t={suspected_at}: {late_sends:?}"
    );

    // Sanity: before the suspicion the observer *did* heartbeat the victim.
    assert!(
        sim.trace().events.iter().any(|e| {
            e.pid == observer
                && e.time < suspected_at
                && matches!(e.kind, TraceKind::Send { to, tag: "heartbeat", .. } if to == victim)
        }),
        "scenario must exercise the heartbeat path before the suspicion"
    );
}

/// Regression for the unbounded GMP-5 re-report throttle: `last_report`
/// entries used to survive the suspect's exclusion (only the direct-commit
/// path pruned them), so reconfiguration-heavy runs grew the map without
/// bound. It is now pruned on every view install: across a run that
/// installs several views, the map only ever holds in-view suspects.
#[test]
fn report_throttle_only_holds_in_view_suspects() {
    let mut sim = cluster(6, 31);
    sim.crash_at(ProcessId(5), 400);
    sim.crash_at(ProcessId(4), 1_600);
    sim.crash_at(ProcessId(3), 2_800);
    // Inspect around each exclusion, not just at quiescence, so the claim
    // covers the transient states too.
    for t in [1_000, 2_200, 3_400, 15_000] {
        sim.run_until(t);
        for p in sim.living() {
            let m = sim.node(p);
            for q in m.reported_suspects() {
                assert!(
                    m.view().contains(q),
                    "at t={t}, {p} still throttle-tracks {q}, which left its view"
                );
            }
        }
    }
    // All three victims were installed out of the view, so at quiescence
    // the throttle map must have drained completely.
    for p in sim.living() {
        assert_eq!(
            sim.node(p).reported_suspects().count(),
            0,
            "{p} kept throttle entries after every suspect was excluded"
        );
    }
    assert_eq!(sim.node(ProcessId(0)).ver(), 3, "three exclusions commit");
}
