//! Heartbeat-tick regression tests: suspicion ordering within a tick, the
//! boundedness of the per-suspect bookkeeping maps, and the equivalence of
//! the handle-addressed lease path with a plain id-addressed detector.

use gmp_core::{cluster, cluster_with, Config};
use gmp_detect::HeartbeatDetector;
use gmp_sim::TraceKind;
use gmp_types::note::FaultySource;
use gmp_types::{Note, OpKind, ProcessId};

/// Regression for the tick-ordering bug: `on_tick` used to broadcast
/// heartbeats *before* draining injected suspicions and running the
/// detector, so a peer the sender declared faulty at that very tick still
/// received one more heartbeat from it — violating the spirit of S1, which
/// severs communication *at* the suspicion. Suspicions now apply first, so
/// no heartbeat is ever sent to a process suspected at the same instant.
#[test]
fn no_heartbeat_to_a_peer_suspected_at_the_same_instant() {
    let observer = ProcessId(2);
    let victim = ProcessId(3);
    let mut sim = cluster(5, 23);
    sim.run_until(210);
    sim.node_mut(observer).inject_suspicion(victim);
    sim.run_until(2_000);

    // The injected suspicion lands at observer's next tick.
    let suspected_at = sim
        .trace()
        .notes()
        .find(|(e, n)| {
            e.pid == observer
                && matches!(
                    n,
                    Note::Faulty {
                        suspect,
                        source: FaultySource::Injected,
                    } if *suspect == victim
                )
        })
        .map(|(e, _)| e.time)
        .expect("the injected suspicion must fire");

    // From that instant on — *including* the suspicion's own tick — the
    // observer sends the victim nothing, heartbeats included.
    let late_sends: Vec<u64> = sim
        .trace()
        .events
        .iter()
        .filter(|e| e.pid == observer && e.time >= suspected_at)
        .filter_map(|e| match &e.kind {
            TraceKind::Send { to, .. } if *to == victim => Some(e.time),
            _ => None,
        })
        .collect();
    assert!(
        late_sends.is_empty(),
        "observer kept messaging the peer it suspected at t={suspected_at}: {late_sends:?}"
    );

    // Sanity: before the suspicion the observer *did* heartbeat the victim.
    assert!(
        sim.trace().events.iter().any(|e| {
            e.pid == observer
                && e.time < suspected_at
                && matches!(e.kind, TraceKind::Send { to, tag: "heartbeat", .. } if to == victim)
        }),
        "scenario must exercise the heartbeat path before the suspicion"
    );
}

/// Regression for the unbounded GMP-5 re-report throttle: `last_report`
/// entries used to survive the suspect's exclusion (only the direct-commit
/// path pruned them), so reconfiguration-heavy runs grew the map without
/// bound. It is now pruned on every view install: across a run that
/// installs several views, the map only ever holds in-view suspects.
#[test]
fn report_throttle_only_holds_in_view_suspects() {
    let mut sim = cluster(6, 31);
    sim.crash_at(ProcessId(5), 400);
    sim.crash_at(ProcessId(4), 1_600);
    sim.crash_at(ProcessId(3), 2_800);
    // Inspect around each exclusion, not just at quiescence, so the claim
    // covers the transient states too.
    for t in [1_000, 2_200, 3_400, 15_000] {
        sim.run_until(t);
        for p in sim.living() {
            let m = sim.node(p);
            for q in m.reported_suspects() {
                assert!(
                    m.view().contains(q),
                    "at t={t}, {p} still throttle-tracks {q}, which left its view"
                );
            }
        }
    }
    // All three victims were installed out of the view, so at quiescence
    // the throttle map must have drained completely.
    for p in sim.living() {
        assert_eq!(
            sim.node(p).reported_suspects().count(),
            0,
            "{p} kept throttle entries after every suspect was excluded"
        );
    }
    assert_eq!(sim.node(ProcessId(0)).ver(), 3, "three exclusions commit");
}

/// The member now drives its failure detector through cached
/// generation-stamped handles (`heard_from_ref` on a `PeerRef` resolved
/// once at `track` time) instead of re-resolving the process id on every
/// life sign. This test pins the claim that the handle path is *only* a
/// representation change: it replays one member's exact trace schedule —
/// start, receptions, tick timers, suspicions, exclusions — through a
/// plain id-addressed [`HeartbeatDetector`] oracle and demands the oracle
/// produce the identical observation-sourced suspicions at the identical
/// instants.
#[test]
fn handle_addressed_leases_equal_the_id_addressed_detector() {
    // Gossip off: every survivor must *observe* each crash via its own
    // lease timeout, so the comparison below is never vacuous.
    let cfg = Config::builder().gossip(false).build();
    let n = 6;
    let observer = ProcessId(0);
    let mut sim = cluster_with(n, 97, cfg.clone());
    sim.crash_at(ProcessId(5), 400);
    sim.crash_at(ProcessId(3), 1_600);
    sim.run_until(12_000);

    // The id-addressed oracle, driven by the observer's schedule. The
    // member's own detector runs the same algorithm through cached
    // `PeerRef` handles; `heard_from`'s suspects/roster guards subsume the
    // member-side isolation check, so a raw replay of every `Recv` is
    // faithful.
    const TICK: u64 = 1; // Member's heartbeat timer tag.
    let mut oracle = HeartbeatDetector::new(cfg.suspect_after);
    let mut oracle_suspicions: Vec<(u64, ProcessId)> = Vec::new();
    for e in sim.trace().events.iter().filter(|e| e.pid == observer) {
        match &e.kind {
            TraceKind::Start => {
                for q in (0..n as u32).map(ProcessId).filter(|&q| q != observer) {
                    oracle.track(q, e.time);
                }
            }
            TraceKind::Recv { from, .. } => oracle.heard_from(*from, e.time),
            TraceKind::Timer { tag: TICK } => {
                let expired = oracle.tick(e.time);
                oracle_suspicions.extend(expired.into_iter().map(|q| (e.time, q)));
            }
            TraceKind::Note(Note::Faulty { suspect, .. }) => {
                // Idempotent for observation-sourced suspicions (tick
                // already recorded them); required for any other source.
                oracle.suspect(*suspect);
            }
            TraceKind::Note(Note::OpApplied { op, .. }) => match op.kind {
                OpKind::Remove => oracle.forget(op.target),
                OpKind::Add => oracle.track(op.target, e.time),
            },
            _ => {}
        }
    }

    let member_suspicions: Vec<(u64, ProcessId)> = sim
        .trace()
        .notes()
        .filter(|(e, n)| {
            e.pid == observer
                && matches!(
                    n,
                    Note::Faulty {
                        source: FaultySource::Observation,
                        ..
                    }
                )
        })
        .map(|(e, n)| match n {
            Note::Faulty { suspect, .. } => (e.time, *suspect),
            _ => unreachable!(),
        })
        .collect();

    assert_eq!(
        member_suspicions.len(),
        2,
        "the observer must detect both crashes by its own timeout"
    );
    assert_eq!(
        oracle_suspicions, member_suspicions,
        "handle-addressed lease path diverged from the id-addressed oracle"
    );
    // And both exclusions committed, so the replay covered `forget` too.
    assert_eq!(sim.node(observer).ver(), 2, "both exclusions commit");
}
