//! Failure-detection substrate (§2.2 of the paper).
//!
//! Accurate crash detection is impossible in an asynchronous system; at best
//! a process can *suspect* another. The paper treats detections as input
//! events `faulty_p(q)` from two sources:
//!
//! * **F1 (Observation)** — a local mechanism (here: a timeout on hearing
//!   from the peer) decides in finite time after a real crash;
//! * **F2 (Gossip)** — learning of a suspicion from a message sent by a
//!   process that already held it.
//!
//! and imposes the isolation rule
//!
//! * **S1** — once `p` believes `q` faulty, `p` never receives a message
//!   from `q` again.
//!
//! This crate provides the timeout-based observer ([`HeartbeatDetector`],
//! F1, with injectable suspicions to model the *spurious* detections §2.2
//! discusses) and the monotone inbound filter ([`Isolation`], S1). Gossip
//! (F2) is a protocol concern and lives in `gmp-core`, which piggybacks
//! faulty sets on protocol messages.
//!
//! The detector's per-peer hot state (leases, heap entries) lives in the
//! index-addressed arenas of [`gmp_types::arena`]; the retired map-backed
//! implementation survives as [`reference::MapDetector`], the behavioral
//! oracle for the equivalence proptests in `gmp-props` and the baseline arm
//! of the `arena_hot_path` benchmarks.

use gmp_types::{Arena, PeerRef, PeerRoster, ProcessId};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

pub mod reference;

pub use reference::MapDetector;

/// Timeout-based failure observer (source F1).
///
/// The detector is driven explicitly: the owner reports life signs with
/// [`heard_from`](HeartbeatDetector::heard_from) and polls
/// [`tick`](HeartbeatDetector::tick) from a periodic timer. Any received
/// message counts as a life sign, not just heartbeats — which matches the
/// paper's reading of "time" as a mere tool for suspecting crashes.
///
/// Internally, expiry is driven by a min-heap of lease deadlines (one entry
/// pushed per life sign, deadline = life sign + `suspect_after`) with lazy
/// deletion: superseded, suspected and forgotten entries are discarded when
/// popped. A quiescent [`tick`](HeartbeatDetector::tick) therefore costs one
/// heap peek — O(expired · log n) instead of a full O(n) scan of every
/// tracked peer — while suspecting in exactly the same order (ascending id)
/// and at exactly the same instants as the scan did.
///
/// # Arena-backed hot state
///
/// Leases are not kept in a `ProcessId`-keyed map but in a dense
/// [`Arena`] addressed by the slots of a [`PeerRoster`] the detector owns:
/// every lease touch is an array access, not a tree walk. The roster is the
/// authoritative `ProcessId → PeerIdx` remap for the owning member — the
/// protocol layer shares it (via [`resolve`](HeartbeatDetector::resolve))
/// to address its own per-peer arenas (digest epochs, report throttles), so
/// all hot per-peer state of one member lives in a handful of parallel
/// arrays. Slots of excluded peers are tombstoned and recycled for later
/// joiners under a bumped generation; heap entries carry the
/// generation-stamped [`PeerRef`], so a stale entry whose slot has been
/// recycled fails the generation check and can never suspect the slot's new
/// occupant (see `gmp_types::arena` for the aliasing contract).
///
/// # Invariant: process instances never return
///
/// The §2.1 model reuses no process identity: a crashed or excluded process
/// that "comes back" is a *new* instance with a fresh id. The detector
/// leans on that — [`forget`](HeartbeatDetector::forget) permanently
/// retires an id, and a later [`track`](HeartbeatDetector::track) of the
/// same id is a model violation that debug builds reject with a
/// `debug_assert` rather than silently restarting monitoring.
#[derive(Clone, Debug)]
pub struct HeartbeatDetector {
    suspect_after: u64,
    /// The `ProcessId → PeerIdx` remap; owns the dense index space that
    /// `last_heard` (and the owning member's arenas) are addressed by.
    roster: PeerRoster,
    /// Current lease start (last life sign) per live peer.
    last_heard: Arena<u64>,
    /// Suspects stay id-keyed: suspicions can outlive roster membership
    /// (a gossiped suspect may never have been tracked here) and S1 makes
    /// them permanent.
    suspects: BTreeSet<ProcessId>,
    /// Min-heap of `(lease deadline, peer handle)`. Never pruned eagerly;
    /// an entry is live iff its generation-stamped handle still reads the
    /// matching lease from `last_heard`.
    deadlines: BinaryHeap<Reverse<(u64, PeerRef)>>,
    /// Ids retired by `forget`, kept (in debug builds only) to assert that
    /// no retired instance is ever tracked again — nor ever resurfaces
    /// from a stale heap entry after its slot is recycled.
    #[cfg(debug_assertions)]
    forgotten: BTreeSet<ProcessId>,
}

impl HeartbeatDetector {
    /// A detector that suspects a tracked peer after `suspect_after` ticks
    /// of silence.
    ///
    /// # Panics
    ///
    /// Panics if `suspect_after` is zero.
    pub fn new(suspect_after: u64) -> Self {
        assert!(suspect_after > 0, "suspect_after must be positive");
        HeartbeatDetector {
            suspect_after,
            roster: PeerRoster::new(),
            last_heard: Arena::new(),
            suspects: BTreeSet::new(),
            deadlines: BinaryHeap::new(),
            #[cfg(debug_assertions)]
            forgotten: BTreeSet::new(),
        }
    }

    /// The configured silence threshold.
    pub fn suspect_after(&self) -> u64 {
        self.suspect_after
    }

    /// The current arena handle for `p`, or `None` if `p` is not enrolled.
    ///
    /// This is the shared `ProcessId → PeerIdx` remap: the owning member
    /// resolves once per touch and addresses its own per-peer arenas
    /// (digest epochs, GMP-5 report throttles) with the returned handle, so
    /// every arena keyed off this detector agrees on slot assignment and
    /// generation. Suspected peers stay resolvable until
    /// [`forget`](HeartbeatDetector::forget) retires them with the view
    /// change.
    #[inline]
    pub fn resolve(&self, p: ProcessId) -> Option<PeerRef> {
        self.roster.resolve(p)
    }

    /// Iterator over every enrolled peer — tracked *and* suspected-but-not
    /// -yet-forgotten — in ascending id order, with its arena handle. This
    /// is how the owning member walks its own per-peer arenas without
    /// keeping a parallel id index.
    pub fn enrolled(&self) -> impl Iterator<Item = (ProcessId, PeerRef)> + '_ {
        self.roster.iter()
    }

    /// The lease deadline for a life sign observed at `t`.
    fn deadline(&self, t: u64) -> u64 {
        t.saturating_add(self.suspect_after)
    }

    /// Starts monitoring `p`, treating `now` as the last life sign (a grace
    /// period equal to the full timeout).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `p` was previously
    /// [`forget`](HeartbeatDetector::forget)ten: process instances never
    /// return in the model, so re-tracking a retired id is a caller bug.
    pub fn track(&mut self, p: ProcessId, now: u64) {
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.forgotten.contains(&p),
            "re-tracking forgotten process {p}: instances never return"
        );
        if self.suspects.contains(&p) {
            return;
        }
        let r = self.roster.insert(p);
        if self.last_heard.get(r).is_none() {
            self.last_heard.set(r, now);
            self.deadlines.push(Reverse((self.deadline(now), r)));
        }
    }

    /// Stops monitoring `p` (e.g. it was removed from the view). Its
    /// suspicion status is dropped as well. The id is *retired*: process
    /// instances never return in the model, so tracking it again is
    /// rejected (in debug builds) rather than silently restarting
    /// monitoring with a fresh lease. The roster slot is tombstoned for
    /// recycling; any heap entries still pointing at it die on the
    /// generation check when popped.
    pub fn forget(&mut self, p: ProcessId) {
        if let Some(r) = self.roster.remove(p) {
            self.last_heard.remove(r);
        }
        self.suspects.remove(&p);
        #[cfg(debug_assertions)]
        self.forgotten.insert(p);
    }

    /// Stops monitoring `p` *without* retiring its id — the topology-shift
    /// counterpart of [`forget`](HeartbeatDetector::forget). A view change
    /// can move a still-live member out of this owner's monitoring set (a
    /// sparse ring re-knits around every install) and a later change can
    /// move it back in, so the id must stay trackable: the slot is
    /// tombstoned like `forget`'s, but the id is not added to the
    /// `forgotten` set and a later [`track`](HeartbeatDetector::track)
    /// legally re-enrolls it under a fresh slot and lease. Suspicion state
    /// is *kept* — S1 beliefs are permanent and independent of who is
    /// currently monitoring whom. No-op for ids that were never enrolled
    /// (releasing an already-`forget`ten peer during the same view install
    /// must be harmless).
    pub fn release(&mut self, p: ProcessId) {
        if let Some(r) = self.roster.remove(p) {
            self.last_heard.remove(r);
        }
    }

    /// Records a life sign from `p`. Ignored once `p` is suspected (by S1
    /// the owner will not receive from `p` again, so un-suspecting is
    /// meaningless) and ignored for *untracked* peers: the detector
    /// monitors exactly the membership the owner registered via
    /// [`track`](HeartbeatDetector::track) — a message from a stranger
    /// (e.g. a joiner whose admission has not committed here yet) must not
    /// silently enroll it for suspicion.
    pub fn heard_from(&mut self, p: ProcessId, now: u64) {
        if self.suspects.contains(&p) {
            return;
        }
        let Some(r) = self.roster.resolve(p) else {
            return;
        };
        if let Some(t) = self.last_heard.get_mut(r) {
            if now > *t {
                // The lease advanced: the old heap entry goes stale and a
                // fresh one carries the new deadline. (Stale information —
                // `now <= *t` — must not shorten the lease, and pushes
                // nothing.)
                *t = now;
                let d = now.saturating_add(self.suspect_after);
                self.deadlines.push(Reverse((d, r)));
            }
        }
    }

    /// Ref-addressed fast path of [`heard_from`](Self::heard_from): records
    /// a life sign for the peer behind `r` without the id→slot resolve.
    ///
    /// The generation-checked lease read subsumes every guard the id path
    /// spells out: a suspected peer's lease was cleared by
    /// [`suspect`](Self::suspect), a forgotten peer's slot is tombstoned
    /// (or recycled under a bumped generation), and an untracked handle
    /// never had a lease — all of them read `None` here and are ignored.
    pub fn heard_from_ref(&mut self, r: PeerRef, now: u64) {
        if let Some(t) = self.last_heard.get_mut(r) {
            if now > *t {
                *t = now;
                let d = now.saturating_add(self.suspect_after);
                self.deadlines.push(Reverse((d, r)));
            }
        }
    }

    /// Marks `p` suspected regardless of timing (gossip, inference, or test
    /// injection). Returns `true` if this is a new suspicion.
    pub fn suspect(&mut self, p: ProcessId) -> bool {
        if let Some(r) = self.roster.resolve(p) {
            // Clear the lease so pending heap entries go stale; the slot
            // itself stays enrolled until `forget` retires it, so the
            // owner can keep addressing its per-peer arenas for `p`.
            self.last_heard.remove(r);
        }
        self.suspects.insert(p)
    }

    /// Whether `p` is currently suspected.
    pub fn is_suspect(&self, p: ProcessId) -> bool {
        self.suspects.contains(&p)
    }

    /// Evaluates timeouts at time `now`, returning the peers newly suspected
    /// by observation (F1), in ascending id order. They are also recorded as
    /// suspects.
    ///
    /// Cost: O(expired · log n) heap pops (plus one peek when nothing
    /// expired) — not a scan of every tracked peer. Stale heap entries
    /// (lease renewed, peer suspected by gossip, forgotten, or pointing at
    /// a recycled slot) are lazily discarded as they surface: the
    /// generation-stamped handle reads nothing from `last_heard` once the
    /// lease it carried is gone.
    pub fn tick(&mut self, now: u64) -> Vec<ProcessId> {
        let mut expired = Vec::new();
        while let Some(&Reverse((deadline, r))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            // Live iff this entry carries the peer's *current* lease. A
            // handle whose slot was recycled fails the arena's generation
            // check and reads `None` here — a forgotten peer's entry can
            // never surface as a suspicion of the slot's new occupant.
            if self.last_heard.get(r) == Some(&deadline.saturating_sub(self.suspect_after)) {
                self.last_heard.remove(r);
                let p = self
                    .roster
                    .pid_of(r)
                    .expect("a live lease implies a live roster slot");
                #[cfg(debug_assertions)]
                debug_assert!(
                    !self.forgotten.contains(&p),
                    "forgotten {p} resurfaced from a stale heap entry"
                );
                self.suspects.insert(p);
                expired.push(p);
            }
        }
        // The scan this replaces reported expiries in map (ascending-id)
        // order; deterministic replay depends on preserving that.
        expired.sort_unstable();
        expired
    }

    /// Iterator over currently tracked (unsuspected) peers, in ascending
    /// id order — the order the former `BTreeMap` iteration produced.
    pub fn tracked(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.roster
            .iter()
            .filter(|&(_, r)| self.last_heard.get(r).is_some())
            .map(|(p, _)| p)
    }

    /// Iterator over all current suspects.
    pub fn suspects(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.suspects.iter().copied()
    }
}

/// The monotone isolation filter of system property S1.
///
/// "Once a process `p` believes another, `q`, to be faulty, `p` never
/// receives messages from `q` again" — including after `q`'s removal from
/// the view, and forever (process instances are never reused).
#[derive(Clone, Debug, Default)]
pub struct Isolation {
    set: BTreeSet<ProcessId>,
}

impl Isolation {
    /// An empty filter.
    pub fn new() -> Self {
        Isolation::default()
    }

    /// Adds `q` to the isolated set. Returns `true` if newly isolated.
    pub fn isolate(&mut self, q: ProcessId) -> bool {
        self.set.insert(q)
    }

    /// Whether messages from `q` must be discarded.
    pub fn is_isolated(&self, q: ProcessId) -> bool {
        self.set.contains(&q)
    }

    /// Iterator over isolated processes.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.set.iter().copied()
    }

    /// Number of isolated processes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing is isolated yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcessId = ProcessId(1);
    const P2: ProcessId = ProcessId(2);

    #[test]
    fn timeout_suspects_silent_peer() {
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        d.track(P2, 0);
        assert!(d.tick(50).is_empty());
        d.heard_from(P1, 60);
        let suspected = d.tick(100);
        assert_eq!(suspected, vec![P2]);
        assert!(d.is_suspect(P2));
        assert!(!d.is_suspect(P1));
        // P1 expires later.
        assert_eq!(d.tick(160), vec![P1]);
    }

    #[test]
    fn ref_addressed_life_signs_match_the_id_path() {
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        d.track(P2, 0);
        let r1 = d.resolve(P1).unwrap();
        d.heard_from_ref(r1, 60);
        assert_eq!(d.tick(100), vec![P2]);
        assert_eq!(d.tick(160), vec![P1]);
        // A retired handle is ignored: P1's lease is gone (suspected), and
        // a recycled slot fails the generation check.
        d.heard_from_ref(r1, 200);
        assert!(d.is_suspect(P1));
        d.forget(P1);
        d.heard_from_ref(r1, 300);
        assert!(d.tick(1_000).is_empty());
    }

    #[test]
    fn life_signs_do_not_move_backwards() {
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 50);
        d.heard_from(P1, 40); // stale information must not shorten the lease
        assert!(d.tick(149).is_empty());
        assert_eq!(d.tick(150), vec![P1]);
    }

    #[test]
    fn strangers_are_not_enrolled_by_their_messages() {
        let mut d = HeartbeatDetector::new(100);
        d.heard_from(P2, 10); // never tracked: must not be monitored
        assert!(d.tick(10_000).is_empty());
        assert!(!d.is_suspect(P2));
    }

    #[test]
    fn suspicion_is_sticky() {
        let mut d = HeartbeatDetector::new(10);
        d.track(P1, 0);
        assert!(d.suspect(P1));
        assert!(!d.suspect(P1));
        d.heard_from(P1, 5); // S1: ignored once suspected
        assert!(d.is_suspect(P1));
        assert!(d.tracked().next().is_none());
    }

    #[test]
    fn suspects_stay_resolvable_until_forgotten() {
        // The owning member keeps per-peer report state for suspects that
        // are still in its view; the roster slot must outlive the lease.
        let mut d = HeartbeatDetector::new(10);
        d.track(P1, 0);
        let r = d.resolve(P1).expect("tracked peers resolve");
        d.suspect(P1);
        assert_eq!(d.resolve(P1), Some(r), "suspicion keeps the slot");
        d.forget(P1);
        assert_eq!(d.resolve(P1), None, "forget retires the slot");
    }

    #[test]
    fn forget_removes_all_state() {
        let mut d = HeartbeatDetector::new(10);
        d.track(P1, 0);
        d.suspect(P1);
        d.forget(P1);
        assert!(!d.is_suspect(P1));
        assert!(d.tick(1_000).is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "instances never return")]
    fn re_tracking_a_forgotten_id_is_rejected() {
        let mut d = HeartbeatDetector::new(10);
        d.track(P1, 0);
        d.forget(P1);
        d.track(P1, 50); // model violation: the instance was retired
    }

    #[test]
    fn renewed_leases_leave_only_stale_heap_entries() {
        // Several life signs per peer: each renewal supersedes the previous
        // deadline, and only the *latest* lease decides expiry.
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        for t in [10, 20, 30, 250] {
            d.heard_from(P1, t);
        }
        assert!(
            d.tick(349).is_empty(),
            "stale deadlines (110..=130) must not fire at 349"
        );
        assert_eq!(d.tick(350), vec![P1], "the live lease expires at 250+100");
    }

    #[test]
    fn simultaneous_expiries_surface_in_ascending_id_order() {
        // The heap orders by (deadline, handle); equal deadlines must still
        // come out ascending by id, like the map scan this replaced.
        let mut d = HeartbeatDetector::new(50);
        let ids = [7, 3, 9, 1, 5].map(ProcessId);
        for p in ids {
            d.track(p, 0);
        }
        let expired = d.tick(50);
        assert_eq!(expired, [1, 3, 5, 7, 9].map(ProcessId).to_vec());
        assert!(d.tracked().next().is_none());
    }

    #[test]
    fn gossip_suspicion_invalidates_the_pending_deadline() {
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        d.track(P2, 0);
        assert!(d.suspect(P1)); // learned via gossip before the timeout
        assert_eq!(
            d.tick(100),
            vec![P2],
            "P1's stale deadline must not re-report it"
        );
    }

    #[test]
    fn forgotten_entry_cannot_resurface_after_slot_reuse() {
        // The bugfix this pins: `forget` leaves heap entries behind (lazy
        // deletion). When the arena recycles the forgotten peer's slot for
        // a newcomer, a stale entry sharing the *same slot and the same
        // deadline value* as the newcomer's live lease must still die on
        // the generation check — it must neither suspect the retired id
        // nor the slot's new occupant ahead of its own lease.
        let mut d = HeartbeatDetector::new(100);
        let p9 = ProcessId(9);
        d.track(P1, 0); // heap entry (100, slot0 gen0)
        d.forget(P1); // tombstones slot 0, heap entry left behind
        d.track(p9, 0); // recycles slot 0 (gen1), same deadline 100

        let r1 = d.resolve(p9).expect("newcomer resolves");
        // The stale (100, slot0 gen0) entry pops first at t=100 and must
        // read nothing; the live (100, slot0 gen1) entry then suspects the
        // newcomer — exactly once, at its own lease's expiry.
        assert!(d.tick(99).is_empty());
        assert_eq!(d.tick(100), vec![p9], "only the live lease fires");
        assert!(!d.is_suspect(P1), "the retired id never resurfaces");
        assert_eq!(d.resolve(p9), Some(r1), "suspicion keeps the slot");
        assert!(d.tick(10_000).is_empty(), "nothing fires twice");
    }

    #[test]
    fn forgotten_entry_is_discarded_even_with_a_renewed_occupant() {
        // Variant: the newcomer renews its lease past the stale deadline,
        // so at the stale entry's pop time *no* lease matches — the slot
        // must stay silent until the renewed lease itself expires.
        let mut d = HeartbeatDetector::new(100);
        let p9 = ProcessId(9);
        d.track(P1, 0);
        d.forget(P1);
        d.track(p9, 0);
        d.heard_from(p9, 50); // live deadline moves to 150
        assert!(d.tick(100).is_empty(), "stale gen-0 and gen-1 entries die");
        assert_eq!(d.tick(150), vec![p9]);
    }

    #[test]
    fn release_allows_re_tracking() {
        // Unlike `forget`, `release` models a topology shift: the peer is
        // still a live group member, just no longer monitored here. It may
        // come back.
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        d.release(P1);
        assert_eq!(d.resolve(P1), None, "released slot is retired");
        assert!(d.tick(10_000).is_empty(), "no lease left to expire");
        d.track(P1, 500); // legal: the id was not retired
        assert!(d.resolve(P1).is_some());
        assert_eq!(d.tick(600), vec![P1], "fresh lease, fresh timeout");
    }

    #[test]
    fn release_keeps_suspicion_but_drops_the_slot() {
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0);
        d.suspect(P1);
        d.release(P1);
        assert!(d.is_suspect(P1), "S1 beliefs survive topology shifts");
        assert_eq!(d.resolve(P1), None);
        // Re-tracking a suspect stays a no-op, as on the flat path.
        d.track(P1, 200);
        assert_eq!(d.resolve(P1), None);
        assert!(d.tick(10_000).is_empty());
    }

    #[test]
    fn release_of_a_stranger_or_forgotten_peer_is_a_no_op() {
        let mut d = HeartbeatDetector::new(100);
        d.release(P1); // never enrolled
        d.track(P2, 0);
        d.forget(P2);
        d.release(P2); // already retired by the view change
        assert!(d.tick(10_000).is_empty());
        #[cfg(debug_assertions)]
        {
            // `release` after `forget` must not un-retire the id.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut d2 = d.clone();
                d2.track(P2, 50);
            }));
            assert!(result.is_err(), "forgotten id stays forgotten");
        }
    }

    #[test]
    fn stale_heap_entries_from_a_released_slot_die_on_generation() {
        // Release leaves heap entries behind, like forget; a recycled slot
        // must not inherit them.
        let mut d = HeartbeatDetector::new(100);
        d.track(P1, 0); // heap entry (100, slot0 gen0)
        d.release(P1);
        d.track(P2, 0); // recycles slot 0 under gen1, deadline 100
        d.heard_from(P2, 50);
        assert!(d.tick(100).is_empty(), "gen-0 entry reads nothing");
        assert_eq!(d.tick(150), vec![P2]);
        assert!(!d.is_suspect(P1));
    }

    #[test]
    fn tracking_a_suspect_is_a_no_op() {
        let mut d = HeartbeatDetector::new(10);
        d.suspect(P1);
        d.track(P1, 0);
        assert!(d.tracked().next().is_none());
        assert!(d.is_suspect(P1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = HeartbeatDetector::new(0);
    }

    #[test]
    fn isolation_is_monotone() {
        let mut iso = Isolation::new();
        assert!(iso.is_empty());
        assert!(iso.isolate(P1));
        assert!(!iso.isolate(P1));
        assert!(iso.is_isolated(P1));
        assert!(!iso.is_isolated(P2));
        assert_eq!(iso.len(), 1);
        assert_eq!(iso.iter().collect::<Vec<_>>(), vec![P1]);
    }
}
