//! The retired `BTreeMap`-backed detector, kept as a behavioral oracle.
//!
//! [`MapDetector`] is the exact pre-arena implementation of
//! [`HeartbeatDetector`](crate::HeartbeatDetector): per-peer leases in a
//! `BTreeMap<ProcessId, u64>` and heap entries keyed by `ProcessId`, with
//! the same lazy-deletion discipline. It exists for two jobs:
//!
//! * the **equivalence proptests** in `gmp-props` drive identical schedules
//!   of track / heard_from / suspect / forget / tick through both
//!   implementations and assert identical suspicions, identical expiry
//!   instants and identical tracked sets — the arena migration is pinned
//!   behaviorally, not just by golden fingerprints;
//! * the **`arena_hot_path` benchmarks** (`tables e11`, Criterion group)
//!   use it as the map-backed arm of the map-vs-arena comparison.
//!
//! It is deliberately frozen: bugfixes that change *behavior* must land in
//! both implementations or the proptests will say so.

use gmp_types::ProcessId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// The pre-arena, map-backed timeout observer. Same observable behavior as
/// [`HeartbeatDetector`](crate::HeartbeatDetector); see the
/// [module docs](self) for why it is kept.
#[derive(Clone, Debug)]
pub struct MapDetector {
    suspect_after: u64,
    last_heard: BTreeMap<ProcessId, u64>,
    suspects: BTreeSet<ProcessId>,
    /// Min-heap of `(lease deadline, peer)`, lazily pruned.
    deadlines: BinaryHeap<Reverse<(u64, ProcessId)>>,
}

impl MapDetector {
    /// A detector that suspects a tracked peer after `suspect_after` ticks
    /// of silence.
    ///
    /// # Panics
    ///
    /// Panics if `suspect_after` is zero.
    pub fn new(suspect_after: u64) -> Self {
        assert!(suspect_after > 0, "suspect_after must be positive");
        MapDetector {
            suspect_after,
            last_heard: BTreeMap::new(),
            suspects: BTreeSet::new(),
            deadlines: BinaryHeap::new(),
        }
    }

    /// The configured silence threshold.
    pub fn suspect_after(&self) -> u64 {
        self.suspect_after
    }

    /// Starts monitoring `p`, treating `now` as the last life sign.
    pub fn track(&mut self, p: ProcessId, now: u64) {
        if !self.suspects.contains(&p) && !self.last_heard.contains_key(&p) {
            self.last_heard.insert(p, now);
            self.deadlines
                .push(Reverse((now.saturating_add(self.suspect_after), p)));
        }
    }

    /// Stops monitoring `p`; its suspicion status is dropped as well.
    pub fn forget(&mut self, p: ProcessId) {
        self.last_heard.remove(&p);
        self.suspects.remove(&p);
    }

    /// Records a life sign from `p`; ignored for suspects and strangers.
    pub fn heard_from(&mut self, p: ProcessId, now: u64) {
        if self.suspects.contains(&p) {
            return;
        }
        if let Some(t) = self.last_heard.get_mut(&p) {
            if now > *t {
                *t = now;
                let d = now.saturating_add(self.suspect_after);
                self.deadlines.push(Reverse((d, p)));
            }
        }
    }

    /// Marks `p` suspected. Returns `true` if this is a new suspicion.
    pub fn suspect(&mut self, p: ProcessId) -> bool {
        self.last_heard.remove(&p);
        self.suspects.insert(p)
    }

    /// Whether `p` is currently suspected.
    pub fn is_suspect(&self, p: ProcessId) -> bool {
        self.suspects.contains(&p)
    }

    /// Evaluates timeouts at `now`; newly suspected peers in ascending id
    /// order.
    pub fn tick(&mut self, now: u64) -> Vec<ProcessId> {
        let mut expired = Vec::new();
        while let Some(&Reverse((deadline, p))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            if self.last_heard.get(&p) == Some(&deadline.saturating_sub(self.suspect_after)) {
                self.last_heard.remove(&p);
                self.suspects.insert(p);
                expired.push(p);
            }
        }
        expired.sort_unstable();
        expired
    }

    /// Iterator over currently tracked (unsuspected) peers, ascending.
    pub fn tracked(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.last_heard.keys().copied()
    }

    /// Iterator over all current suspects.
    pub fn suspects(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.suspects.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_the_basic_expiry_schedule() {
        let mut d = MapDetector::new(100);
        d.track(ProcessId(1), 0);
        d.track(ProcessId(2), 0);
        d.heard_from(ProcessId(1), 60);
        assert_eq!(d.tick(100), vec![ProcessId(2)]);
        assert_eq!(d.tick(160), vec![ProcessId(1)]);
        assert_eq!(d.suspect_after(), 100);
        assert!(d.suspects().count() == 2 && d.tracked().next().is_none());
    }

    #[test]
    fn oracle_forget_and_re_suspect() {
        let mut d = MapDetector::new(10);
        d.track(ProcessId(1), 0);
        assert!(d.suspect(ProcessId(1)));
        assert!(d.is_suspect(ProcessId(1)));
        d.forget(ProcessId(1));
        assert!(!d.is_suspect(ProcessId(1)));
        assert!(d.tick(1_000).is_empty());
    }
}
