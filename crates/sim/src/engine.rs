//! The discrete-event engine: deterministic scheduling, fault injection,
//! causal stamping.

use crate::net::{BlockMode, NetState};
use crate::node::{Action, Ctx, Message, Node, TimerId};
use crate::stats::Stats;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::Time;
use gmp_causality::{CowClock, LamportClock, Stamp};
use gmp_types::ProcessId;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Liveness status of a simulated process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Operational.
    Up,
    /// Crashed by fault injection (`quit_p` in the model).
    Crashed,
    /// Executed `quit` itself (excluded or lost a majority).
    Quit,
}

impl NodeStatus {
    /// True when the process can still execute events.
    pub fn is_up(self) -> bool {
        self == NodeStatus::Up
    }
}

/// Configures and builds a [`Sim`].
///
/// ```
/// # use gmp_sim::Builder;
/// let builder = Builder::new().seed(42).delay(1, 20);
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    delay_min: Time,
    delay_max: Time,
    seed: u64,
    fifo: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            delay_min: 1,
            delay_max: 10,
            seed: 0,
            fifo: true,
        }
    }
}

impl Builder {
    /// A builder with default delays (1..=10 ticks), seed 0, FIFO links.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Message delay range in ticks (inclusive); delays are sampled
    /// uniformly and independently per message.
    pub fn delay(mut self, min: Time, max: Time) -> Self {
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Seed for all randomness in the run. Equal seeds give identical runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether per-link FIFO delivery order is enforced (the model requires
    /// it; disable only to exercise the `gmp-link` FIFO construction).
    pub fn fifo(mut self, fifo: bool) -> Self {
        self.fifo = fifo;
        self
    }

    /// Builds an empty simulator; add nodes with [`Sim::add_node`].
    pub fn build<M: Message, N: Node<M>>(self) -> Sim<M, N> {
        Sim {
            slots: Vec::new(),
            queue: BinaryHeap::new(),
            held: HashMap::new(),
            net: NetState::new(self.delay_min, self.delay_max, self.fifo),
            rng: SmallRng::seed_from_u64(self.seed),
            time: 0,
            seq: 0,
            msg_counter: 0,
            timer_counter: 0,
            cancelled: HashSet::new(),
            crash_after: Vec::new(),
            trace: Trace::default(),
            stats: Stats::default(),
            started: false,
        }
    }
}

pub(crate) struct Slot<N> {
    pub(crate) node: Option<N>,
    pub(crate) status: NodeStatus,
    /// Copy-on-write working clock: stamping an event is an O(1) snapshot,
    /// and the vector is deep-copied only on the first advance after a
    /// snapshot (see `gmp_causality::CowClock`).
    pub(crate) vc: CowClock,
    pub(crate) lamport: LamportClock,
}

#[derive(Clone, Debug)]
pub(crate) struct InFlight<M> {
    pub(crate) from: ProcessId,
    pub(crate) to: ProcessId,
    pub(crate) msg: M,
    pub(crate) msg_id: u64,
    pub(crate) tag: &'static str,
    pub(crate) send_vc: Stamp,
    pub(crate) send_lamport: u64,
}

pub(crate) enum QKind<M> {
    Deliver(InFlight<M>),
    Timer {
        pid: ProcessId,
        id: TimerId,
        tag: u64,
    },
    Crash {
        pid: ProcessId,
    },
    Control(Control),
}

#[derive(Clone, Debug)]
pub(crate) enum Control {
    Partition(Vec<usize>),
    Heal,
    Block {
        from: ProcessId,
        to: ProcessId,
        mode: BlockMode,
    },
    Unblock {
        from: ProcessId,
        to: ProcessId,
    },
    SetDelay {
        from: ProcessId,
        to: ProcessId,
        range: Option<(Time, Time)>,
    },
    CrashAfterSends {
        pid: ProcessId,
        tag: Option<&'static str>,
        remaining: u32,
    },
}

pub(crate) struct Queued<M> {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) kind: QKind<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

enum Trigger<M> {
    Start,
    Recv {
        from: ProcessId,
        msg: M,
        msg_id: u64,
        tag: &'static str,
        send_vc: Stamp,
        send_lamport: u64,
    },
    Timer {
        tag: u64,
    },
}

/// A scheduled mid-broadcast crash (Figure 3): the process may perform
/// `remaining` more sends (optionally only those matching `tag`) and is
/// then crashed immediately after the final matching send.
#[derive(Clone, Copy)]
pub(crate) struct SendCrash {
    pub(crate) tag: Option<&'static str>,
    pub(crate) remaining: u32,
}

/// The deterministic simulator. See the crate docs for an example.
pub struct Sim<M: Message, N: Node<M>> {
    pub(crate) slots: Vec<Slot<N>>,
    pub(crate) queue: BinaryHeap<Reverse<Queued<M>>>,
    /// Held messages per directed link, in send order.
    pub(crate) held: HashMap<(u32, u32), Vec<InFlight<M>>>,
    pub(crate) net: NetState,
    pub(crate) rng: SmallRng,
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) msg_counter: u64,
    pub(crate) timer_counter: u64,
    pub(crate) cancelled: HashSet<u64>,
    /// Pending mid-broadcast crash per process, indexed by pid (the slot
    /// table is dense, so this follows the same index-addressed scheme as
    /// the protocol's peer arenas).
    pub(crate) crash_after: Vec<Option<SendCrash>>,
    pub(crate) trace: Trace,
    pub(crate) stats: Stats,
    pub(crate) started: bool,
}

impl<M: Message, N: Node<M>> Sim<M, N> {
    /// Registers a process. Must be called before the first `run_until`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started.
    pub fn add_node(&mut self, node: N) -> ProcessId {
        assert!(
            !self.started,
            "cannot add nodes after the simulation started"
        );
        let pid = ProcessId(self.slots.len() as u32);
        self.slots.push(Slot {
            node: Some(node),
            status: NodeStatus::Up,
            vc: CowClock::new(0),
            lamport: LamportClock::new(),
        });
        pid
    }

    /// Number of processes in the run.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// The recorded run so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Message counters so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Liveness status of a process.
    pub fn status(&self, pid: ProcessId) -> NodeStatus {
        self.slots[pid.index()].status
    }

    /// Processes that are still up.
    pub fn living(&self) -> Vec<ProcessId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status.is_up())
            .map(|(i, _)| ProcessId(i as u32))
            .collect()
    }

    /// Immutable access to a node's protocol state (for assertions).
    pub fn node(&self, pid: ProcessId) -> &N {
        self.slots[pid.index()]
            .node
            .as_ref()
            .expect("node is present outside dispatch")
    }

    /// Mutable access to a node's protocol state (test setup only).
    pub fn node_mut(&mut self, pid: ProcessId) -> &mut N {
        self.slots[pid.index()]
            .node
            .as_mut()
            .expect("node is present outside dispatch")
    }

    pub(crate) fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    pub(crate) fn enqueue(&mut self, time: Time, kind: QKind<M>) {
        let seq = self.next_seq();
        self.queue.push(Reverse(Queued { time, seq, kind }));
    }

    /// Schedules a crash (`quit_p`) at the given time.
    pub fn crash_at(&mut self, pid: ProcessId, at: Time) {
        self.enqueue(at, QKind::Crash { pid });
    }

    /// From time `at` on, lets `pid` perform `sends` more message sends
    /// (optionally counting only messages whose tag equals `tag`) and then
    /// crashes it *immediately after the matching send* — i.e. possibly in
    /// the middle of a broadcast, as in Figure 3.
    pub fn crash_after_sends_at(
        &mut self,
        pid: ProcessId,
        at: Time,
        tag: Option<&'static str>,
        sends: u32,
    ) {
        self.enqueue(
            at,
            QKind::Control(Control::CrashAfterSends {
                pid,
                tag,
                remaining: sends,
            }),
        );
    }

    /// Blocks the directed link `from -> to` starting at `at`.
    pub fn block_link_at(&mut self, from: ProcessId, to: ProcessId, mode: BlockMode, at: Time) {
        self.enqueue(at, QKind::Control(Control::Block { from, to, mode }));
    }

    /// Unblocks the directed link `from -> to` at `at`; held messages are
    /// then delivered (with fresh delays, preserving FIFO order).
    pub fn unblock_link_at(&mut self, from: ProcessId, to: ProcessId, at: Time) {
        self.enqueue(at, QKind::Control(Control::Unblock { from, to }));
    }

    /// Partitions the processes into the given groups at time `at`.
    /// Cross-partition messages are held (unbounded delay), not lost.
    ///
    /// # Panics
    ///
    /// Panics (at application time) if a process appears in no group.
    pub fn partition_at(&mut self, groups: &[&[ProcessId]], at: Time) {
        let mut assignment = vec![usize::MAX; self.slots.len()];
        for (g, members) in groups.iter().enumerate() {
            for p in *members {
                assignment[p.index()] = g;
            }
        }
        assert!(
            assignment.iter().all(|&g| g != usize::MAX),
            "every process must appear in exactly one partition group"
        );
        self.enqueue(at, QKind::Control(Control::Partition(assignment)));
    }

    /// Heals any partition at time `at`, releasing held messages.
    pub fn heal_at(&mut self, at: Time) {
        self.enqueue(at, QKind::Control(Control::Heal));
    }

    /// Overrides the delay range of the directed link `from -> to` at `at`
    /// (`None` restores the default). Used to model degraded links that
    /// trigger spurious failure detection (§2.2).
    pub fn set_link_delay_at(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        range: Option<(Time, Time)>,
        at: Time,
    ) {
        self.enqueue(at, QKind::Control(Control::SetDelay { from, to, range }));
    }

    /// Runs the simulation, processing every event with `time <= until`.
    pub fn run_until(&mut self, until: Time) {
        if !self.started {
            self.start();
        }
        while let Some(Reverse(top)) = self.queue.peek() {
            if top.time > until {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            self.dispatch(ev);
        }
        self.time = self.time.max(until);
    }

    fn start(&mut self) {
        assert!(!self.slots.is_empty(), "simulation needs at least one node");
        self.started = true;
        let n = self.slots.len();
        self.trace = Trace::new(n);
        for slot in &mut self.slots {
            slot.vc = CowClock::new(n);
        }
        // Apply fault-injection and link controls scheduled at time 0 before
        // any process takes a step, so experiments can shape the run from
        // the very first event (e.g. arm a mid-broadcast crash for a
        // broadcast performed in `on_start`).
        let mut deferred = Vec::new();
        while let Some(Reverse(top)) = self.queue.peek() {
            if top.time > 0 {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            match ev.kind {
                QKind::Control(_) | QKind::Crash { .. } => self.dispatch(ev),
                _ => deferred.push(ev),
            }
        }
        for ev in deferred {
            self.queue.push(Reverse(ev));
        }
        for i in 0..n {
            self.invoke(ProcessId(i as u32), Trigger::Start);
        }
    }

    fn dispatch(&mut self, ev: Queued<M>) {
        self.time = ev.time;
        match ev.kind {
            QKind::Deliver(inf) => self.deliver(inf),
            QKind::Timer { pid, id, tag } => {
                if self.cancelled.remove(&id.0) {
                    return;
                }
                if !self.slots[pid.index()].status.is_up() {
                    return;
                }
                self.invoke(pid, Trigger::Timer { tag });
            }
            QKind::Crash { pid } => {
                if self.slots[pid.index()].status.is_up() {
                    self.record_lifecycle(pid, TraceKind::Crash);
                    self.slots[pid.index()].status = NodeStatus::Crashed;
                }
            }
            QKind::Control(c) => self.apply_control(c),
        }
    }

    fn deliver(&mut self, inf: InFlight<M>) {
        if !self.slots[inf.to.index()].status.is_up() {
            self.stats.dropped_dead_receiver += 1;
            return;
        }
        // The link state is consulted at delivery time, so a block installed
        // after the send still catches in-flight messages.
        match self.net.fate(inf.from, inf.to) {
            Some(BlockMode::Hold) => {
                self.stats.held += 1;
                self.held
                    .entry((inf.from.0, inf.to.0))
                    .or_default()
                    .push(inf);
                return;
            }
            Some(BlockMode::Drop) => {
                self.stats.dropped_link += 1;
                return;
            }
            None => {}
        }
        self.stats.record_delivery(inf.tag);
        let InFlight {
            from,
            to,
            msg,
            msg_id,
            tag,
            send_vc,
            send_lamport,
        } = inf;
        self.invoke(
            to,
            Trigger::Recv {
                from,
                msg,
                msg_id,
                tag,
                send_vc,
                send_lamport,
            },
        );
    }

    pub(crate) fn apply_control(&mut self, c: Control) {
        match c {
            Control::Partition(groups) => self.net.set_partition(Some(groups)),
            Control::Heal => {
                self.net.set_partition(None);
                self.release_unblocked();
            }
            Control::Block { from, to, mode } => self.net.block(from, to, mode),
            Control::Unblock { from, to } => {
                self.net.unblock(from, to);
                self.release_unblocked();
            }
            Control::SetDelay { from, to, range } => self.net.set_delay_override(from, to, range),
            Control::CrashAfterSends {
                pid,
                tag,
                remaining,
            } => {
                if remaining == 0 {
                    self.crash_at(pid, self.time);
                } else {
                    if self.crash_after.len() <= pid.index() {
                        self.crash_after.resize(pid.index() + 1, None);
                    }
                    self.crash_after[pid.index()] = Some(SendCrash { tag, remaining });
                }
            }
        }
    }

    /// Reschedules held messages for every link that is no longer blocked.
    fn release_unblocked(&mut self) {
        // Released messages draw fresh per-message delays from the run's
        // RNG, so the links must be visited in a deterministic order — map
        // iteration order must never reach the RNG stream.
        let mut links: Vec<(u32, u32)> = self.held.keys().copied().collect();
        links.sort_unstable();
        for (f, t) in links {
            if self.net.fate(ProcessId(f), ProcessId(t)).is_none() {
                let msgs = self.held.remove(&(f, t)).unwrap_or_default();
                for inf in msgs {
                    self.stats.held = self.stats.held.saturating_sub(1);
                    let at = self
                        .net
                        .schedule(&mut self.rng, self.time, inf.from, inf.to);
                    self.enqueue(at, QKind::Deliver(inf));
                }
            }
        }
    }

    /// Records a crash/quit lifecycle event with proper stamping.
    fn record_lifecycle(&mut self, pid: ProcessId, kind: TraceKind) {
        let slot = &mut self.slots[pid.index()];
        slot.vc.tick(pid.index());
        let lamport = slot.lamport.tick();
        self.trace.events.push(TraceEvent {
            time: self.time,
            pid,
            lamport,
            vc: slot.vc.stamp(),
            kind,
        });
    }

    fn invoke(&mut self, pid: ProcessId, trigger: Trigger<M>) {
        let idx = pid.index();
        if !self.slots[idx].status.is_up() {
            return;
        }
        // Stamp and record the triggering event, then run the handler.
        let (call, pre_event): (HandlerCall, TraceKind) = match trigger {
            Trigger::Start => (HandlerCall::Start, TraceKind::Start),
            Trigger::Recv {
                from,
                msg,
                msg_id,
                tag,
                send_vc,
                send_lamport,
            } => {
                let slot = &mut self.slots[idx];
                slot.vc.observe(&send_vc);
                slot.lamport.merge(send_lamport);
                // merge() already ticked lamport; only vc needs its tick.
                slot.vc.tick(idx);
                let kind = TraceKind::Recv { from, msg_id, tag };
                self.trace.events.push(TraceEvent {
                    time: self.time,
                    pid,
                    lamport: slot.lamport.value(),
                    vc: slot.vc.stamp(),
                    kind: kind.clone(),
                });
                let mut node = self.slots[idx].node.take().expect("node present");
                let mut ctx = Ctx {
                    pid,
                    now: self.time,
                    actions: Vec::new(),
                    rng: &mut self.rng,
                    timer_counter: &mut self.timer_counter,
                };
                node.on_message(&mut ctx, from, msg);
                let actions = std::mem::take(&mut ctx.actions);
                self.slots[idx].node = Some(node);
                self.apply_actions(pid, actions);
                return;
            }
            Trigger::Timer { tag } => (HandlerCall::Timer(tag), TraceKind::Timer { tag }),
        };
        {
            let slot = &mut self.slots[idx];
            slot.vc.tick(idx);
            let lamport = slot.lamport.tick();
            self.trace.events.push(TraceEvent {
                time: self.time,
                pid,
                lamport,
                vc: slot.vc.stamp(),
                kind: pre_event,
            });
        }
        let mut node = self.slots[idx].node.take().expect("node present");
        let mut ctx = Ctx {
            pid,
            now: self.time,
            actions: Vec::new(),
            rng: &mut self.rng,
            timer_counter: &mut self.timer_counter,
        };
        match call {
            HandlerCall::Start => node.on_start(&mut ctx),
            HandlerCall::Timer(tag) => node.on_timer(&mut ctx, tag),
        }
        let actions = std::mem::take(&mut ctx.actions);
        self.slots[idx].node = Some(node);
        self.apply_actions(pid, actions);
    }

    fn apply_actions(&mut self, pid: ProcessId, actions: Vec<Action<M>>) {
        let idx = pid.index();
        for action in actions {
            if !self.slots[idx].status.is_up() {
                break; // quit/crash mid-handler: remaining effects are lost
            }
            match action {
                Action::Send { to, msg } => {
                    assert!(
                        to.index() < self.slots.len(),
                        "send to unknown process {to}"
                    );
                    let tag = msg.tag();
                    self.msg_counter += 1;
                    let msg_id = self.msg_counter;
                    {
                        let slot = &mut self.slots[idx];
                        slot.vc.tick(idx);
                        let lamport = slot.lamport.tick();
                        self.trace.events.push(TraceEvent {
                            time: self.time,
                            pid,
                            lamport,
                            vc: slot.vc.stamp(),
                            kind: TraceKind::Send { to, msg_id, tag },
                        });
                    }
                    self.stats.record_send(tag);
                    let inf = InFlight {
                        from: pid,
                        to,
                        msg,
                        msg_id,
                        tag,
                        // Shares storage with the Send trace event above:
                        // the clock has not advanced since that stamp.
                        send_vc: self.slots[idx].vc.stamp(),
                        send_lamport: self.slots[idx].lamport.value(),
                    };
                    match self.net.fate(pid, to) {
                        Some(BlockMode::Hold) => {
                            self.stats.held += 1;
                            self.held.entry((pid.0, to.0)).or_default().push(inf);
                        }
                        Some(BlockMode::Drop) => {
                            self.stats.dropped_link += 1;
                        }
                        None => {
                            let at = self.net.schedule(&mut self.rng, self.time, pid, to);
                            self.enqueue(at, QKind::Deliver(inf));
                        }
                    }
                    // Mid-broadcast crash bookkeeping (Figure 3).
                    if let Some(sc) = self.crash_after.get_mut(idx).and_then(Option::as_mut) {
                        let counts = sc.tag.map(|f| f == tag).unwrap_or(true);
                        if counts {
                            sc.remaining -= 1;
                            if sc.remaining == 0 {
                                self.crash_after[idx] = None;
                                self.record_lifecycle(pid, TraceKind::Crash);
                                self.slots[idx].status = NodeStatus::Crashed;
                            }
                        }
                    }
                }
                Action::SetTimer { id, delay, tag } => {
                    self.enqueue(self.time + delay, QKind::Timer { pid, id, tag });
                }
                Action::CancelTimer { id } => {
                    self.cancelled.insert(id.0);
                }
                Action::Note(note) => {
                    let slot = &self.slots[idx];
                    self.trace.events.push(TraceEvent {
                        time: self.time,
                        pid,
                        lamport: slot.lamport.value(),
                        vc: slot.vc.stamp(),
                        kind: TraceKind::Note(note),
                    });
                }
                Action::Quit => {
                    self.record_lifecycle(pid, TraceKind::Quit);
                    self.slots[idx].status = NodeStatus::Quit;
                }
            }
        }
    }
}

enum HandlerCall {
    Start,
    Timer(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_types::Note;

    #[derive(Clone, Debug)]
    enum TMsg {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }
    impl Message for TMsg {
        fn tag(&self) -> &'static str {
            match self {
                TMsg::Ping(_) => "ping",
                TMsg::Pong(_) => "pong",
            }
        }
    }

    /// Node 0 pings everyone at start; everyone pongs back; node 0 counts.
    struct PingPong {
        n: u32,
        pongs: u32,
    }

    impl Node<TMsg> for PingPong {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
            if ctx.id() == ProcessId(0) {
                let all = (0..self.n).map(ProcessId);
                ctx.broadcast(all, TMsg::Ping(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ProcessId, msg: TMsg) {
            match msg {
                TMsg::Ping(x) => ctx.send(from, TMsg::Pong(x)),
                TMsg::Pong(_) => {
                    self.pongs += 1;
                    ctx.note(Note::Custom(format!("pong #{}", self.pongs)));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, TMsg>, _tag: u64) {}
    }

    fn build(n: u32, seed: u64) -> Sim<TMsg, PingPong> {
        let mut sim = Builder::new().seed(seed).build();
        for _ in 0..n {
            sim.add_node(PingPong { n, pongs: 0 });
        }
        sim
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut sim = build(4, 1);
        sim.run_until(1_000);
        assert_eq!(sim.node(ProcessId(0)).pongs, 3);
        assert_eq!(sim.stats().sends("ping"), 3);
        assert_eq!(sim.stats().sends("pong"), 3);
        assert_eq!(sim.stats().delivered("pong"), 3);
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let mut a = build(5, 9);
        let mut b = build(5, 9);
        a.run_until(500);
        b.run_until(500);
        let ta: Vec<_> = a
            .trace()
            .events
            .iter()
            .map(|e| (e.time, e.pid, format!("{:?}", e.kind)))
            .collect();
        let tb: Vec<_> = b
            .trace()
            .events
            .iter()
            .map(|e| (e.time, e.pid, format!("{:?}", e.kind)))
            .collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = build(5, 1);
        let mut b = build(5, 2);
        a.run_until(500);
        b.run_until(500);
        let ta: Vec<_> = a.trace().events.iter().map(|e| e.time).collect();
        let tb: Vec<_> = b.trace().events.iter().map(|e| e.time).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut sim = build(3, 3);
        sim.crash_at(ProcessId(1), 1); // before any delivery (delays >= 1)
        sim.run_until(1_000);
        assert_eq!(sim.status(ProcessId(1)), NodeStatus::Crashed);
        // p1 never ponged.
        assert_eq!(sim.node(ProcessId(0)).pongs, 1);
        assert_eq!(sim.stats().dropped_dead_receiver, 1);
        assert_eq!(sim.living(), vec![ProcessId(0), ProcessId(2)]);
    }

    #[test]
    fn crash_after_sends_cuts_broadcast_short() {
        // Node 0 broadcasts 4 pings; crash it after the second ping send.
        let mut sim = build(5, 4);
        sim.crash_after_sends_at(ProcessId(0), 0, Some("ping"), 2);
        sim.run_until(1_000);
        assert_eq!(sim.stats().sends("ping"), 2, "broadcast must be cut short");
        assert_eq!(sim.status(ProcessId(0)), NodeStatus::Crashed);
    }

    #[test]
    fn blocked_link_holds_and_releases() {
        let mut sim = build(2, 5);
        sim.block_link_at(ProcessId(0), ProcessId(1), BlockMode::Hold, 0);
        sim.unblock_link_at(ProcessId(0), ProcessId(1), 500);
        sim.run_until(400);
        assert_eq!(sim.stats().delivered("ping"), 0);
        sim.run_until(1_000);
        assert_eq!(sim.stats().delivered("ping"), 1);
        assert_eq!(sim.node(ProcessId(0)).pongs, 1);
    }

    #[test]
    fn partition_holds_cross_traffic() {
        let mut sim = build(4, 6);
        sim.partition_at(
            &[&[ProcessId(0), ProcessId(1)], &[ProcessId(2), ProcessId(3)]],
            0,
        );
        sim.run_until(500);
        // Only p1's pong crossed (p2, p3 unreachable).
        assert_eq!(sim.node(ProcessId(0)).pongs, 1);
        sim.heal_at(501);
        sim.run_until(2_000);
        assert_eq!(sim.node(ProcessId(0)).pongs, 3);
    }

    #[test]
    fn fifo_order_is_respected() {
        // With FIFO on, pings sent in a burst over one link arrive in order.
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Message for Seq {
            fn tag(&self) -> &'static str {
                "seq"
            }
        }
        struct Sender;
        struct Receiver {
            got: Vec<u32>,
        }
        enum Either {
            S(Sender),
            R(Receiver),
        }
        impl Node<Seq> for Either {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
                if let Either::S(_) = self {
                    for i in 0..50 {
                        ctx.send(ProcessId(1), Seq(i));
                    }
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Seq>, _from: ProcessId, msg: Seq) {
                if let Either::R(r) = self {
                    r.got.push(msg.0);
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Seq>, _tag: u64) {}
        }
        let mut sim: Sim<Seq, Either> = Builder::new().seed(11).delay(1, 100).build();
        sim.add_node(Either::S(Sender));
        sim.add_node(Either::R(Receiver { got: Vec::new() }));
        sim.run_until(10_000);
        if let Either::R(r) = sim.node(ProcessId(1)) {
            assert_eq!(r.got, (0..50).collect::<Vec<_>>());
        } else {
            panic!("node 1 is the receiver");
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u64>,
        }
        #[derive(Clone, Debug)]
        struct Never;
        impl Message for Never {
            fn tag(&self) -> &'static str {
                "never"
            }
        }
        impl Node<Never> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Never>) {
                ctx.set_timer(10, 1);
                let id = ctx.set_timer(20, 2);
                ctx.cancel_timer(id);
                ctx.set_timer(30, 3);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Never>, _: ProcessId, _: Never) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Never>, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut sim: Sim<Never, T> = Builder::new().build();
        sim.add_node(T { fired: Vec::new() });
        sim.run_until(100);
        assert_eq!(sim.node(ProcessId(0)).fired, vec![1, 3]);
    }

    #[test]
    fn vector_clocks_capture_message_causality() {
        let mut sim = build(2, 8);
        sim.run_until(1_000);
        let log = sim.trace().to_event_log();
        // Find the ping send at p0 and its reception at p1.
        let send_idx = sim
            .trace()
            .events
            .iter()
            .position(|e| matches!(e.kind, TraceKind::Send { tag: "ping", .. }))
            .expect("ping sent");
        let recv_idx = sim
            .trace()
            .events
            .iter()
            .position(|e| matches!(e.kind, TraceKind::Recv { tag: "ping", .. }))
            .expect("ping received");
        assert!(log.happens_before(send_idx, recv_idx));
        assert!(!log.happens_before(recv_idx, send_idx));
    }
}

#[cfg(test)]
mod release_tests {
    use super::*;
    use crate::net::BlockMode;

    #[derive(Clone, Debug)]
    struct Num(u32);
    impl Message for Num {
        fn tag(&self) -> &'static str {
            "num"
        }
    }

    struct Burst {
        got: Vec<u32>,
    }

    /// Like [`Burst`], but every node sprays every other node, so several
    /// links hold traffic at once.
    struct Fan {
        got: Vec<u32>,
    }
    impl Node<Num> for Fan {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Num>) {
            for to in 0..4u32 {
                if ProcessId(to) != ctx.id() {
                    for i in 0..8 {
                        ctx.send(ProcessId(to), Num(i));
                    }
                }
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Num>, _: ProcessId, m: Num) {
            self.got.push(m.0);
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, Num>, _: u64) {}
    }
    impl Node<Num> for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Num>) {
            if ctx.id() == ProcessId(0) {
                for i in 0..30 {
                    ctx.send(ProcessId(1), Num(i));
                }
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Num>, _: ProcessId, m: Num) {
            self.got.push(m.0);
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, Num>, _: u64) {}
    }

    fn two_nodes(seed: u64) -> Sim<Num, Burst> {
        let mut sim = Builder::new().seed(seed).delay(1, 30).build();
        sim.add_node(Burst { got: Vec::new() });
        sim.add_node(Burst { got: Vec::new() });
        sim
    }

    /// Messages held on a blocked link are released in FIFO order.
    #[test]
    fn held_messages_release_in_order() {
        let mut sim = two_nodes(3);
        sim.block_link_at(ProcessId(0), ProcessId(1), BlockMode::Hold, 0);
        sim.unblock_link_at(ProcessId(0), ProcessId(1), 2_000);
        sim.run_until(10_000);
        assert_eq!(sim.node(ProcessId(1)).got, (0..30).collect::<Vec<_>>());
    }

    /// A heal that releases several links at once must replay identically:
    /// the per-message redelivery delays are drawn from the run's RNG, so
    /// the release order (and with it the whole downstream schedule) has to
    /// be a pure function of the seed, not of map iteration order.
    #[test]
    fn multi_link_release_replays_identically() {
        let run = || {
            let mut sim = Builder::new().seed(9).delay(1, 30).build();
            for _ in 0..4 {
                sim.add_node(Fan { got: Vec::new() });
            }
            for to in 1..4u32 {
                sim.block_link_at(ProcessId(0), ProcessId(to), BlockMode::Hold, 0);
            }
            for from in 1..4u32 {
                sim.block_link_at(ProcessId(from), ProcessId(0), BlockMode::Hold, 0);
            }
            for a in 0..4u32 {
                for b in 0..4u32 {
                    if a != b {
                        sim.unblock_link_at(ProcessId(a), ProcessId(b), 2_000);
                    }
                }
            }
            sim.run_until(10_000);
            sim.trace()
                .events
                .iter()
                .map(|e| format!("{} {} {:?}", e.time, e.pid, e.kind))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert!(a.iter().any(|l| l.contains("Recv")), "nothing was released");
        assert_eq!(a, run(), "multi-link release diverged between replays");
    }

    /// A block installed mid-flight catches messages already scheduled.
    #[test]
    fn in_flight_messages_are_caught_by_late_block() {
        let mut sim = two_nodes(4);
        // Delays are 1..=30; block at t=1 catches everything still in
        // flight (only deliveries scheduled at t<=1 escape).
        sim.block_link_at(ProcessId(0), ProcessId(1), BlockMode::Hold, 1);
        sim.run_until(5_000);
        let early = sim.node(ProcessId(1)).got.len();
        assert!(early < 30, "most of the burst must be held, got {early}");
        sim.unblock_link_at(ProcessId(0), ProcessId(1), 6_000);
        sim.run_until(12_000);
        assert_eq!(sim.node(ProcessId(1)).got, (0..30).collect::<Vec<_>>());
    }

    /// Drop-mode blocks lose messages permanently (used only by the
    /// baseline counter-example schedules).
    #[test]
    fn drop_mode_loses_messages() {
        let mut sim = two_nodes(5);
        sim.block_link_at(ProcessId(0), ProcessId(1), BlockMode::Drop, 0);
        sim.unblock_link_at(ProcessId(0), ProcessId(1), 2_000);
        sim.run_until(10_000);
        assert!(sim.node(ProcessId(1)).got.is_empty());
        assert_eq!(sim.stats().dropped_link, 30);
    }

    /// Healing a partition releases held traffic exactly once.
    #[test]
    fn heal_releases_exactly_once() {
        let mut sim = two_nodes(6);
        sim.partition_at(&[&[ProcessId(0)], &[ProcessId(1)]], 0);
        sim.heal_at(1_000);
        sim.run_until(10_000);
        assert_eq!(sim.node(ProcessId(1)).got, (0..30).collect::<Vec<_>>());
        assert_eq!(sim.stats().delivered("num"), 30);
    }
}
