//! Sharded intra-run execution: one run's event loop spread across worker
//! threads, byte-identical to the single-threaded engine for every shard
//! count.
//!
//! [`Sim::run_until_sharded`] partitions the processes across `S` shards
//! with the stable function [`shard_of`] (`pid mod S`). Each shard worker
//! owns the node state, causal clocks, liveness status and pending
//! mid-broadcast crashes of its processes; the calling thread acts as the
//! **sequencer** and keeps everything whose mutation order is globally
//! visible — the priority queue, the run RNG, `seq`/`msg_id` allocation,
//! link state, held messages, statistics and the trace.
//!
//! # Why the merge is deterministic
//!
//! The sequencer pops events in global `(time, seq)` order, exactly like
//! [`Sim::run_until`]. Consecutive events at one timestamp form a *batch*:
//! each is dispatched to the shard owning its target process as a
//! timestamped envelope over a channel, and the shards execute their
//! subsets concurrently. A shard only ever sees its own processes, in the
//! global order restricted to them, so everything process-local (handler
//! execution, clock ticks, status transitions, timer cancellation,
//! mid-broadcast crash countdowns) replays exactly as the sequential
//! engine would have replayed it. Each execution returns an ordered
//! *effect bundle* — stamped trace events, sends (with the message id
//! still unassigned), timer arms — and the sequencer applies the bundles
//! **in dispatch order**. Every global allocation (message ids, queue
//! sequence numbers, per-message delay draws from the run RNG) therefore
//! happens at exactly the position in the run where the sequential engine
//! performs it, which is what pins the trace byte-identical for every `S`
//! (`tests/sharding.rs`, `tests/determinism.rs`).
//!
//! # The conservative frontier barrier
//!
//! A batch never crosses a timestamp: messages have delay ≥ 1 tick
//! (asserted by the network model), so nothing executed at time `t` can
//! schedule new work at time `t` with a smaller sequence number — the
//! lookahead that makes the same-instant window safe, the classic
//! conservative-PDES argument. Fault-injection controls (partitions,
//! blocks, delay overrides, crash arming) are barriers: all outstanding
//! bundles are applied before one executes, so link state is constant
//! within a batch and the sequencer can evaluate message fates at
//! dispatch time.
//!
//! # Shard-stable timer ids
//!
//! Handlers run on shard threads, so timer ids cannot come from the
//! engine's global counter without reintroducing cross-thread ordering.
//! Instead each handler invocation allocates from a private block derived
//! from the triggering event's globally unique queue sequence number
//! (`(1 << 63) | seq << 16`; start-of-run invocations use a pid-derived
//! block tagged with bit 62). Blocks never collide across shards, across
//! batches, or with ids the sequential path allocated earlier in the same
//! run — see the property tests at the bottom of this module.

use crate::engine::{Control, InFlight, QKind, Queued, SendCrash, Sim, Slot};
use crate::net::BlockMode;
use crate::node::{Action, Ctx, Message, Node, TimerId};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::{NodeStatus, Time};
use gmp_causality::{CowClock, Stamp};
use gmp_types::ProcessId;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::HashSet;
use std::sync::mpsc::{Receiver, Sender};

/// The stable shard partition: process `pid` is owned by shard
/// `pid mod shards`.
///
/// Every process lands in exactly one shard, the assignment depends only
/// on `(pid, shards)`, and with `shards == 1` everything collapses onto
/// shard 0 — which is why the single-shard sharded run exercises the full
/// dispatch machinery on one worker.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of(pid: ProcessId, shards: usize) -> usize {
    assert!(shards >= 1, "shard count must be at least 1");
    pid.index() % shards
}

fn shard_of_index(index: usize, shards: usize) -> usize {
    index % shards
}

/// Top bit marks ids allocated by the sharded path (the sequential
/// engine's counter starts at 1 and could only reach this bit after 2^63
/// timers).
const SHARDED_ID_BIT: u64 = 1 << 63;
/// Second bit separates start-of-run blocks (pid-derived) from event
/// blocks (seq-derived).
const START_ID_BIT: u64 = 1 << 62;
/// Width of one invocation's private id block.
const BLOCK_BITS: u32 = 16;
/// Maximum timers one handler invocation may arm in sharded mode.
const BLOCK_CAPACITY: u64 = (1 << BLOCK_BITS) - 1;

/// Timer-id block for the handler invocation triggered by the queue event
/// with sequence number `seq`.
pub(crate) fn event_timer_base(seq: u64) -> u64 {
    debug_assert!(
        seq < (1 << (62 - BLOCK_BITS)),
        "queue sequence numbers exhausted the sharded timer-id space"
    );
    SHARDED_ID_BIT | (seq << BLOCK_BITS)
}

/// Timer-id block for the start-of-run invocation of `pid` (start
/// invocations have no queue event, so the block is pid-derived; `start`
/// runs at most once per simulation).
pub(crate) fn start_timer_base(pid: ProcessId) -> u64 {
    SHARDED_ID_BIT | START_ID_BIT | ((pid.index() as u64) << BLOCK_BITS)
}

/// A work item dispatched from the sequencer to a shard worker.
enum ToShard<M> {
    /// Execute one queue event against shard-owned state and reply with an
    /// effect bundle.
    Exec { time: Time, work: Work<M> },
    /// Arm a mid-broadcast crash (control barrier; no reply).
    Arm { pid: ProcessId, crash: SendCrash },
}

enum Work<M> {
    Start {
        pid: ProcessId,
    },
    Deliver {
        inf: InFlight<M>,
        /// Link fate evaluated by the sequencer at dispatch time; link
        /// state only changes at control barriers, so this equals the fate
        /// the sequential engine would observe at processing time.
        fate: Option<BlockMode>,
        seq: u64,
    },
    Timer {
        pid: ProcessId,
        id: TimerId,
        tag: u64,
        seq: u64,
    },
    Crash {
        pid: ProcessId,
    },
}

/// One ordered effect of a shard-side execution. The sequencer applies
/// these in dispatch order, performing exactly the global mutations the
/// sequential engine interleaves with handler execution.
enum Effect<M> {
    /// A fully stamped trace event (pre-events, notes, crash/quit
    /// lifecycle records).
    Trace(TraceEvent),
    /// A send: the trace event still carries `msg_id == 0`; the sequencer
    /// allocates the id, patches the event, accounts the send and routes
    /// the message (fate, delay draw, enqueue).
    Send {
        ev: TraceEvent,
        from: ProcessId,
        to: ProcessId,
        msg: M,
        tag: &'static str,
        send_vc: Stamp,
        send_lamport: u64,
    },
    /// Arm a timer `delay` ticks from now.
    SetTimer {
        pid: ProcessId,
        id: TimerId,
        delay: Time,
        tag: u64,
    },
    /// A delivery bounced off a blocked link: the sequencer files the
    /// message under the link's held queue.
    Held(InFlight<M>),
    /// A delivery to a crashed/quit process.
    DeadReceiver,
    /// A delivery dropped by a severed link.
    LinkDropped,
    /// A delivery that went through (counted before the receive event,
    /// like the sequential engine).
    Delivered { tag: &'static str },
}

/// A bundle, or the payload of a panic raised inside a shard-side handler
/// (re-raised on the sequencer thread so the caller sees the original
/// message).
type BundleResult<M> = Result<Vec<Effect<M>>, Box<dyn std::any::Any + Send>>;

/// What a worker hands back when its channel closes.
struct ShardFinal<N> {
    slots: Vec<Option<Slot<N>>>,
    cancel_added: HashSet<u64>,
    cancel_removed: HashSet<u64>,
    crash_after: Vec<Option<SendCrash>>,
}

/// Shard-owned state: the slots (node, status, clocks) of the shard's
/// processes plus everything whose mutations are process-local — the
/// cancelled-timer set and pending mid-broadcast crashes.
struct ShardWorker<N> {
    n: usize,
    /// Dense pid-indexed table; `Some` exactly for this shard's pids.
    slots: Vec<Option<Slot<N>>>,
    /// Live view of the cancelled-timer set. Seeded from the engine's set;
    /// sound to check shard-locally because a process's timers and its
    /// cancellations both execute on its owning shard, in global order.
    cancelled: HashSet<u64>,
    cancel_added: HashSet<u64>,
    cancel_removed: HashSet<u64>,
    crash_after: Vec<Option<SendCrash>>,
}

enum Trig<M> {
    Start,
    Recv {
        from: ProcessId,
        msg: M,
        msg_id: u64,
        tag: &'static str,
        send_vc: Stamp,
        send_lamport: u64,
    },
    Timer {
        tag: u64,
    },
}

impl<N> ShardWorker<N> {
    fn run<M>(mut self, rx: Receiver<ToShard<M>>, tx: Sender<BundleResult<M>>) -> ShardFinal<N>
    where
        M: Message,
        N: Node<M>,
    {
        while let Ok(msg) = rx.recv() {
            match msg {
                ToShard::Exec { time, work } => {
                    let mut fx = Vec::new();
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.execute(time, work, &mut fx)
                    }));
                    let failed = result.is_err();
                    let out = result.map(|()| fx);
                    if tx.send(out).is_err() || failed {
                        // Channel gone, or shard state is torn mid-panic:
                        // stop executing; the sequencer re-raises.
                        break;
                    }
                }
                ToShard::Arm { pid, crash } => {
                    self.crash_after[pid.index()] = Some(crash);
                }
            }
        }
        ShardFinal {
            slots: self.slots,
            cancel_added: self.cancel_added,
            cancel_removed: self.cancel_removed,
            crash_after: self.crash_after,
        }
    }

    fn slot_mut(&mut self, pid: ProcessId) -> &mut Slot<N> {
        self.slots[pid.index()]
            .as_mut()
            .expect("pid owned by this shard")
    }

    fn execute<M>(&mut self, time: Time, work: Work<M>, fx: &mut Vec<Effect<M>>)
    where
        M: Message,
        N: Node<M>,
    {
        match work {
            Work::Start { pid } => {
                self.invoke(time, pid, Trig::Start, start_timer_base(pid), fx);
            }
            Work::Crash { pid } => {
                let slot = self.slot_mut(pid);
                if slot.status.is_up() {
                    let ev = lifecycle(slot, time, pid, TraceKind::Crash);
                    fx.push(Effect::Trace(ev));
                    slot.status = NodeStatus::Crashed;
                }
            }
            Work::Timer { pid, id, tag, seq } => {
                if self.cancelled.remove(&id.0) {
                    if !self.cancel_added.remove(&id.0) {
                        self.cancel_removed.insert(id.0);
                    }
                    return;
                }
                if !self.slot_mut(pid).status.is_up() {
                    return;
                }
                self.invoke(time, pid, Trig::Timer { tag }, event_timer_base(seq), fx);
            }
            Work::Deliver { inf, fate, seq } => {
                // Status before fate, exactly like the sequential engine —
                // and checked here rather than at dispatch, because a quit
                // earlier in the same batch is only visible on this shard.
                if !self.slot_mut(inf.to).status.is_up() {
                    fx.push(Effect::DeadReceiver);
                    return;
                }
                match fate {
                    Some(BlockMode::Hold) => fx.push(Effect::Held(inf)),
                    Some(BlockMode::Drop) => fx.push(Effect::LinkDropped),
                    None => {
                        fx.push(Effect::Delivered { tag: inf.tag });
                        let InFlight {
                            from,
                            to,
                            msg,
                            msg_id,
                            tag,
                            send_vc,
                            send_lamport,
                        } = inf;
                        self.invoke(
                            time,
                            to,
                            Trig::Recv {
                                from,
                                msg,
                                msg_id,
                                tag,
                                send_vc,
                                send_lamport,
                            },
                            event_timer_base(seq),
                            fx,
                        );
                    }
                }
            }
        }
    }

    /// Mirror of the engine's `invoke`: stamp and emit the pre-event, run
    /// the handler, then pre-apply its actions.
    fn invoke<M>(
        &mut self,
        time: Time,
        pid: ProcessId,
        trigger: Trig<M>,
        id_base: u64,
        fx: &mut Vec<Effect<M>>,
    ) where
        M: Message,
        N: Node<M>,
    {
        let idx = pid.index();
        let slot = self.slot_mut(pid);
        if !slot.status.is_up() {
            return;
        }
        enum Call<M> {
            Start,
            Recv(ProcessId, M),
            Timer(u64),
        }
        let call = match trigger {
            Trig::Start => {
                stamp_pre_event(slot, time, pid, TraceKind::Start, fx);
                Call::Start
            }
            Trig::Timer { tag } => {
                stamp_pre_event(slot, time, pid, TraceKind::Timer { tag }, fx);
                Call::Timer(tag)
            }
            Trig::Recv {
                from,
                msg,
                msg_id,
                tag,
                send_vc,
                send_lamport,
            } => {
                slot.vc.observe(&send_vc);
                slot.lamport.merge(send_lamport);
                // merge() already ticked lamport; only vc needs its tick.
                slot.vc.tick(idx);
                fx.push(Effect::Trace(TraceEvent {
                    time,
                    pid,
                    lamport: slot.lamport.value(),
                    vc: slot.vc.stamp(),
                    kind: TraceKind::Recv { from, msg_id, tag },
                }));
                Call::Recv(from, msg)
            }
        };
        let mut node = slot.node.take().expect("node present");
        // Handlers must not draw from the run RNG in sharded mode (none of
        // the shipped protocols do): the draw order would depend on which
        // shard ran first. The context gets a decoy whose state is checked
        // afterwards, so misuse fails loudly instead of diverging quietly.
        let mut decoy = SmallRng::seed_from_u64(0x5AD_C0DE);
        let pristine = decoy.clone();
        let mut timer_counter = id_base;
        let mut ctx = Ctx {
            pid,
            now: time,
            actions: Vec::new(),
            rng: &mut decoy,
            timer_counter: &mut timer_counter,
        };
        match call {
            Call::Start => node.on_start(&mut ctx),
            Call::Recv(from, msg) => node.on_message(&mut ctx, from, msg),
            Call::Timer(tag) => node.on_timer(&mut ctx, tag),
        }
        let actions = std::mem::take(&mut ctx.actions);
        assert!(
            decoy == pristine,
            "Ctx::rng() is not available under run_until_sharded: RNG draw \
             order would depend on shard interleaving"
        );
        assert!(
            timer_counter - id_base <= BLOCK_CAPACITY,
            "a handler may arm at most {BLOCK_CAPACITY} timers per invocation in sharded mode"
        );
        self.slot_mut(pid).node = Some(node);
        self.pre_apply(time, pid, actions, fx);
    }

    /// The process-local half of the engine's `apply_actions`: clock
    /// ticks, trace stamping, status transitions and the mid-broadcast
    /// crash countdown happen here; everything global (message ids, fates,
    /// delay draws, enqueues) is deferred to the sequencer via effects, in
    /// the same order.
    fn pre_apply<M>(
        &mut self,
        time: Time,
        pid: ProcessId,
        actions: Vec<Action<M>>,
        fx: &mut Vec<Effect<M>>,
    ) where
        M: Message,
        N: Node<M>,
    {
        let idx = pid.index();
        for action in actions {
            if !self.slot_mut(pid).status.is_up() {
                break; // quit/crash mid-handler: remaining effects are lost
            }
            match action {
                Action::Send { to, msg } => {
                    assert!(to.index() < self.n, "send to unknown process {to}");
                    let tag = msg.tag();
                    let slot = self.slot_mut(pid);
                    slot.vc.tick(idx);
                    let lamport = slot.lamport.tick();
                    let ev = TraceEvent {
                        time,
                        pid,
                        lamport,
                        vc: slot.vc.stamp(),
                        kind: TraceKind::Send { to, msg_id: 0, tag },
                    };
                    // Shares storage with the Send trace event above: the
                    // clock has not advanced since that stamp.
                    let send_vc = slot.vc.stamp();
                    fx.push(Effect::Send {
                        ev,
                        from: pid,
                        to,
                        msg,
                        tag,
                        send_vc,
                        send_lamport: lamport,
                    });
                    // Mid-broadcast crash bookkeeping (Figure 3).
                    if let Some(sc) = self.crash_after[idx].as_mut() {
                        let counts = sc.tag.map(|f| f == tag).unwrap_or(true);
                        if counts {
                            sc.remaining -= 1;
                            if sc.remaining == 0 {
                                self.crash_after[idx] = None;
                                let slot = self.slot_mut(pid);
                                let ev = lifecycle(slot, time, pid, TraceKind::Crash);
                                fx.push(Effect::Trace(ev));
                                slot.status = NodeStatus::Crashed;
                            }
                        }
                    }
                }
                Action::SetTimer { id, delay, tag } => {
                    fx.push(Effect::SetTimer {
                        pid,
                        id,
                        delay,
                        tag,
                    });
                }
                Action::CancelTimer { id } => {
                    if self.cancelled.insert(id.0) {
                        self.cancel_removed.remove(&id.0);
                        self.cancel_added.insert(id.0);
                    }
                }
                Action::Note(note) => {
                    let slot = self.slot_mut(pid);
                    fx.push(Effect::Trace(TraceEvent {
                        time,
                        pid,
                        lamport: slot.lamport.value(),
                        vc: slot.vc.stamp(),
                        kind: TraceKind::Note(note),
                    }));
                }
                Action::Quit => {
                    let slot = self.slot_mut(pid);
                    let ev = lifecycle(slot, time, pid, TraceKind::Quit);
                    fx.push(Effect::Trace(ev));
                    slot.status = NodeStatus::Quit;
                }
            }
        }
    }
}

/// Mirror of the engine's `record_lifecycle`: tick both clocks and stamp.
fn lifecycle<N>(slot: &mut Slot<N>, time: Time, pid: ProcessId, kind: TraceKind) -> TraceEvent {
    slot.vc.tick(pid.index());
    let lamport = slot.lamport.tick();
    TraceEvent {
        time,
        pid,
        lamport,
        vc: slot.vc.stamp(),
        kind,
    }
}

fn stamp_pre_event<N, M>(
    slot: &mut Slot<N>,
    time: Time,
    pid: ProcessId,
    kind: TraceKind,
    fx: &mut Vec<Effect<M>>,
) {
    slot.vc.tick(pid.index());
    let lamport = slot.lamport.tick();
    fx.push(Effect::Trace(TraceEvent {
        time,
        pid,
        lamport,
        vc: slot.vc.stamp(),
        kind,
    }));
}

impl<M: Message + Send, N: Node<M> + Send> Sim<M, N> {
    /// Runs the simulation like [`Sim::run_until`], but with the event
    /// loop sharded across `shards` worker threads.
    ///
    /// Output is **byte-identical** to the single-threaded engine for
    /// every shard count: the same trace, statistics, statuses and node
    /// states, pinned by `tests/sharding.rs` and the golden fingerprints
    /// in `tests/determinism.rs`. Sharded and sequential segments can be
    /// freely mixed within one run (e.g. `run_until(500)` followed by
    /// `run_until_sharded(1_000, 4)`).
    ///
    /// Parallelism comes from batches of same-timestamp events executing
    /// concurrently on their owning shards (see the module docs for the
    /// frontier argument); on a single-core host the sharded path is pure
    /// overhead — it exists for multicore scaling at large `n` and as the
    /// equivalence oracle for the sharded dispatch machinery itself.
    ///
    /// `shards` is clamped to `min(shards, members, available cores)`:
    /// a shard above that bound owns no work (or has no core to run on)
    /// and is pure scheduling overhead — the E12 ledger showed shards=8
    /// *regressing below sequential* at n=512 on small hosts. The clamp
    /// is announced on stderr (never the trace, which stays identical at
    /// every shard count).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, if the simulation has no nodes, or if
    /// a handler draws from [`Ctx::rng`] (the draw order would depend on
    /// shard interleaving; no shipped protocol uses it).
    pub fn run_until_sharded(&mut self, until: Time, shards: usize) {
        assert!(shards >= 1, "shard count must be at least 1");
        let n = self.slots.len();
        let cores = crate::pool::available_jobs().get();
        let cap = n.max(1).min(cores);
        let shards = if shards > cap {
            eprintln!(
                "note: clamping shards {shards} -> {cap} ({n} members, {cores} cores); \
                 output is identical at every shard count"
            );
            cap
        } else {
            shards
        };
        let starting = !self.started;
        if starting {
            assert!(n > 0, "simulation needs at least one node");
            self.started = true;
            self.trace = Trace::new(n);
            for slot in &mut self.slots {
                slot.vc = CowClock::new(n);
            }
        }

        // Carve the process-local state out into per-shard tables.
        self.crash_after.resize(n, None);
        let mut shard_slots: Vec<Vec<Option<Slot<N>>>> = (0..shards)
            .map(|_| (0..n).map(|_| None).collect())
            .collect();
        for (i, slot) in self.slots.drain(..).enumerate() {
            shard_slots[shard_of_index(i, shards)][i] = Some(slot);
        }
        let mut shard_crash: Vec<Vec<Option<SendCrash>>> =
            (0..shards).map(|_| vec![None; n]).collect();
        for (i, sc) in self.crash_after.drain(..).enumerate() {
            shard_crash[shard_of_index(i, shards)][i] = sc;
        }

        let finals: Vec<ShardFinal<N>> = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(shards);
            let mut rxs = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for sh in 0..shards {
                let (tx, work_rx) = std::sync::mpsc::channel::<ToShard<M>>();
                let (bundle_tx, bundle_rx) = std::sync::mpsc::channel::<BundleResult<M>>();
                let worker = ShardWorker {
                    n,
                    slots: std::mem::take(&mut shard_slots[sh]),
                    cancelled: self.cancelled.clone(),
                    cancel_added: HashSet::new(),
                    cancel_removed: HashSet::new(),
                    crash_after: std::mem::take(&mut shard_crash[sh]),
                };
                handles.push(scope.spawn(move || worker.run(work_rx, bundle_tx)));
                txs.push(tx);
                rxs.push(bundle_rx);
            }
            if starting {
                self.start_sharded(n, shards, &txs, &rxs);
            }
            self.drive_sharded(until, shards, &txs, &rxs);
            drop(txs); // workers drain and return their state
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Reassemble: every pid comes back from exactly one shard.
        let mut slots: Vec<Option<Slot<N>>> = (0..n).map(|_| None).collect();
        let mut crash_after: Vec<Option<SendCrash>> = vec![None; n];
        for fin in finals {
            for (i, slot) in fin.slots.into_iter().enumerate() {
                if slot.is_some() {
                    debug_assert!(slots[i].is_none(), "pid {i} returned twice");
                    slots[i] = slot;
                }
            }
            for (i, sc) in fin.crash_after.into_iter().enumerate() {
                if sc.is_some() {
                    crash_after[i] = sc;
                }
            }
            for id in fin.cancel_removed {
                self.cancelled.remove(&id);
            }
            for id in fin.cancel_added {
                self.cancelled.insert(id);
            }
        }
        self.slots = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("pid {i} never returned from its shard")))
            .collect();
        self.crash_after = crash_after;
        self.time = self.time.max(until);
    }

    /// Sharded analogue of the engine's `start`: apply time-0 controls and
    /// crashes first, then run every `on_start` as one pid-ordered batch.
    fn start_sharded(
        &mut self,
        n: usize,
        shards: usize,
        txs: &[Sender<ToShard<M>>],
        rxs: &[Receiver<BundleResult<M>>],
    ) {
        let mut deferred = Vec::new();
        while let Some(Reverse(top)) = self.queue.peek() {
            if top.time > 0 {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            match ev.kind {
                QKind::Control(c) => {
                    self.time = ev.time;
                    self.apply_control_sharded(c, shards, txs);
                }
                QKind::Crash { pid } => {
                    self.time = ev.time;
                    let sh = shard_of(pid, shards);
                    dispatch(&txs[sh], ev.time, Work::Crash { pid });
                    let fx = recv_bundle(&rxs[sh]);
                    self.apply_bundle(fx);
                }
                _ => deferred.push(ev),
            }
        }
        for ev in deferred {
            self.queue.push(Reverse(ev));
        }
        for i in 0..n {
            let pid = ProcessId(i as u32);
            dispatch(&txs[shard_of(pid, shards)], 0, Work::Start { pid });
        }
        for i in 0..n {
            let pid = ProcessId(i as u32);
            let fx = recv_bundle(&rxs[shard_of(pid, shards)]);
            self.apply_bundle(fx);
        }
    }

    /// The sequencer loop: batches of same-timestamp events fan out to the
    /// shards; their bundles are applied in dispatch order; controls are
    /// barriers.
    fn drive_sharded(
        &mut self,
        until: Time,
        shards: usize,
        txs: &[Sender<ToShard<M>>],
        rxs: &[Receiver<BundleResult<M>>],
    ) {
        loop {
            let (t, is_control) = match self.queue.peek() {
                Some(Reverse(top)) if top.time <= until => {
                    (top.time, matches!(top.kind, QKind::Control(_)))
                }
                _ => break,
            };
            if is_control {
                let Reverse(ev) = self.queue.pop().expect("peeked event exists");
                self.time = ev.time;
                match ev.kind {
                    QKind::Control(c) => self.apply_control_sharded(c, shards, txs),
                    _ => unreachable!("peeked a control event"),
                }
                continue;
            }
            self.time = t;
            let mut order = Vec::new();
            loop {
                let batchable = match self.queue.peek() {
                    Some(Reverse(top)) => top.time == t && !matches!(top.kind, QKind::Control(_)),
                    None => false,
                };
                if !batchable {
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("peeked event exists");
                let Queued { seq, kind, .. } = ev;
                let (sh, work) = match kind {
                    QKind::Deliver(inf) => {
                        let sh = shard_of(inf.to, shards);
                        let fate = self.net.fate(inf.from, inf.to);
                        (sh, Work::Deliver { inf, fate, seq })
                    }
                    QKind::Timer { pid, id, tag } => {
                        (shard_of(pid, shards), Work::Timer { pid, id, tag, seq })
                    }
                    QKind::Crash { pid } => (shard_of(pid, shards), Work::Crash { pid }),
                    QKind::Control(_) => unreachable!("controls break the batch"),
                };
                dispatch(&txs[sh], t, work);
                order.push(sh);
            }
            for sh in order {
                let fx = recv_bundle(&rxs[sh]);
                self.apply_bundle(fx);
            }
        }
    }

    /// Controls are sequencer business (they mutate global link state and
    /// may release held messages through the run RNG) — except crash
    /// arming, whose countdown state lives with the owning shard.
    fn apply_control_sharded(&mut self, c: Control, shards: usize, txs: &[Sender<ToShard<M>>]) {
        match c {
            Control::CrashAfterSends {
                pid,
                tag,
                remaining,
            } => {
                if remaining == 0 {
                    self.crash_at(pid, self.time);
                } else {
                    txs[shard_of(pid, shards)]
                        .send(ToShard::Arm {
                            pid,
                            crash: SendCrash { tag, remaining },
                        })
                        .expect("shard worker alive");
                }
            }
            other => self.apply_control(other),
        }
    }

    /// Applies one effect bundle, performing the global mutations in the
    /// exact positions the sequential engine would: message-id allocation,
    /// send accounting, fates, delay draws, enqueues.
    fn apply_bundle(&mut self, fx: Vec<Effect<M>>) {
        for effect in fx {
            match effect {
                Effect::Trace(ev) => self.trace.events.push(ev),
                Effect::Send {
                    mut ev,
                    from,
                    to,
                    msg,
                    tag,
                    send_vc,
                    send_lamport,
                } => {
                    self.msg_counter += 1;
                    let msg_id = self.msg_counter;
                    if let TraceKind::Send { msg_id: id, .. } = &mut ev.kind {
                        *id = msg_id;
                    }
                    self.trace.events.push(ev);
                    self.stats.record_send(tag);
                    let inf = InFlight {
                        from,
                        to,
                        msg,
                        msg_id,
                        tag,
                        send_vc,
                        send_lamport,
                    };
                    match self.net.fate(from, to) {
                        Some(BlockMode::Hold) => {
                            self.stats.held += 1;
                            self.held.entry((from.0, to.0)).or_default().push(inf);
                        }
                        Some(BlockMode::Drop) => {
                            self.stats.dropped_link += 1;
                        }
                        None => {
                            let at = self.net.schedule(&mut self.rng, self.time, from, to);
                            self.enqueue(at, QKind::Deliver(inf));
                        }
                    }
                }
                Effect::SetTimer {
                    pid,
                    id,
                    delay,
                    tag,
                } => {
                    self.enqueue(self.time + delay, QKind::Timer { pid, id, tag });
                }
                Effect::Held(inf) => {
                    self.stats.held += 1;
                    self.held
                        .entry((inf.from.0, inf.to.0))
                        .or_default()
                        .push(inf);
                }
                Effect::DeadReceiver => self.stats.dropped_dead_receiver += 1,
                Effect::LinkDropped => self.stats.dropped_link += 1,
                Effect::Delivered { tag } => self.stats.record_delivery(tag),
            }
        }
    }
}

fn dispatch<M>(tx: &Sender<ToShard<M>>, time: Time, work: Work<M>) {
    tx.send(ToShard::Exec { time, work })
        .expect("shard worker alive");
}

fn recv_bundle<M>(rx: &Receiver<BundleResult<M>>) -> Vec<Effect<M>> {
    match rx.recv() {
        Ok(Ok(fx)) => fx,
        Ok(Err(panic)) => std::panic::resume_unwind(panic),
        Err(_) => panic!("shard worker terminated unexpectedly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Builder;
    use gmp_types::Note;
    use rand::Rng;

    #[derive(Clone, Debug)]
    enum TMsg {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }
    impl Message for TMsg {
        fn tag(&self) -> &'static str {
            match self {
                TMsg::Ping(_) => "ping",
                TMsg::Pong(_) => "pong",
            }
        }
    }

    /// Every node periodically pings a rotating target, pongs back, notes
    /// milestones, and re-arms (sometimes cancelling) timers — enough
    /// surface to cross shards constantly.
    struct Chatter {
        n: u32,
        round: u32,
        pongs: u32,
    }

    impl Node<TMsg> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
            ctx.set_timer(5 + u64::from(ctx.id().0 % 3), 1);
            let cancelled = ctx.set_timer(7, 9);
            ctx.cancel_timer(cancelled);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ProcessId, msg: TMsg) {
            match msg {
                TMsg::Ping(x) => ctx.send(from, TMsg::Pong(x)),
                TMsg::Pong(_) => {
                    self.pongs += 1;
                    if self.pongs.is_multiple_of(4) {
                        ctx.note(Note::Custom(format!("pongs={}", self.pongs)));
                    }
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TMsg>, tag: u64) {
            if tag != 1 {
                return;
            }
            self.round += 1;
            let target = ProcessId((ctx.id().0 + self.round) % self.n);
            if target != ctx.id() {
                ctx.send(target, TMsg::Ping(self.round));
            }
            if self.round < 40 {
                ctx.set_timer(5, 1);
            }
        }
    }

    fn chatter(n: u32, seed: u64) -> Sim<TMsg, Chatter> {
        let mut sim = Builder::new().seed(seed).delay(1, 7).build();
        for _ in 0..n {
            sim.add_node(Chatter {
                n,
                round: 0,
                pongs: 0,
            });
        }
        sim
    }

    /// Full observable snapshot of a finished run: every trace field,
    /// every statistic, every status.
    fn snapshot<M: Message, N: Node<M>>(sim: &Sim<M, N>) -> (Vec<String>, crate::Stats, Vec<bool>) {
        let events = sim
            .trace()
            .events
            .iter()
            .map(|e| {
                format!(
                    "t={} pid={} lamport={} vc={:?} kind={:?}",
                    e.time, e.pid, e.lamport, e.vc, e.kind
                )
            })
            .collect();
        let statuses = (0..sim.n())
            .map(|i| sim.status(ProcessId(i as u32)).is_up())
            .collect();
        (events, sim.stats().clone(), statuses)
    }

    #[test]
    fn sharded_chatter_matches_sequential_for_every_shard_count() {
        let mut reference = chatter(7, 42);
        reference.run_until(2_000);
        let want = snapshot(&reference);
        assert!(want.0.len() > 100, "scenario must be non-trivial");
        for shards in [1, 2, 3, 4, 8, 16] {
            let mut sim = chatter(7, 42);
            sim.run_until_sharded(2_000, shards);
            assert_eq!(snapshot(&sim), want, "shards={shards}");
        }
    }

    #[test]
    fn sharded_and_sequential_segments_mix_within_one_run() {
        let mut reference = chatter(6, 7);
        reference.run_until(3_000);
        let want = snapshot(&reference);

        let mut sim = chatter(6, 7);
        sim.run_until_sharded(500, 4); // sharded start
        sim.run_until(1_200); // sequential middle
        sim.run_until_sharded(2_100, 2); // different shard count
        sim.run_until_sharded(3_000, 3);
        assert_eq!(snapshot(&sim), want);
    }

    #[test]
    fn crashes_and_mid_broadcast_crashes_replay_identically() {
        let build = || {
            let mut sim = chatter(6, 13);
            sim.crash_at(ProcessId(5), 40);
            sim.crash_after_sends_at(ProcessId(1), 0, Some("ping"), 3);
            sim.crash_after_sends_at(ProcessId(2), 60, None, 2);
            sim
        };
        let mut reference = build();
        reference.run_until(2_000);
        let want = snapshot(&reference);
        assert!(
            !want.2[1] && !want.2[2] && !want.2[5],
            "all three crashes must land"
        );
        for shards in [1, 2, 4, 8] {
            let mut sim = build();
            sim.run_until_sharded(2_000, shards);
            assert_eq!(snapshot(&sim), want, "shards={shards}");
        }
    }

    #[test]
    fn link_controls_and_partitions_replay_identically() {
        let build = || {
            let mut sim = chatter(6, 99);
            sim.block_link_at(ProcessId(0), ProcessId(3), BlockMode::Hold, 10);
            sim.unblock_link_at(ProcessId(0), ProcessId(3), 600);
            sim.block_link_at(ProcessId(4), ProcessId(1), BlockMode::Drop, 25);
            sim.unblock_link_at(ProcessId(4), ProcessId(1), 800);
            sim.set_link_delay_at(ProcessId(2), ProcessId(0), Some((30, 60)), 50);
            sim.partition_at(
                &[
                    &[ProcessId(0), ProcessId(1), ProcessId(2)],
                    &[ProcessId(3), ProcessId(4), ProcessId(5)],
                ],
                900,
            );
            sim.heal_at(1_400);
            sim
        };
        let mut reference = build();
        reference.run_until(2_500);
        let want = snapshot(&reference);
        assert!(want.1.held == 0, "heal must release everything");
        for shards in [1, 2, 4, 8] {
            let mut sim = build();
            sim.run_until_sharded(2_500, shards);
            assert_eq!(snapshot(&sim), want, "shards={shards}");
        }
    }

    #[test]
    fn quitting_mid_batch_still_drops_same_instant_deliveries() {
        // A node that quits on its first received message: any further
        // deliveries — including ones in the same timestamp batch — must
        // count as dropped_dead_receiver, exactly like the sequential
        // engine decides.
        struct Quitter;
        impl Node<TMsg> for Quitter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                if ctx.id() == ProcessId(0) {
                    // Two pings to p2 over the same link land on distinct
                    // ticks (FIFO), but pings from p0 and p1 can collide.
                    ctx.send(ProcessId(2), TMsg::Ping(0));
                }
                if ctx.id() == ProcessId(1) {
                    ctx.send(ProcessId(2), TMsg::Ping(1));
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _from: ProcessId, _msg: TMsg) {
                ctx.quit();
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, TMsg>, _tag: u64) {}
        }
        for seed in 0..32u64 {
            let build = || {
                let mut sim: Sim<TMsg, Quitter> = Builder::new().seed(seed).delay(1, 2).build();
                for _ in 0..3 {
                    sim.add_node(Quitter);
                }
                sim
            };
            let mut reference = build();
            reference.run_until(100);
            let want = snapshot(&reference);
            for shards in [2, 3] {
                let mut sim = build();
                sim.run_until_sharded(100, shards);
                assert_eq!(snapshot(&sim), want, "seed={seed} shards={shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "Ctx::rng() is not available under run_until_sharded")]
    fn rng_using_handlers_are_rejected_loudly() {
        struct RngUser;
        impl Node<TMsg> for RngUser {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                let _: u64 = ctx.rng().gen_range(0..10);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ProcessId, _: TMsg) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, TMsg>, _: u64) {}
        }
        let mut sim: Sim<TMsg, RngUser> = Builder::new().build();
        sim.add_node(RngUser);
        sim.run_until_sharded(10, 1);
    }

    mod partition_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Every process lands in exactly one shard, and the
            /// assignment is a pure function of (pid, shards).
            #[test]
            fn every_member_lands_in_exactly_one_stable_shard(
                n in 1usize..512,
                shards in 1usize..32,
            ) {
                let mut owned = vec![0u32; n];
                for sh in 0..shards {
                    for (pid, count) in owned.iter_mut().enumerate() {
                        if shard_of(ProcessId(pid as u32), shards) == sh {
                            *count += 1;
                        }
                    }
                }
                prop_assert!(owned.iter().all(|&c| c == 1),
                    "each pid must be claimed by exactly one shard");
                for pid in 0..n {
                    let p = ProcessId(pid as u32);
                    let first = shard_of(p, shards);
                    prop_assert!(first < shards);
                    prop_assert_eq!(first, shard_of(p, shards), "partition must be stable");
                }
            }

            /// Timer-id blocks handed to concurrently executing handler
            /// invocations never collide: distinct event seqs get disjoint
            /// blocks, start blocks are disjoint from event blocks, and
            /// both stay clear of the sequential engine's counter ids.
            #[test]
            fn shard_local_timer_id_blocks_never_collide(
                seq_a in 1u64..1_000_000_000,
                seq_b in 1u64..1_000_000_000,
                pid_a in 0u32..100_000,
                pid_b in 0u32..100_000,
                k in 1u64..=BLOCK_CAPACITY,
                sequential_counter in 1u64..1_000_000_000_000,
            ) {
                if seq_a != seq_b {
                    let (a, b) = (event_timer_base(seq_a), event_timer_base(seq_b));
                    prop_assert!(a + BLOCK_CAPACITY < b || b + BLOCK_CAPACITY < a,
                        "event blocks must be disjoint");
                }
                if pid_a != pid_b {
                    let (a, b) = (start_timer_base(ProcessId(pid_a)), start_timer_base(ProcessId(pid_b)));
                    prop_assert!(a + BLOCK_CAPACITY < b || b + BLOCK_CAPACITY < a,
                        "start blocks must be disjoint");
                }
                let ev_id = event_timer_base(seq_a) + k;
                let start_id = start_timer_base(ProcessId(pid_a)) + k;
                prop_assert_ne!(ev_id & START_ID_BIT, START_ID_BIT,
                    "event ids must not wander into the start-id space");
                prop_assert_eq!(start_id & START_ID_BIT, START_ID_BIT);
                prop_assert_ne!(ev_id, sequential_counter,
                    "sharded ids live above the sequential counter range");
                prop_assert_ne!(start_id, sequential_counter);
            }
        }
    }
}
