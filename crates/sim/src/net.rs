//! Network model: seeded delays, FIFO scheduling, link control, partitions.
//!
//! Channels are *reliable and FIFO* by default (§2.1). Experiments may
//! block links (messages held until released, modelling arbitrarily long
//! delay) or sever them (messages dropped — used only by baseline
//! counter-example scenarios), and may partition the process set.

use crate::Time;
use gmp_types::ProcessId;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// What a blocked link does with traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockMode {
    /// Messages are held and delivered when the link is unblocked — the
    /// model-faithful "unbounded delay" behaviour.
    Hold,
    /// Messages are silently dropped. Outside the paper's model (channels
    /// are reliable); used by baseline violation demos where the run ends
    /// before a held message could legally be delivered anyway.
    Drop,
}

/// Link-level state: delays, blocks, partitions, FIFO bookkeeping.
#[derive(Debug)]
pub(crate) struct NetState {
    delay_min: Time,
    delay_max: Time,
    fifo: bool,
    /// Per-directed-link blocks.
    blocked: HashMap<(u32, u32), BlockMode>,
    /// Partition id per process; `None` means fully connected.
    partition: Option<Vec<usize>>,
    /// Per-directed-link delay overrides.
    delay_override: HashMap<(u32, u32), (Time, Time)>,
    /// Last scheduled delivery time per directed link (FIFO enforcement).
    last_sched: HashMap<(u32, u32), Time>,
}

impl NetState {
    pub(crate) fn new(delay_min: Time, delay_max: Time, fifo: bool) -> Self {
        assert!(
            delay_min <= delay_max,
            "delay_min must not exceed delay_max"
        );
        assert!(delay_min >= 1, "delays must be at least one tick");
        NetState {
            delay_min,
            delay_max,
            fifo,
            blocked: HashMap::new(),
            partition: None,
            delay_override: HashMap::new(),
            last_sched: HashMap::new(),
        }
    }

    /// Whether traffic from `from` to `to` currently passes, and if not,
    /// what happens to it.
    pub(crate) fn fate(&self, from: ProcessId, to: ProcessId) -> Option<BlockMode> {
        if let Some(mode) = self.blocked.get(&(from.0, to.0)) {
            return Some(*mode);
        }
        if let Some(groups) = &self.partition {
            let gf = groups.get(from.index()).copied().unwrap_or(usize::MAX);
            let gt = groups.get(to.index()).copied().unwrap_or(usize::MAX);
            if gf != gt {
                // A partition is indistinguishable from unbounded delay in
                // the model, so held (not dropped).
                return Some(BlockMode::Hold);
            }
        }
        None
    }

    /// Samples a delivery time for a message sent `from -> to` at `now`,
    /// maintaining per-link FIFO order when enabled.
    pub(crate) fn schedule(
        &mut self,
        rng: &mut SmallRng,
        now: Time,
        from: ProcessId,
        to: ProcessId,
    ) -> Time {
        let (lo, hi) = self
            .delay_override
            .get(&(from.0, to.0))
            .copied()
            .unwrap_or((self.delay_min, self.delay_max));
        let delay = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        let mut at = now + delay;
        if self.fifo {
            let last = self.last_sched.entry((from.0, to.0)).or_insert(0);
            if at <= *last {
                at = *last + 1;
            }
            *last = at;
        }
        at
    }

    pub(crate) fn block(&mut self, from: ProcessId, to: ProcessId, mode: BlockMode) {
        self.blocked.insert((from.0, to.0), mode);
    }

    pub(crate) fn unblock(&mut self, from: ProcessId, to: ProcessId) {
        self.blocked.remove(&(from.0, to.0));
    }

    pub(crate) fn set_partition(&mut self, groups: Option<Vec<usize>>) {
        self.partition = groups;
    }

    pub(crate) fn set_delay_override(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        range: Option<(Time, Time)>,
    ) {
        match range {
            Some((lo, hi)) => {
                assert!(lo >= 1 && lo <= hi, "invalid delay override");
                self.delay_override.insert((from.0, to.0), (lo, hi));
            }
            None => {
                self.delay_override.remove(&(from.0, to.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fifo_scheduling_is_monotone_per_link() {
        let mut net = NetState::new(1, 50, true);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut last = 0;
        for now in 0..100 {
            let at = net.schedule(&mut rng, now, ProcessId(0), ProcessId(1));
            assert!(at > last, "delivery times must strictly increase per link");
            last = at;
        }
    }

    #[test]
    fn independent_links_are_not_ordered() {
        let mut net = NetState::new(5, 5, true);
        let mut rng = SmallRng::seed_from_u64(7);
        let a = net.schedule(&mut rng, 0, ProcessId(0), ProcessId(1));
        let b = net.schedule(&mut rng, 0, ProcessId(0), ProcessId(2));
        assert_eq!(a, 5);
        assert_eq!(b, 5); // different link, same sample: no ordering forced
    }

    #[test]
    fn blocks_and_partitions() {
        let mut net = NetState::new(1, 2, true);
        assert_eq!(net.fate(ProcessId(0), ProcessId(1)), None);
        net.block(ProcessId(0), ProcessId(1), BlockMode::Drop);
        assert_eq!(net.fate(ProcessId(0), ProcessId(1)), Some(BlockMode::Drop));
        assert_eq!(net.fate(ProcessId(1), ProcessId(0)), None); // directed
        net.unblock(ProcessId(0), ProcessId(1));
        assert_eq!(net.fate(ProcessId(0), ProcessId(1)), None);

        net.set_partition(Some(vec![0, 0, 1]));
        assert_eq!(net.fate(ProcessId(0), ProcessId(2)), Some(BlockMode::Hold));
        assert_eq!(net.fate(ProcessId(0), ProcessId(1)), None);
        net.set_partition(None);
        assert_eq!(net.fate(ProcessId(0), ProcessId(2)), None);
    }

    #[test]
    fn delay_override_is_used() {
        let mut net = NetState::new(1, 2, false);
        let mut rng = SmallRng::seed_from_u64(1);
        net.set_delay_override(ProcessId(0), ProcessId(1), Some((100, 100)));
        assert_eq!(net.schedule(&mut rng, 10, ProcessId(0), ProcessId(1)), 110);
        net.set_delay_override(ProcessId(0), ProcessId(1), None);
        let at = net.schedule(&mut rng, 10, ProcessId(0), ProcessId(1));
        assert!((11..=12).contains(&at));
    }
}
