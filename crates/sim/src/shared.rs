//! `Arc`-shared broadcast payloads.
//!
//! [`Ctx::broadcast`](crate::Ctx::broadcast) clones the message once per
//! recipient, so a payload embedded by value (a `Vec`, say) is deep-copied
//! `n − 1` times per fan-out — the dominant allocation cost of periodic
//! full-group traffic such as heartbeats. [`Shared`] is the same trick
//! [`gmp_causality::Stamp`] plays for vector-clock snapshots, applied to
//! message payloads: construct the payload once, wrap it, and every
//! per-recipient message clone is an O(1) reference-count bump on the one
//! allocation.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, `Arc`-shared message payload.
///
/// Cloning a `Shared` — which is what [`Ctx::broadcast`](crate::Ctx::broadcast)
/// does per recipient — never copies the underlying data; all clones point at
/// the allocation built by the original constructor. Payloads are immutable
/// once wrapped, which is exactly the discipline a recorded message needs:
/// the bytes a receiver observes are the bytes the sender constructed.
///
/// ```
/// use gmp_sim::Shared;
///
/// let set: Shared<[u32]> = vec![3, 1, 4].into();
/// let fanned_out = set.clone(); // O(1): no copy of the slice
/// assert!(Shared::ptr_eq(&set, &fanned_out));
/// assert_eq!(&*fanned_out, &[3, 1, 4]);
/// ```
pub struct Shared<T: ?Sized>(Arc<T>);

impl<T: ?Sized> Shared<T> {
    /// True when `a` and `b` share one allocation (i.e. one is a clone of
    /// the other). Used by tests to prove fan-out does not copy.
    pub fn ptr_eq(a: &Shared<T>, b: &Shared<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: ?Sized> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: PartialEq + ?Sized> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<T: Eq + ?Sized> Eq for Shared<T> {}

impl<T> From<Vec<T>> for Shared<[T]> {
    /// Wraps an owned vector; the one allocation it took to build is the
    /// one every clone shares.
    fn from(v: Vec<T>) -> Self {
        Shared(Arc::from(v))
    }
}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Self {
        Shared(Arc::new(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_allocation() {
        let a: Shared<[u8]> = vec![1, 2, 3].into();
        let b = a.clone();
        let c = b.clone();
        assert!(Shared::ptr_eq(&a, &b));
        assert!(Shared::ptr_eq(&a, &c));
        assert_eq!(a, c);
        assert_eq!(&*c, &[1, 2, 3]);
    }

    #[test]
    fn distinct_constructions_do_not_share() {
        let a: Shared<[u8]> = vec![1].into();
        let b: Shared<[u8]> = vec![1].into();
        assert!(!Shared::ptr_eq(&a, &b));
        assert_eq!(a, b, "equality is by value, sharing is by pointer");
    }

    #[test]
    fn empty_payloads_work() {
        let a: Shared<[u64]> = Vec::new().into();
        assert!(a.is_empty());
        assert_eq!(a.iter().count(), 0);
    }
}
