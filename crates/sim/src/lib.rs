//! Deterministic discrete-event simulator of the paper's system model
//! (§2.1): `n` processes communicating over a completely connected network of
//! reliable FIFO channels, with *unbounded* (randomized, seeded) message
//! delays, no global clock visible to the processes, and crash failures.
//!
//! The simulator substitutes for the real asynchronous environment the
//! authors ran on (see `DESIGN.md`): it implements the model verbatim and
//! additionally lets experiments construct the adversarial schedules the
//! paper's proofs quantify over — crashes in the middle of a broadcast
//! (Figure 3), blocked links and partitions (Figure 4, Claim 7.1), and
//! spurious failure detections.
//!
//! Protocols are [`Node`] state machines; every send, receive, timer, crash,
//! quit and semantic [`Note`](gmp_types::Note) is recorded in a [`Trace`]
//! stamped with Lamport and vector clocks, so runs can be checked against
//! the GMP specification afterwards (`gmp-props`) and message complexity can
//! be measured (`gmp-bench`). Stamps are copy-on-write snapshots
//! ([`gmp_causality::Stamp`]): recording an event is O(1) unless the clock
//! advanced since the previous stamp, which keeps tracing cheap at large
//! `n`. Fan-out payloads get the same treatment: wrapping a payload in
//! [`Shared`] makes every per-recipient message clone — whether via
//! [`Ctx::broadcast`] or a per-target [`Ctx::send`] loop — an O(1)
//! reference bump on one allocation instead of a deep copy. The [`batch`]
//! module ([`run_seeds`]) replays one scenario across a whole seed range
//! and aggregates percentile statistics ([`Summary`]) for schedule-space
//! exploration; [`run_seeds_parallel`] executes the same sweep on a
//! scoped-thread worker [`pool`] with seed-ordered, byte-identical output.
//!
//! # Threading and the `Send` audit
//!
//! The engine supports two kinds of parallelism. *Between* runs, the
//! worker pool gives each thread its own `Sim` built from its own seed
//! ([`run_seeds_parallel`]). *Within* a run, [`Sim::run_until_sharded`]
//! partitions the processes across shard worker threads ([`shard_of`]:
//! `pid mod shards`) while the calling thread sequences every globally
//! visible mutation — the RNG, message ids, queue order, the trace — so
//! the output is byte-identical to the single-threaded `run_until` for
//! every shard count (see the `shard` module docs for the frontier and
//! seq-stability arguments). Both are sound because
//! `Sim<M, N>: Send` whenever `M: Send` and `N: Send`: every engine
//! internal is owned data (`SmallRng` is a plain xoshiro256++ state, the
//! event queue and link state are `std` collections of owned values) or an
//! atomically reference-counted snapshot ([`gmp_causality::Stamp`] and
//! [`Shared`] both wrap [`std::sync::Arc`]). Nothing in the stack uses
//! `Rc`, thread-locals, or interior mutability, so the auto trait holds —
//! pinned by a compile-time assertion in `batch.rs`'s tests and relied on
//! by [`run_seeds_parallel`]'s `M: Send, N: Send` bounds.
//!
//! # Example
//!
//! ```
//! use gmp_sim::{Builder, Ctx, Message, Node};
//! use gmp_types::ProcessId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Message for Ping {
//!     fn tag(&self) -> &'static str { "ping" }
//! }
//!
//! struct Echo;
//! impl Node<Ping> for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         if ctx.id() == ProcessId(0) {
//!             ctx.send(ProcessId(1), Ping);
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, Ping>, _from: ProcessId, _msg: Ping) {}
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Ping>, _tag: u64) {}
//! }
//!
//! let mut sim = Builder::new().seed(1).build::<Ping, Echo>();
//! sim.add_node(Echo);
//! sim.add_node(Echo);
//! sim.run_until(1_000);
//! assert_eq!(sim.stats().sends("ping"), 1);
//! ```

pub mod batch;
pub mod net;
pub mod node;
pub mod pool;
pub mod shared;
pub mod stats;
pub mod trace;

mod engine;
mod shard;

pub use batch::{run_seeds, run_seeds_parallel, summarize_runs, BatchConfig, RunStats};
pub use engine::{Builder, NodeStatus, Sim};
pub use net::BlockMode;
pub use node::{Ctx, Message, Node, TimerId};
pub use shard::shard_of;
pub use shared::Shared;
pub use stats::{Stats, Summary};
pub use trace::{Trace, TraceEvent, TraceKind};

/// Simulated time, in abstract ticks. Processes never read this directly —
/// they only see timers firing — preserving the "no global clock" model.
pub type Time = u64;
