//! The [`Node`] protocol trait and the effect context [`Ctx`] handed to it.

use crate::Time;
use gmp_types::{Note, ProcessId};
use rand::rngs::SmallRng;

/// A protocol message. `tag` names the message kind for trace recording and
/// message-complexity accounting (the benchmarks count sends per tag).
pub trait Message: Clone + std::fmt::Debug {
    /// A short, stable name for this message kind (e.g. `"invite"`).
    fn tag(&self) -> &'static str;
}

/// A deterministic protocol state machine driven by the simulator.
///
/// Handlers perform effects exclusively through [`Ctx`]; the simulator
/// applies them in emission order after the handler returns, which keeps
/// the run deterministic and lets a scheduled mid-broadcast crash cut a
/// broadcast short exactly as in the paper's Figure 3.
pub trait Node<M: Message> {
    /// Called once at simulated time 0, in process-id order.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>);

    /// Called when a message is delivered to this process.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId, msg: M);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64);
}

/// Identifier of a pending timer, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// An effect requested by a node handler.
#[derive(Clone, Debug)]
pub(crate) enum Action<M> {
    Send { to: ProcessId, msg: M },
    SetTimer { id: TimerId, delay: Time, tag: u64 },
    CancelTimer { id: TimerId },
    Note(Note),
    Quit,
}

/// The effect context passed to every [`Node`] handler.
///
/// All interaction with the outside world — sending, timers, quitting,
/// trace annotations, randomness — goes through this context so the
/// simulator can record and order it deterministically.
pub struct Ctx<'a, M> {
    pub(crate) pid: ProcessId,
    pub(crate) now: Time,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) timer_counter: &'a mut u64,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// This process's identifier.
    pub fn id(&self) -> ProcessId {
        self.pid
    }

    /// Current simulated time. Protocols should treat this as opaque "local
    /// clock" information only (timeouts), never as a global clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to`. Channels are reliable and FIFO unless the
    /// experiment has blocked the link or crashed the receiver.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// `Bcast(p, G, m)` (§3.1): sends `msg` to every process in `to` except
    /// this one. Indivisible in the sense that no other handler of this
    /// process runs in between, but *not* failure-atomic: a scheduled crash
    /// can cut it short after any prefix of the sends.
    ///
    /// The message is cloned once per recipient. For payload-free messages
    /// that clone is trivially cheap; for bulk payloads, wrap them in
    /// [`Shared`](crate::Shared) so one constructed payload fans out to
    /// `n − 1` recipients as O(1) reference bumps instead of deep copies.
    /// (The same holds for a hand-rolled per-target [`send`](Ctx::send)
    /// loop, which is what `gmp-core`'s heartbeat digests use — each
    /// recipient picks a full or empty digest, but all full ones share one
    /// `Shared` snapshot.)
    pub fn broadcast<I>(&mut self, to: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
    {
        for p in to {
            if p != self.pid {
                self.send(p, msg.clone());
            }
        }
    }

    /// Arms a one-shot timer that fires after `delay` ticks, delivering
    /// `tag` to [`Node::on_timer`]. Returns an id usable with
    /// [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: Time, tag: u64) -> TimerId {
        *self.timer_counter += 1;
        let id = TimerId(*self.timer_counter);
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Records a semantic annotation into the trace (e.g. `faulty_p(q)`,
    /// view installation). The GMP property checkers read these.
    pub fn note(&mut self, note: Note) {
        self.actions.push(Action::Note(note));
    }

    /// Executes the event `quit_p`: this process permanently ceases
    /// communication (§2.1). Remaining queued effects of the current handler
    /// are discarded.
    pub fn quit(&mut self) {
        self.actions.push(Action::Quit);
    }

    /// Deterministic, seeded randomness for protocol-level choices.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Runs `body` against a context typed for an embedded sub-protocol's
    /// message type `M2`, then lifts every effect the sub-protocol queued
    /// back into this context, wrapping its sends with `wrap`.
    ///
    /// This is how a composite node hosts an inner protocol written against
    /// its own message enum — e.g. a replicated-log replica embedding a
    /// membership `Member`: the inner handler runs unchanged, and its sends
    /// go out on the wire inside the composite's envelope. Effects keep
    /// their emission order relative to each other and to anything the
    /// outer handler queues before or after, so determinism (and the
    /// quit-cuts-the-broadcast semantics) is preserved. Timer *ids* come
    /// from the shared per-process counter and never collide across
    /// layers, but timer *tags* share one namespace: composites must
    /// partition tags and route [`Node::on_timer`] to the right layer
    /// themselves.
    pub fn embedded<M2, R>(
        &mut self,
        wrap: impl Fn(M2) -> M,
        body: impl FnOnce(&mut Ctx<'_, M2>) -> R,
    ) -> R
    where
        M2: Message,
    {
        let mut inner: Ctx<'_, M2> = Ctx {
            pid: self.pid,
            now: self.now,
            actions: Vec::new(),
            rng: &mut *self.rng,
            timer_counter: &mut *self.timer_counter,
        };
        let out = body(&mut inner);
        let lifted = inner.actions;
        self.actions.reserve(lifted.len());
        for a in lifted {
            self.actions.push(match a {
                Action::Send { to, msg } => Action::Send { to, msg: wrap(msg) },
                Action::SetTimer { id, delay, tag } => Action::SetTimer { id, delay, tag },
                Action::CancelTimer { id } => Action::CancelTimer { id },
                Action::Note(n) => Action::Note(n),
                Action::Quit => Action::Quit,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    struct M0;
    impl Message for M0 {
        fn tag(&self) -> &'static str {
            "m0"
        }
    }

    #[test]
    fn broadcast_skips_self() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut counter = 0;
        let mut ctx: Ctx<'_, M0> = Ctx {
            pid: ProcessId(1),
            now: 0,
            actions: Vec::new(),
            rng: &mut rng,
            timer_counter: &mut counter,
        };
        ctx.broadcast([ProcessId(0), ProcessId(1), ProcessId(2)], M0);
        let targets: Vec<ProcessId> = ctx
            .actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![ProcessId(0), ProcessId(2)]);
    }

    #[derive(Clone, Debug)]
    enum Outer {
        Wrapped(M0),
    }
    impl Message for Outer {
        fn tag(&self) -> &'static str {
            "outer"
        }
    }

    #[test]
    fn embedded_lifts_and_wraps_effects() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut counter = 0;
        let mut ctx: Ctx<'_, Outer> = Ctx {
            pid: ProcessId(1),
            now: 7,
            actions: Vec::new(),
            rng: &mut rng,
            timer_counter: &mut counter,
        };
        let outer_timer = ctx.set_timer(5, 100);
        let (inner_id, inner_now) = ctx.embedded(Outer::Wrapped, |inner| {
            inner.send(ProcessId(2), M0);
            let t = inner.set_timer(3, 1);
            (t, inner.now())
        });
        // The inner context mirrors identity and clock…
        assert_eq!(inner_now, 7);
        // …and draws timer ids from the shared counter: no collision.
        assert_ne!(inner_id, outer_timer);
        // Effects are lifted in order, sends wrapped in the outer enum.
        assert_eq!(ctx.actions.len(), 3);
        assert!(matches!(
            &ctx.actions[1],
            Action::Send {
                to: ProcessId(2),
                msg: Outer::Wrapped(M0)
            }
        ));
        assert!(
            matches!(&ctx.actions[2], Action::SetTimer { id, delay: 3, tag: 1 } if *id == inner_id)
        );
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut counter = 0;
        let mut ctx: Ctx<'_, M0> = Ctx {
            pid: ProcessId(0),
            now: 0,
            actions: Vec::new(),
            rng: &mut rng,
            timer_counter: &mut counter,
        };
        let a = ctx.set_timer(5, 1);
        let b = ctx.set_timer(5, 1);
        assert_ne!(a, b);
    }
}
