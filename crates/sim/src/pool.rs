//! A dependency-free scoped-thread worker pool for embarrassingly
//! parallel, *order-preserving* fan-out.
//!
//! The batch runner's seed sweeps ([`run_seeds_parallel`]) are the
//! motivating workload: every run is a pure function of its seed, so runs
//! can execute on any thread in any order — but the *result vector* must
//! come back seed-ordered and byte-identical to the sequential path, or
//! the determinism contract (`tests/determinism.rs`) breaks. [`run_indexed`]
//! provides exactly that shape: tasks are claimed work-stealing style off a
//! shared atomic cursor (so a slow task never stalls the queue behind it),
//! each worker tags its results with their index, and the caller reassembles
//! them into index order before returning.
//!
//! Threads are plain [`std::thread::scope`] workers — no channels, no
//! external crates, no shared mutable state beyond one `AtomicUsize` — so
//! the pool is as deterministic as the tasks it runs.
//!
//! [`run_seeds_parallel`]: crate::run_seeds_parallel
//!
//! # Example
//!
//! ```
//! use gmp_sim::pool::run_indexed;
//! use std::num::NonZeroUsize;
//!
//! let jobs = NonZeroUsize::new(4).unwrap();
//! let squares = run_indexed(jobs, 10, |i| (i as u64) * (i as u64));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use when the caller does not say:
/// [`std::thread::available_parallelism`], or 1 if the platform cannot
/// tell.
pub fn available_jobs() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Runs `task(0) .. task(count - 1)` on up to `jobs` scoped worker
/// threads and returns the results **in index order**, exactly as the
/// sequential `(0..count).map(task).collect()` would.
///
/// Scheduling is work-stealing over an atomic cursor: each worker claims
/// the next unclaimed index, so an expensive task occupies one thread
/// while the others drain the rest of the range. Which thread runs which
/// index is nondeterministic; the returned vector is not — every index's
/// result lands in its own slot regardless of completion order.
///
/// With `jobs == 1` (or `count <= 1`) no threads are spawned and the
/// tasks run inline on the caller's thread.
///
/// # Panics
///
/// If a task panics, the panic is propagated to the caller. The
/// panicking worker poisons the cursor first (claims jump past `count`),
/// so the other workers stop after at most the one task each already has
/// in flight — a panic early in a long sweep does not run the sweep to
/// completion before surfacing.
pub fn run_indexed<T, F>(jobs: NonZeroUsize, count: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.get().min(count);
    if workers <= 1 {
        return (0..count).map(task).collect();
    }

    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let task = &task;
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))) {
                            Ok(value) => local.push((i, value)),
                            Err(panic) => {
                                // Poison the cursor so the other workers
                                // claim nothing further, then re-raise on
                                // this thread; the caller's join sees it.
                                cursor.store(count, Ordering::Relaxed);
                                std::panic::resume_unwind(panic);
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    // Reassemble into index order: completion order is nondeterministic,
    // slot assignment is not.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    for (i, value) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("index {i} never ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn jobs(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).expect("non-zero jobs")
    }

    #[test]
    fn results_come_back_in_index_order() {
        for j in [1, 2, 3, 8] {
            let out = run_indexed(jobs(j), 100, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>(), "jobs={j}");
        }
    }

    #[test]
    fn output_is_independent_of_job_count() {
        let sequential = run_indexed(jobs(1), 37, |i| format!("r{i}"));
        for j in [2, 4, 7, 16] {
            assert_eq!(run_indexed(jobs(j), 37, |i| format!("r{i}")), sequential);
        }
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(run_indexed(jobs(8), 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(jobs(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn zero_tasks_yield_an_empty_vector() {
        let out: Vec<usize> = run_indexed(jobs(4), 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        const COUNT: usize = 200;
        let calls: Vec<AtomicU64> = (0..COUNT).map(|_| AtomicU64::new(0)).collect();
        let out = run_indexed(jobs(6), COUNT, |i| {
            calls[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), COUNT);
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "index {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn task_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(jobs(4), 16, |i| {
                if i == 7 {
                    panic!("task 7 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn panic_poisons_the_cursor_so_the_sweep_aborts_early() {
        const COUNT: usize = 64;
        let executed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(|| {
            run_indexed(jobs(4), COUNT, |i| {
                if i == 0 {
                    panic!("first task exploded");
                }
                // Slow enough that the poison (stored immediately after
                // the very first claimed task panics) provably lands while
                // most of the range is still unclaimed.
                std::thread::sleep(std::time::Duration::from_millis(1));
                executed.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        let ran = executed.load(Ordering::Relaxed);
        assert!(
            ran < COUNT as u64 / 2,
            "sweep ran {ran} of {COUNT} tasks after an index-0 panic"
        );
    }

    #[test]
    fn available_jobs_is_at_least_one() {
        assert!(available_jobs().get() >= 1);
    }
}
