//! Multi-seed batch execution: run one scenario across a whole range of
//! seeds and aggregate per-run statistics.
//!
//! The paper's claims are quantified over *all* schedules; a single seeded
//! run samples exactly one. [`run_seeds`] explores the schedule space by
//! replaying the same scenario under every seed in a range — each run is
//! independently deterministic (see `tests/determinism.rs`) — and returns
//! one [`RunStats`] per seed, which [`summarize_runs`] condenses into
//! percentile [`Summary`] statistics. Cheap copy-on-write trace stamping
//! (see [`gmp_causality::CowClock`]) keeps this affordable at `n` up to 128
//! and dozens of seeds per call.
//!
//! Because runs are independent, the sweep parallelizes perfectly:
//! [`run_seeds_parallel`] executes the same sweep on a scoped worker pool
//! ([`pool`]) and returns a vector **identical** to the
//! sequential runner's, in seed order, whatever the thread count — the
//! pool changes wall-clock time, never output.
//!
//! # Example
//!
//! ```
//! use gmp_sim::{run_seeds, summarize_runs, BatchConfig, Builder, Ctx, Message, Node};
//! use gmp_types::ProcessId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Message for Ping {
//!     fn tag(&self) -> &'static str { "ping" }
//! }
//!
//! /// p0 pings everyone once at start.
//! struct Hello { n: u32 }
//! impl Node<Ping> for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         if ctx.id() == ProcessId(0) {
//!             ctx.broadcast((0..self.n).map(ProcessId), Ping);
//!         }
//!     }
//!     fn on_message(&mut self, _: &mut Ctx<'_, Ping>, _: ProcessId, _: Ping) {}
//!     fn on_timer(&mut self, _: &mut Ctx<'_, Ping>, _: u64) {}
//! }
//!
//! let n = 4u32;
//! let runs = run_seeds(0..32, BatchConfig::new(1_000), |seed| {
//!     let mut sim = Builder::new().seed(seed).build();
//!     for _ in 0..n {
//!         sim.add_node(Hello { n });
//!     }
//!     sim
//! });
//! assert_eq!(runs.len(), 32);
//! // Every schedule delivers the same broadcast: n - 1 pings.
//! let pings = summarize_runs(&runs, |r| r.stats.sends("ping"));
//! assert_eq!((pings.min, pings.max), (3, 3));
//! // Delivery *times* differ across seeds, so run lengths may too.
//! let events = summarize_runs(&runs, |r| r.events as u64);
//! assert!(events.p50 >= events.min);
//! ```

use crate::engine::Sim;
use crate::node::{Message, Node};
use crate::pool;
use crate::stats::{Stats, Summary};
use crate::Time;
use std::num::NonZeroUsize;
use std::ops::Range;

/// How far each run of a seed sweep executes, and on how many threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Simulated-time horizon passed to [`Sim::run_until`] for every seed.
    pub horizon: Time,
    /// Worker threads for [`run_seeds_parallel`]. `None` (the default)
    /// means [`pool::available_jobs`] — every core the platform reports.
    /// [`run_seeds`] is always sequential and ignores this knob.
    pub jobs: Option<NonZeroUsize>,
}

impl BatchConfig {
    /// A sweep whose runs all execute to the given horizon, with the
    /// default (auto-detected) parallelism.
    pub fn new(horizon: Time) -> Self {
        BatchConfig {
            horizon,
            jobs: None,
        }
    }

    /// Sets the worker-thread count for [`run_seeds_parallel`]. `0`
    /// restores the default (auto-detect).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = NonZeroUsize::new(jobs);
        self
    }
}

/// Outcome of one seeded run of a batch.
///
/// Two `RunStats` compare equal iff every recorded figure — seed, event
/// count, survivors, end time, and all per-tag message counters — matches;
/// the determinism tests compare whole sweep vectors this way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// The seed that produced this run.
    pub seed: u64,
    /// Events recorded in the trace.
    pub events: usize,
    /// Processes still up at the horizon.
    pub living: usize,
    /// Simulated time the run reached (= the configured horizon).
    pub end_time: Time,
    /// Message counters of the run.
    pub stats: Stats,
}

/// Executes one already-built run of a sweep to the horizon and collects
/// its statistics. Shared verbatim by the sequential and parallel runners,
/// so their per-run behavior cannot drift apart.
fn finish_run<M, N>(seed: u64, config: &BatchConfig, mut sim: Sim<M, N>) -> RunStats
where
    M: Message,
    N: Node<M>,
{
    sim.run_until(config.horizon);
    RunStats {
        seed,
        events: sim.trace().events.len(),
        living: sim.living().len(),
        end_time: sim.now(),
        stats: sim.stats().clone(),
    }
}

/// Runs `build(seed)` to the configured horizon for every seed in `seeds`,
/// in order, and collects one [`RunStats`] per run.
///
/// `build` constructs a fresh simulator for each seed — typically a
/// `Builder::new().seed(seed)` plus the scenario's nodes and fault
/// schedule. Each run is a pure function of its seed, so the returned
/// vector is deterministic end to end.
///
/// # Seed-range contract
///
/// An **empty** range (`a..a`) is a legal degenerate sweep and returns an
/// empty vector. A **reversed** range (`start > end`) is a caller bug, not
/// a sweep: debug builds reject it with a `debug_assert!`, release builds
/// fall through to `Range`'s iteration semantics and return an empty
/// vector. The same contract applies to [`run_seeds_parallel`].
pub fn run_seeds<M, N, F>(seeds: Range<u64>, config: BatchConfig, mut build: F) -> Vec<RunStats>
where
    M: Message,
    N: Node<M>,
    F: FnMut(u64) -> Sim<M, N>,
{
    debug_assert!(
        seeds.start <= seeds.end,
        "reversed seed range {}..{} (empty ranges are written a..a)",
        seeds.start,
        seeds.end
    );
    seeds
        .map(|seed| finish_run(seed, &config, build(seed)))
        .collect()
}

/// [`run_seeds`] on the scoped worker pool: the same sweep, the same
/// seed-ordered output, executed on `jobs` threads.
///
/// The returned vector is **identical** to the sequential runner's for any
/// thread count — runs are pure functions of their seeds, workers claim
/// seeds work-stealing style off an atomic cursor, and every result is
/// slotted by its index in the range (see [`pool::run_indexed`]). The
/// determinism suite and a property test pin `run_seeds_parallel(…) ==
/// run_seeds(…)` across ranges, horizons, and job counts.
///
/// `jobs` resolves in order: the explicit argument, then
/// [`BatchConfig::jobs`], then [`pool::available_jobs`]. Unlike
/// [`run_seeds`], `build` must be callable from worker threads (`Fn +
/// Sync`) and the simulator's message and node types must be [`Send`] —
/// see the crate docs' `Send` audit.
///
/// # Seed-range contract
///
/// Same as [`run_seeds`]: empty is legal, reversed is a debug-build panic.
pub fn run_seeds_parallel<M, N, F>(
    seeds: Range<u64>,
    config: BatchConfig,
    jobs: Option<NonZeroUsize>,
    build: F,
) -> Vec<RunStats>
where
    M: Message + Send,
    N: Node<M> + Send,
    F: Fn(u64) -> Sim<M, N> + Sync,
{
    debug_assert!(
        seeds.start <= seeds.end,
        "reversed seed range {}..{} (empty ranges are written a..a)",
        seeds.start,
        seeds.end
    );
    let jobs = jobs.or(config.jobs).unwrap_or_else(pool::available_jobs);
    let count = seeds.end.saturating_sub(seeds.start) as usize;
    pool::run_indexed(jobs, count, |i| {
        let seed = seeds.start + i as u64;
        finish_run(seed, &config, build(seed))
    })
}

/// Extracts `metric` from every run and summarizes it (min/max/mean and
/// nearest-rank percentiles).
pub fn summarize_runs<F>(runs: &[RunStats], mut metric: F) -> Summary
where
    F: FnMut(&RunStats) -> u64,
{
    let values: Vec<u64> = runs.iter().map(&mut metric).collect();
    Summary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Ctx;
    use crate::Builder;
    use gmp_types::ProcessId;

    #[derive(Clone, Debug)]
    struct Tick;
    impl Message for Tick {
        fn tag(&self) -> &'static str {
            "tick"
        }
    }

    /// Everyone sends one message to the next process at start.
    struct Ring {
        n: u32,
    }
    impl Node<Tick> for Ring {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Tick>) {
            let next = ProcessId((ctx.id().0 + 1) % self.n);
            ctx.send(next, Tick);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Tick>, _: ProcessId, _: Tick) {}
        fn on_timer(&mut self, _: &mut Ctx<'_, Tick>, _: u64) {}
    }

    fn ring(n: u32, seed: u64) -> Sim<Tick, Ring> {
        let mut sim = Builder::new().seed(seed).build();
        for _ in 0..n {
            sim.add_node(Ring { n });
        }
        sim
    }

    #[test]
    fn one_run_stats_per_seed_in_order() {
        let runs = run_seeds(5..13, BatchConfig::new(500), |s| ring(6, s));
        assert_eq!(runs.len(), 8);
        assert_eq!(
            runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            (5..13).collect::<Vec<_>>()
        );
        for r in &runs {
            assert_eq!(r.stats.sends("tick"), 6);
            assert_eq!(r.living, 6);
            assert_eq!(r.end_time, 500);
        }
    }

    #[test]
    fn batch_is_deterministic() {
        let a = run_seeds(0..16, BatchConfig::new(500), |s| ring(4, s));
        let b = run_seeds(0..16, BatchConfig::new(500), |s| ring(4, s));
        assert_eq!(a, b);
    }

    #[test]
    fn summarize_extracts_the_chosen_metric() {
        let runs = run_seeds(0..32, BatchConfig::new(500), |s| ring(5, s));
        let sends = summarize_runs(&runs, |r| r.stats.sends_total());
        assert_eq!(sends.count, 32);
        assert_eq!(
            (sends.min, sends.max),
            (5, 5),
            "ring sends are schedule-independent"
        );
        let events = summarize_runs(&runs, |r| r.events as u64);
        // start + send + recv per process = 3n when everything delivers.
        assert_eq!((events.min, events.max), (15, 15));
    }

    #[test]
    fn empty_seed_range_is_empty() {
        let runs = run_seeds(3..3, BatchConfig::new(100), |s| ring(3, s));
        assert!(runs.is_empty());
        assert_eq!(summarize_runs(&runs, |r| r.events as u64).count, 0);
        let par = run_seeds_parallel(3..3, BatchConfig::new(100), None, |s| ring(3, s));
        assert!(par.is_empty());
    }

    #[test]
    fn single_seed_sweeps_work() {
        let seq = run_seeds(9..10, BatchConfig::new(500), |s| ring(4, s));
        let par = run_seeds_parallel(9..10, BatchConfig::new(500), None, |s| ring(4, s));
        assert_eq!(seq.len(), 1);
        assert_eq!(seq, par);
        assert_eq!(seq[0].seed, 9);
    }

    // A reversed range is precisely the caller bug the contract rejects,
    // so the lint against constructing one is suppressed here on purpose.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reversed seed range")]
    #[allow(clippy::reversed_empty_ranges)]
    fn reversed_range_is_rejected_in_debug() {
        let _ = run_seeds(5..2, BatchConfig::new(100), |s| ring(3, s));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reversed seed range")]
    #[allow(clippy::reversed_empty_ranges)]
    fn reversed_range_is_rejected_in_debug_parallel() {
        let _ = run_seeds_parallel(5..2, BatchConfig::new(100), None, |s| ring(3, s));
    }

    #[test]
    fn fault_schedules_apply_per_run() {
        let runs = run_seeds(0..8, BatchConfig::new(500), |s| {
            let mut sim = ring(4, s);
            sim.crash_at(ProcessId(3), 1);
            sim
        });
        for r in &runs {
            assert_eq!(r.living, 3, "seed {}: crash must apply", r.seed);
        }
    }

    #[test]
    fn parallel_matches_sequential_for_every_job_count() {
        let config = BatchConfig::new(600);
        let sequential = run_seeds(0..24, config, |s| ring(5, s));
        for jobs in [1usize, 2, 3, 4, 8, 32] {
            let parallel =
                run_seeds_parallel(0..24, config, NonZeroUsize::new(jobs), |s| ring(5, s));
            assert_eq!(parallel, sequential, "jobs={jobs}: output diverged");
        }
    }

    #[test]
    fn more_jobs_than_seeds_matches_sequential() {
        let config = BatchConfig::new(400);
        let sequential = run_seeds(0..3, config, |s| ring(4, s));
        let parallel = run_seeds_parallel(0..3, config, NonZeroUsize::new(16), |s| ring(4, s));
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn config_jobs_knob_is_honored() {
        // jobs through the config, not the argument: same output.
        let sequential = run_seeds(0..12, BatchConfig::new(500), |s| ring(4, s));
        let via_config =
            run_seeds_parallel(0..12, BatchConfig::new(500).jobs(4), None, |s| ring(4, s));
        assert_eq!(via_config, sequential);
        // jobs(0) restores auto-detection.
        assert_eq!(BatchConfig::new(500).jobs(4).jobs(0).jobs, None);
    }

    #[test]
    fn parallel_runs_apply_fault_schedules() {
        let runs = run_seeds_parallel(0..8, BatchConfig::new(500), NonZeroUsize::new(4), |s| {
            let mut sim = ring(4, s);
            sim.crash_at(ProcessId(3), 1);
            sim
        });
        for r in &runs {
            assert_eq!(r.living, 3, "seed {}: crash must apply", r.seed);
        }
    }

    /// The engine-level `Send` audit, checked at compile time: a simulator
    /// whose message and node types are `Send` is itself `Send`, which is
    /// what lets whole runs execute on pool worker threads. (All engine
    /// internals — `SmallRng`, the event queue, `Arc`-backed `Stamp` and
    /// `Shared` payloads — are `Send + Sync`-safe by construction; nothing
    /// in the stack uses `Rc` or interior mutability.)
    #[test]
    fn sim_is_send_when_message_and_node_are() {
        fn assert_send<T: Send>(_: &T) {}
        let sim = ring(3, 0);
        assert_send(&sim);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Explicit case budget; failures replay via the per-case seeds
            // recorded in proptest-regressions/.
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            /// The tentpole's determinism pin as a property: for arbitrary
            /// seed ranges, horizons, group sizes and job counts, the
            /// parallel sweep returns the *same `RunStats` vector* as the
            /// sequential one — thread scheduling is invisible in the
            /// output.
            #[test]
            fn parallel_equals_sequential(
                start in 0u64..1_000,
                len in 0u64..24,
                horizon in 1u64..800,
                jobs in 1usize..=8,
                n in 2u32..6,
            ) {
                let seeds = start..start + len;
                let config = BatchConfig::new(horizon);
                let sequential = run_seeds(seeds.clone(), config, |s| ring(n, s));
                let parallel =
                    run_seeds_parallel(seeds, config, NonZeroUsize::new(jobs), |s| ring(n, s));
                prop_assert_eq!(parallel, sequential);
            }
        }
    }
}
