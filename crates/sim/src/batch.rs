//! Multi-seed batch execution: run one scenario across a whole range of
//! seeds and aggregate per-run statistics.
//!
//! The paper's claims are quantified over *all* schedules; a single seeded
//! run samples exactly one. [`run_seeds`] explores the schedule space by
//! replaying the same scenario under every seed in a range — each run is
//! independently deterministic (see `tests/determinism.rs`) — and returns
//! one [`RunStats`] per seed, which [`summarize_runs`] condenses into
//! percentile [`Summary`] statistics. Cheap copy-on-write trace stamping
//! (see [`gmp_causality::CowClock`]) keeps this affordable at `n` up to 128
//! and dozens of seeds per call.
//!
//! # Example
//!
//! ```
//! use gmp_sim::{run_seeds, summarize_runs, BatchConfig, Builder, Ctx, Message, Node};
//! use gmp_types::ProcessId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Message for Ping {
//!     fn tag(&self) -> &'static str { "ping" }
//! }
//!
//! /// p0 pings everyone once at start.
//! struct Hello { n: u32 }
//! impl Node<Ping> for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
//!         if ctx.id() == ProcessId(0) {
//!             ctx.broadcast((0..self.n).map(ProcessId), Ping);
//!         }
//!     }
//!     fn on_message(&mut self, _: &mut Ctx<'_, Ping>, _: ProcessId, _: Ping) {}
//!     fn on_timer(&mut self, _: &mut Ctx<'_, Ping>, _: u64) {}
//! }
//!
//! let n = 4u32;
//! let runs = run_seeds(0..32, BatchConfig::new(1_000), |seed| {
//!     let mut sim = Builder::new().seed(seed).build();
//!     for _ in 0..n {
//!         sim.add_node(Hello { n });
//!     }
//!     sim
//! });
//! assert_eq!(runs.len(), 32);
//! // Every schedule delivers the same broadcast: n - 1 pings.
//! let pings = summarize_runs(&runs, |r| r.stats.sends("ping"));
//! assert_eq!((pings.min, pings.max), (3, 3));
//! // Delivery *times* differ across seeds, so run lengths may too.
//! let events = summarize_runs(&runs, |r| r.events as u64);
//! assert!(events.p50 >= events.min);
//! ```

use crate::engine::Sim;
use crate::node::{Message, Node};
use crate::stats::{Stats, Summary};
use crate::Time;
use std::ops::Range;

/// How far each run of a seed sweep executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Simulated-time horizon passed to [`Sim::run_until`] for every seed.
    pub horizon: Time,
}

impl BatchConfig {
    /// A sweep whose runs all execute to the given horizon.
    pub fn new(horizon: Time) -> Self {
        BatchConfig { horizon }
    }
}

/// Outcome of one seeded run of a batch.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// The seed that produced this run.
    pub seed: u64,
    /// Events recorded in the trace.
    pub events: usize,
    /// Processes still up at the horizon.
    pub living: usize,
    /// Simulated time the run reached (= the configured horizon).
    pub end_time: Time,
    /// Message counters of the run.
    pub stats: Stats,
}

/// Runs `build(seed)` to the configured horizon for every seed in `seeds`,
/// in order, and collects one [`RunStats`] per run.
///
/// `build` constructs a fresh simulator for each seed — typically a
/// `Builder::new().seed(seed)` plus the scenario's nodes and fault
/// schedule. Each run is a pure function of its seed, so the returned
/// vector is deterministic end to end.
pub fn run_seeds<M, N, F>(seeds: Range<u64>, config: BatchConfig, mut build: F) -> Vec<RunStats>
where
    M: Message,
    N: Node<M>,
    F: FnMut(u64) -> Sim<M, N>,
{
    seeds
        .map(|seed| {
            let mut sim = build(seed);
            sim.run_until(config.horizon);
            RunStats {
                seed,
                events: sim.trace().events.len(),
                living: sim.living().len(),
                end_time: sim.now(),
                stats: sim.stats().clone(),
            }
        })
        .collect()
}

/// Extracts `metric` from every run and summarizes it (min/max/mean and
/// nearest-rank percentiles).
pub fn summarize_runs<F>(runs: &[RunStats], mut metric: F) -> Summary
where
    F: FnMut(&RunStats) -> u64,
{
    let values: Vec<u64> = runs.iter().map(&mut metric).collect();
    Summary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Ctx;
    use crate::Builder;
    use gmp_types::ProcessId;

    #[derive(Clone, Debug)]
    struct Tick;
    impl Message for Tick {
        fn tag(&self) -> &'static str {
            "tick"
        }
    }

    /// Everyone sends one message to the next process at start.
    struct Ring {
        n: u32,
    }
    impl Node<Tick> for Ring {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Tick>) {
            let next = ProcessId((ctx.id().0 + 1) % self.n);
            ctx.send(next, Tick);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Tick>, _: ProcessId, _: Tick) {}
        fn on_timer(&mut self, _: &mut Ctx<'_, Tick>, _: u64) {}
    }

    fn ring(n: u32, seed: u64) -> Sim<Tick, Ring> {
        let mut sim = Builder::new().seed(seed).build();
        for _ in 0..n {
            sim.add_node(Ring { n });
        }
        sim
    }

    #[test]
    fn one_run_stats_per_seed_in_order() {
        let runs = run_seeds(5..13, BatchConfig::new(500), |s| ring(6, s));
        assert_eq!(runs.len(), 8);
        assert_eq!(
            runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            (5..13).collect::<Vec<_>>()
        );
        for r in &runs {
            assert_eq!(r.stats.sends("tick"), 6);
            assert_eq!(r.living, 6);
            assert_eq!(r.end_time, 500);
        }
    }

    #[test]
    fn batch_is_deterministic() {
        let a = run_seeds(0..16, BatchConfig::new(500), |s| ring(4, s));
        let b = run_seeds(0..16, BatchConfig::new(500), |s| ring(4, s));
        let key = |rs: &[RunStats]| -> Vec<(u64, usize)> {
            rs.iter().map(|r| (r.seed, r.events)).collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn summarize_extracts_the_chosen_metric() {
        let runs = run_seeds(0..32, BatchConfig::new(500), |s| ring(5, s));
        let sends = summarize_runs(&runs, |r| r.stats.sends_total());
        assert_eq!(sends.count, 32);
        assert_eq!(
            (sends.min, sends.max),
            (5, 5),
            "ring sends are schedule-independent"
        );
        let events = summarize_runs(&runs, |r| r.events as u64);
        // start + send + recv per process = 3n when everything delivers.
        assert_eq!((events.min, events.max), (15, 15));
    }

    #[test]
    fn empty_seed_range_is_empty() {
        let runs = run_seeds(3..3, BatchConfig::new(100), |s| ring(3, s));
        assert!(runs.is_empty());
        assert_eq!(summarize_runs(&runs, |r| r.events as u64).count, 0);
    }

    #[test]
    fn fault_schedules_apply_per_run() {
        let runs = run_seeds(0..8, BatchConfig::new(500), |s| {
            let mut sim = ring(4, s);
            sim.crash_at(ProcessId(3), 1);
            sim
        });
        for r in &runs {
            assert_eq!(r.living, 3, "seed {}: crash must apply", r.seed);
        }
    }
}
