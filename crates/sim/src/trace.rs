//! Recorded runs: every event of every process history, causally stamped.

use crate::Time;
use gmp_causality::{EventLog, LoggedEvent, Stamp};
use gmp_types::{Note, ProcessId};

/// What happened at one event of a process history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// The unique initial event `start_p` (§2.1).
    Start,
    /// A message send `send(p, to, m)`.
    Send {
        /// Receiver.
        to: ProcessId,
        /// Unique id matching the corresponding `Recv`, if delivered.
        msg_id: u64,
        /// Message kind tag.
        tag: &'static str,
    },
    /// A message reception `recv(from, p, m)`.
    Recv {
        /// Sender.
        from: ProcessId,
        /// Unique id matching the corresponding `Send`.
        msg_id: u64,
        /// Message kind tag.
        tag: &'static str,
    },
    /// A local timer fired.
    Timer {
        /// The tag passed to `set_timer`.
        tag: u64,
    },
    /// The crash event `quit_p` injected by the experiment (§2.1: crashes
    /// are permanent; recovery is modeled as a new process instance).
    Crash,
    /// The process executed `quit` itself (excluded, or lost a majority).
    Quit,
    /// A semantic protocol annotation.
    Note(Note),
}

/// One stamped event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: Time,
    /// The process that executed the event.
    pub pid: ProcessId,
    /// Lamport timestamp.
    pub lamport: u64,
    /// Vector timestamp (dimension = number of processes in the run). A
    /// [`Stamp`] is an `Arc`-shared snapshot, so events whose clocks did not
    /// advance between stamps share one allocation.
    pub vc: Stamp,
    /// The event itself.
    pub kind: TraceKind,
}

/// A recorded run: the n-tuple of process histories (§2.1), flattened in
/// simulation order (which is a linearization consistent with
/// happens-before).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Number of processes in the run.
    pub n: usize,
    /// All events, in simulation order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn new(n: usize) -> Self {
        Trace {
            n,
            events: Vec::new(),
        }
    }

    /// Iterator over all semantic notes, with their event metadata.
    pub fn notes(&self) -> impl Iterator<Item = (&TraceEvent, &Note)> {
        self.events.iter().filter_map(|e| match &e.kind {
            TraceKind::Note(n) => Some((e, n)),
            _ => None,
        })
    }

    /// Iterator over the events of one process, in history order.
    pub fn history(&self, pid: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Converts the run into an [`EventLog`] for happens-before and
    /// consistent-cut queries. Event indices in the log coincide with
    /// indices into [`Trace::events`]. Stamps are `Arc`-shared, so this
    /// copies no clock vectors.
    pub fn to_event_log(&self) -> EventLog {
        let mut log = EventLog::new(self.n);
        for ev in &self.events {
            log.push(LoggedEvent {
                pid: ev.pid,
                vc: ev.vc.clone(),
            });
        }
        log
    }

    /// Renders a human-readable timeline of selected events (used by the
    /// figure-regeneration harness).
    pub fn render<F>(&self, mut select: F) -> String
    where
        F: FnMut(&TraceEvent) -> bool,
    {
        let mut out = String::new();
        for ev in self.events.iter().filter(|e| select(e)) {
            let line = match &ev.kind {
                TraceKind::Start => format!("t={:<6} {}  start", ev.time, ev.pid),
                TraceKind::Send { to, tag, .. } => {
                    format!("t={:<6} {}  send {} -> {}", ev.time, ev.pid, tag, to)
                }
                TraceKind::Recv { from, tag, .. } => {
                    format!("t={:<6} {}  recv {} <- {}", ev.time, ev.pid, tag, from)
                }
                TraceKind::Timer { tag } => format!("t={:<6} {}  timer {}", ev.time, ev.pid, tag),
                TraceKind::Crash => format!("t={:<6} {}  CRASH", ev.time, ev.pid),
                TraceKind::Quit => format!("t={:<6} {}  QUIT", ev.time, ev.pid),
                TraceKind::Note(n) => format!("t={:<6} {}  {}", ev.time, ev.pid, n),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pid: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: 0,
            pid: ProcessId(pid),
            lamport: 1,
            vc: Stamp::zero(2),
            kind,
        }
    }

    #[test]
    fn notes_filtering() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, TraceKind::Start));
        t.events
            .push(ev(0, TraceKind::Note(Note::Custom("x".into()))));
        t.events.push(ev(1, TraceKind::Start));
        assert_eq!(t.notes().count(), 1);
        assert_eq!(t.history(ProcessId(0)).count(), 2);
    }

    #[test]
    fn render_selected() {
        let mut t = Trace::new(1);
        t.events.push(ev(0, TraceKind::Start));
        t.events.push(ev(
            0,
            TraceKind::Send {
                to: ProcessId(1),
                msg_id: 1,
                tag: "x",
            },
        ));
        let s = t.render(|e| matches!(e.kind, TraceKind::Send { .. }));
        assert!(s.contains("send x -> p1"));
        assert!(!s.contains("start"));
    }

    #[test]
    fn event_log_roundtrip() {
        let mut t = Trace::new(2);
        t.events.push(ev(0, TraceKind::Start));
        t.events.push(ev(1, TraceKind::Start));
        let log = t.to_event_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log.processes(), 2);
    }
}
