//! Message accounting for complexity experiments (§7.2), and order
//! statistics for aggregating one metric across a batch of seeded runs.

use std::collections::BTreeMap;

/// Counters over a run, keyed by message tag.
///
/// The benchmarks use these to regenerate the paper's message-complexity
/// tables: a broadcast counts one message per receiver, a process never
/// messages itself, and heartbeats / reports / state transfer are excluded
/// by tag filtering (see `EXPERIMENTS.md` for the counting convention).
///
/// Equality compares every counter, so two runs with equal `Stats` sent,
/// delivered, dropped and held exactly the same per-tag message counts —
/// the comparison the parallel-vs-sequential determinism tests rest on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    sends: BTreeMap<&'static str, u64>,
    delivered: BTreeMap<&'static str, u64>,
    /// Messages addressed to a crashed or quit process.
    pub dropped_dead_receiver: u64,
    /// Messages dropped by a severed link.
    pub dropped_link: u64,
    /// Messages currently held on blocked links or across partitions.
    pub held: u64,
}

impl Stats {
    pub(crate) fn record_send(&mut self, tag: &'static str) {
        *self.sends.entry(tag).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, tag: &'static str) {
        *self.delivered.entry(tag).or_insert(0) += 1;
    }

    /// Number of messages sent with the given tag.
    pub fn sends(&self, tag: &str) -> u64 {
        self.sends.get(tag).copied().unwrap_or(0)
    }

    /// Number of messages delivered with the given tag.
    pub fn delivered(&self, tag: &str) -> u64 {
        self.delivered.get(tag).copied().unwrap_or(0)
    }

    /// Total messages sent across all tags.
    pub fn sends_total(&self) -> u64 {
        self.sends.values().sum()
    }

    /// Sum of send counts over tags accepted by `filter`.
    pub fn sends_matching<F>(&self, mut filter: F) -> u64
    where
        F: FnMut(&str) -> bool,
    {
        self.sends
            .iter()
            .filter(|(t, _)| filter(t))
            .map(|(_, c)| *c)
            .sum()
    }

    /// All (tag, send-count) pairs, sorted by tag.
    pub fn send_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sends.iter().map(|(t, c)| (*t, *c))
    }
}

/// Order statistics of one metric over a batch of runs (see
/// [`run_seeds`](crate::run_seeds)).
///
/// Percentiles use the nearest-rank definition: `p`-th percentile = the
/// smallest value such that at least `p`% of samples are ≤ it. An empty
/// sample yields all-zero statistics with `count == 0`.
///
/// ```
/// use gmp_sim::Summary;
///
/// let s = Summary::of(&[4, 1, 3, 2, 5]);
/// assert_eq!((s.count, s.min, s.max), (5, 1, 5));
/// assert_eq!(s.p50, 3);
/// assert_eq!(s.mean, 3.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl Summary {
    /// Summarizes a sample (order irrelevant).
    pub fn of(values: &[u64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            // Nearest rank: ceil(p/100 * count), 1-based.
            let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut s = Stats::default();
        s.record_send("a");
        s.record_send("a");
        s.record_send("b");
        s.record_delivery("a");
        assert_eq!(s.sends("a"), 2);
        assert_eq!(s.sends("b"), 1);
        assert_eq!(s.sends("c"), 0);
        assert_eq!(s.delivered("a"), 1);
        assert_eq!(s.sends_total(), 3);
        assert_eq!(s.sends_matching(|t| t == "a"), 2);
        let pairs: Vec<_> = s.send_counts().collect();
        assert_eq!(pairs, vec![("a", 2), ("b", 1)]);
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of(&[10, 30, 20, 50, 40]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 50);
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.p50, 30);
        assert_eq!(s.p90, 50);
        assert_eq!(s.p99, 50);
    }

    #[test]
    fn summary_large_sample_percentiles() {
        // 1..=100: nearest-rank percentiles are exact.
        let values: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&values);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.mean, 50.5);
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let one = Summary::of(&[7]);
        assert_eq!((one.min, one.p50, one.p99, one.max), (7, 7, 7, 7));
        assert_eq!(one.count, 1);
        assert_eq!((one.p90, one.mean), (7, 7.0));
    }

    #[test]
    fn summary_two_samples() {
        // Nearest rank at len 2: rank(50) = ceil(1.0) = 1 → the smaller
        // sample; rank(90) = ceil(1.8) = 2 and rank(99) = 2 → the larger.
        let s = Summary::of(&[10, 2]);
        assert_eq!(s.count, 2);
        assert_eq!((s.min, s.max), (2, 10));
        assert_eq!(s.p50, 2);
        assert_eq!((s.p90, s.p99), (10, 10));
        assert_eq!(s.mean, 6.0);
    }

    #[test]
    fn summary_all_equal_inputs() {
        for len in [1usize, 2, 3, 17] {
            let values = vec![42u64; len];
            let s = Summary::of(&values);
            assert_eq!(s.count, len);
            assert_eq!(
                (s.min, s.p50, s.p90, s.p99, s.max),
                (42, 42, 42, 42, 42),
                "len {len}: every order statistic of a constant sample is 42"
            );
            assert_eq!(s.mean, 42.0);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Explicit case budget; failures replay via the per-case seeds
            // recorded in proptest-regressions/.
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// Order statistics are monotone in the percentile for any
            /// sample: min ≤ p50 ≤ p90 ≤ p99 ≤ max (and every one is an
            /// actual sample value, which nearest-rank guarantees).
            #[test]
            fn percentiles_are_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..80)) {
                let s = Summary::of(&values);
                prop_assert_eq!(s.count, values.len());
                prop_assert!(s.min <= s.p50);
                prop_assert!(s.p50 <= s.p90);
                prop_assert!(s.p90 <= s.p99);
                prop_assert!(s.p99 <= s.max);
                prop_assert!(values.contains(&s.p50) && values.contains(&s.p99));
                prop_assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64);
            }
        }
    }
}
