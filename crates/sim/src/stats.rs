//! Message accounting for complexity experiments (§7.2).

use std::collections::BTreeMap;

/// Counters over a run, keyed by message tag.
///
/// The benchmarks use these to regenerate the paper's message-complexity
/// tables: a broadcast counts one message per receiver, a process never
/// messages itself, and heartbeats / reports / state transfer are excluded
/// by tag filtering (see `EXPERIMENTS.md` for the counting convention).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    sends: BTreeMap<&'static str, u64>,
    delivered: BTreeMap<&'static str, u64>,
    /// Messages addressed to a crashed or quit process.
    pub dropped_dead_receiver: u64,
    /// Messages dropped by a severed link.
    pub dropped_link: u64,
    /// Messages currently held on blocked links or across partitions.
    pub held: u64,
}

impl Stats {
    pub(crate) fn record_send(&mut self, tag: &'static str) {
        *self.sends.entry(tag).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, tag: &'static str) {
        *self.delivered.entry(tag).or_insert(0) += 1;
    }

    /// Number of messages sent with the given tag.
    pub fn sends(&self, tag: &str) -> u64 {
        self.sends.get(tag).copied().unwrap_or(0)
    }

    /// Number of messages delivered with the given tag.
    pub fn delivered(&self, tag: &str) -> u64 {
        self.delivered.get(tag).copied().unwrap_or(0)
    }

    /// Total messages sent across all tags.
    pub fn sends_total(&self) -> u64 {
        self.sends.values().sum()
    }

    /// Sum of send counts over tags accepted by `filter`.
    pub fn sends_matching<F>(&self, mut filter: F) -> u64
    where
        F: FnMut(&str) -> bool,
    {
        self.sends
            .iter()
            .filter(|(t, _)| filter(t))
            .map(|(_, c)| *c)
            .sum()
    }

    /// All (tag, send-count) pairs, sorted by tag.
    pub fn send_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.sends.iter().map(|(t, c)| (*t, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut s = Stats::default();
        s.record_send("a");
        s.record_send("a");
        s.record_send("b");
        s.record_delivery("a");
        assert_eq!(s.sends("a"), 2);
        assert_eq!(s.sends("b"), 1);
        assert_eq!(s.sends("c"), 0);
        assert_eq!(s.delivered("a"), 1);
        assert_eq!(s.sends_total(), 3);
        assert_eq!(s.sends_matching(|t| t == "a"), 2);
        let pairs: Vec<_> = s.send_counts().collect();
        assert_eq!(pairs, vec![("a", 2), ("b", 1)]);
    }
}
