//! Integration: the appendix's epistemic analysis evaluated on real
//! protocol runs (experiment A1).

use gmp::props::{check_hindsight, hindsight_holds, knowledge_ladder};
use gmp::protocol::{cluster, ClusterBuilder, Config, JoinConfig};
use gmp::sim::Builder;
use gmp::types::ProcessId;

#[test]
fn equation_4_hindsight_on_sequential_exclusions() {
    // Installing view x implies causally knowing Sys^{x-1} existed.
    let mut sim = cluster(6, 2);
    sim.crash_at(ProcessId(5), 300);
    sim.crash_at(ProcessId(4), 1_500);
    sim.crash_at(ProcessId(3), 3_000);
    sim.run_until(15_000);
    let records = check_hindsight(sim.trace());
    assert!(
        !records.is_empty(),
        "versions >= 2 must have been installed"
    );
    for r in &records {
        assert!(
            r.knows_previous,
            "{} installed v{} without causal knowledge of v{}",
            r.pid,
            r.ver,
            r.ver - 1
        );
    }
}

#[test]
fn hindsight_survives_coordinator_failure() {
    let mut sim = cluster(6, 4);
    sim.crash_at(ProcessId(5), 300);
    sim.crash_at(ProcessId(0), 1_500); // Mgr dies after one exclusion
    sim.run_until(20_000);
    assert!(hindsight_holds(sim.trace()));
}

#[test]
fn knowledge_ladder_reaches_full_depth_in_quiet_runs() {
    // With FIFO channels and sequential commits, each installation of x
    // carries causal knowledge of every earlier view: max depth = x.
    let mut sim = cluster(6, 6);
    sim.crash_at(ProcessId(5), 300);
    sim.crash_at(ProcessId(4), 1_500);
    sim.crash_at(ProcessId(3), 3_000);
    sim.run_until(15_000);
    let rows = knowledge_ladder(sim.trace());
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert_eq!(
            row.max_depth, row.ver,
            "v{}: knowledge should reach the initial view",
            row.ver
        );
    }
}

#[test]
fn ladder_with_joins_counts_joiner_installations() {
    let mut sim = ClusterBuilder::new(4, Config::default())
        .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
        .sim(Builder::new().seed(8))
        .build();
    sim.crash_at(ProcessId(3), 2_000);
    sim.run_until(15_000);
    let rows = knowledge_ladder(sim.trace());
    assert_eq!(rows.len(), 2, "one add + one remove");
    // v1 (the add) is installed by the 4 existing members + the joiner.
    assert_eq!(rows[0].installers, 5, "4 members + the joiner install v1");
    assert!(hindsight_holds(sim.trace()));
}
