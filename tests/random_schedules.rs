//! Property-based end-to-end testing: random seeds, random minority crash
//! sets, random crash times — the GMP safety clauses and convergence must
//! hold on every schedule.

use gmp::props::{check_all, check_safety};
use gmp::protocol::{cluster, cluster_with, ClusterBuilder, Config, JoinConfig};
use gmp::sim::Builder;
use gmp::types::ProcessId;
use proptest::prelude::*;

proptest! {
    // Explicit case budget: each case is a full simulated protocol run, so
    // the budget dominates CI wall-clock; failures are reproducible via the
    // per-case seeds recorded in proptest-regressions/.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any minority subset of a 7-member group may crash at arbitrary
    /// times; the survivors must converge and the full spec must hold.
    #[test]
    fn minority_crashes_converge(
        seed in 0u64..10_000,
        mut victims in proptest::collection::btree_set(1u32..7, 0..=2),
        times in proptest::collection::vec(300u64..2_000, 3),
    ) {
        let mut sim = cluster(7, seed);
        let victim_list: Vec<u32> = victims.iter().copied().collect();
        for (i, v) in victim_list.iter().enumerate() {
            sim.crash_at(ProcessId(*v), times[i % times.len()]);
        }
        sim.run_until(25_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            prop_assert_eq!(m.ver(), victim_list.len() as u64);
            for v in &victim_list {
                prop_assert!(!m.view().contains(ProcessId(*v)));
            }
        }
        victims.clear();
    }

    /// Crashing the coordinator plus a random minority at random times
    /// never violates safety, whatever the interleaving.
    #[test]
    fn mgr_plus_minority_crashes_safe(
        seed in 0u64..10_000,
        extra in 2u32..7,
        t_mgr in 300u64..1_500,
        t_extra in 300u64..2_500,
    ) {
        let mut sim = cluster(7, seed);
        sim.crash_at(ProcessId(0), t_mgr);
        sim.crash_at(ProcessId(extra), t_extra);
        sim.run_until(30_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            prop_assert!(!m.view().contains(ProcessId(0)));
            prop_assert!(!m.view().contains(ProcessId(extra)));
        }
    }

    /// Random partial broadcasts: the coordinator dies after a random
    /// number of sends of a random protocol message kind. Safety must hold
    /// regardless of where the broadcast is cut.
    #[test]
    fn random_partial_broadcast_is_safe(
        seed in 0u64..10_000,
        tag_idx in 0usize..3,
        sends in 1u32..4,
    ) {
        let tag = ["invite", "commit", "reconf-commit"][tag_idx];
        let mut sim = cluster(6, seed);
        sim.crash_at(ProcessId(5), 400);
        sim.crash_after_sends_at(ProcessId(0), 0, Some(tag), sends);
        sim.run_until(25_000);
        check_safety(sim.trace()).assert_ok();
        // Survivors that remain functional share one final view.
        let living = sim.living();
        if let Some((&first, rest)) = living.split_first() {
            let v = sim.node(first).view().clone();
            for &p in rest {
                prop_assert_eq!(sim.node(p).view(), &v);
            }
        }
    }

    /// Random join times interleaved with a random crash stay correct.
    #[test]
    fn random_join_and_crash_interleavings(
        seed in 0u64..10_000,
        join_at in 300u64..2_000,
        crash_at in 300u64..2_000,
        victim in 2u32..5,
    ) {
        let mut sim = ClusterBuilder::new(5, Config::default())
            .joiner(JoinConfig::new(join_at, vec![ProcessId(1)]))
            .sim(Builder::new().seed(seed))
            .build();
        sim.crash_at(ProcessId(victim), crash_at);
        sim.run_until(25_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            prop_assert_eq!(m.ver(), 2);
            prop_assert!(m.view().contains(ProcessId(5)));
            prop_assert!(!m.view().contains(ProcessId(victim)));
        }
    }

    /// Random network delay ranges (including highly skewed ones) never
    /// break safety, only liveness timing.
    #[test]
    fn random_delay_distributions_safe(
        seed in 0u64..10_000,
        dmin in 1u64..10,
        dspan in 0u64..40,
    ) {
        let mut sim = ClusterBuilder::new(5, Config::default())
            .sim(Builder::new().seed(seed).delay(dmin, dmin + dspan))
            .build();
        sim.crash_at(ProcessId(4), 500);
        sim.run_until(30_000);
        check_safety(sim.trace()).assert_ok();
    }

    /// A random spurious suspicion injected at a random member resolves
    /// per GMP-5: suspect or observer leaves, and safety holds.
    #[test]
    fn random_spurious_suspicion_resolves(
        seed in 0u64..10_000,
        observer in 1u32..5,
        suspect in 1u32..5,
        at in 300u64..1_500,
    ) {
        prop_assume!(observer != suspect);
        let mut sim = cluster(5, seed);
        sim.run_until(at);
        sim.node_mut(ProcessId(observer)).inject_suspicion(ProcessId(suspect));
        sim.run_until(25_000);
        check_safety(sim.trace()).assert_ok();
        let a = gmp::props::analyze(sim.trace());
        if let Some(fv) = a.final_system_view() {
            prop_assert!(
                !fv.members.contains(&ProcessId(suspect))
                    || !fv.members.contains(&ProcessId(observer)),
                "GMP-5 unresolved: {:?}", fv.members
            );
        }
    }
}

#[test]
fn uncompressed_random_schedules() {
    for seed in 0..8 {
        let mut sim = cluster_with(6, seed, Config::builder().compression(false).build());
        sim.crash_at(ProcessId(0), 500);
        sim.crash_at(ProcessId(5), 800);
        sim.run_until(25_000);
        check_all(sim.trace()).assert_ok();
    }
}
