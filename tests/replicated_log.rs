//! Integration: the replicated log (`gmp-log`) riding on membership —
//! leader failover, joiner catch-up, exactly-once commits, and the
//! prefix-identity safety gate, across seeds and both engines.

use gmp::log::{AppMsg, LogProc};
use gmp::prelude::*;
use gmp::sim::Sim;
use std::collections::BTreeSet;

/// Committed logs of every living replica, in pid order.
fn survivor_logs(sim: &Sim<AppMsg, LogProc>) -> Vec<Vec<gmp::log::LogCmd>> {
    let mut replicas: Vec<ProcessId> = sim
        .living()
        .into_iter()
        .filter(|&p| sim.node(p).is_replica())
        .collect();
    replicas.sort();
    replicas
        .into_iter()
        .map(|p| sim.node(p).log().committed().to_vec())
        .collect()
}

#[test]
fn leader_crash_fails_over_and_preserves_the_log() {
    for seed in 0..8 {
        let mut sim = log_cluster(5, 3, seed);
        sim.crash_at(ProcessId(0), 2_000);
        sim.run_until(20_000);

        // Safety: survivors' logs never diverge.
        let logs = survivor_logs(&sim);
        assert_eq!(logs.len(), 4, "seed {seed}: a survivor went missing");
        assert!(
            prefix_identical(logs.iter().map(|l| l.as_slice())),
            "seed {seed}: survivor logs diverged"
        );

        // Liveness: the successor took over and kept committing — some
        // command carries the post-exclusion ballot.
        let s = sim.node(ProcessId(1));
        assert!(
            !s.member().view().contains(ProcessId(0)),
            "seed {seed}: dead leader still in the view"
        );
        assert!(
            s.log().ballots().iter().any(|&b| b >= s.member().ver()),
            "seed {seed}: nothing committed under the new leader"
        );

        // Every client got unstuck: progress resumed after the failover.
        for k in 0..3u32 {
            let c = sim.node(ProcessId(5 + k)).client();
            assert!(c.acked() > 0, "seed {seed}: client {k} never acked");
        }
    }
}

#[test]
fn commits_are_exactly_once_under_retries() {
    // Retries and redirects during failover re-send the same command many
    // times; the log must commit each client command at most once.
    let mut sim = log_cluster(5, 4, 11);
    sim.crash_at(ProcessId(0), 2_000);
    sim.run_until(20_000);

    let log = sim.node(ProcessId(1)).log();
    let client_cmds: Vec<_> = log.committed().iter().filter(|c| !c.is_noop()).collect();
    let unique: BTreeSet<_> = client_cmds.iter().collect();
    assert_eq!(
        client_cmds.len(),
        unique.len(),
        "a client command committed twice"
    );

    // And nothing a client saw acknowledged is missing from the log.
    let total_acked: u64 = (0..4u32)
        .map(|k| sim.node(ProcessId(5 + k)).client().acked())
        .sum();
    assert!(
        client_cmds.len() as u64 >= total_acked,
        "fewer committed commands than acknowledgements"
    );
}

#[test]
fn joiner_catches_up_through_state_transfer() {
    // A replica admitted mid-run (§7 join + log `Sync`) must end with a
    // log on the same prefix chain as the founders' — service stays
    // online through membership *and* log reconfiguration.
    let mut sim = LogClusterBuilder::new(4, 2)
        .seed(21)
        .joiner(JoinConfig::new(3_000, vec![ProcessId(1)]))
        .build();
    sim.run_until(20_000);

    let joiner = sim.node(ProcessId(4));
    assert!(
        joiner.member().view().contains(ProcessId(4)),
        "joiner was never admitted"
    );
    let logs = survivor_logs(&sim);
    assert_eq!(logs.len(), 5, "joiner's log not among the survivors'");
    assert!(
        prefix_identical(logs.iter().map(|l| l.as_slice())),
        "joiner's log left the prefix chain"
    );
    assert!(
        joiner.log().committed_ops() > 0,
        "state transfer never reached the joiner"
    );
}

#[test]
fn churn_with_leader_crash_and_joiner_stays_safe() {
    // The hard schedule: the leader dies while a joiner is mid-admission;
    // exclusion, reconfiguration, log recovery and state transfer all
    // overlap. Safety must hold on every sampled seed.
    for seed in 0..6 {
        let mut sim = LogClusterBuilder::new(5, 3)
            .seed(seed)
            .joiner(JoinConfig::new(2_500, vec![ProcessId(1)]))
            .build();
        sim.crash_at(ProcessId(0), 3_000);
        sim.run_until(25_000);

        let logs = survivor_logs(&sim);
        assert!(
            prefix_identical(logs.iter().map(|l| l.as_slice())),
            "seed {seed}: logs diverged under churn"
        );
        let s = sim.node(ProcessId(1));
        assert!(
            s.log().committed_ops() > 0,
            "seed {seed}: no progress under churn"
        );
        assert!(
            !s.member().view().contains(ProcessId(0)),
            "seed {seed}: dead leader never excluded"
        );
    }
}

#[test]
fn new_leader_re_replies_for_recovered_slots() {
    // The lost-reply window: the leader commits a command, broadcasts
    // `Decide`, and dies before the client's `Reply` leaves — with the
    // client's retry timer effectively off, only the new leader's
    // re-reply at recovery completion can unstick it. Regression test:
    // the successor must re-acknowledge every recovered client mark it
    // holds, not just slots it re-proposes.
    let mut sim = LogClusterBuilder::new(5, 1)
        .seed(13)
        .log_config(LogConfig::default().unbatched().retry_after(1_000_000))
        .build();
    // Crash immediately after the first Decide send: one follower learns
    // the commit, the client's Reply is never sent.
    sim.crash_after_sends_at(ProcessId(0), 0, Some("log-decide"), 1);
    sim.run_until(25_000);

    let s = sim.node(ProcessId(1));
    assert!(
        !s.member().view().contains(ProcessId(0)),
        "dead leader never excluded"
    );
    assert!(s.log().committed_ops() >= 1, "the command never committed");
    let logs = survivor_logs(&sim);
    assert!(
        prefix_identical(logs.iter().map(|l| l.as_slice())),
        "survivor logs diverged"
    );
    // The client cannot retry (huge retry_after); its ack must have come
    // from the successor's re-reply.
    let c = sim.node(ProcessId(5)).client();
    assert!(
        c.acked() >= 1,
        "the lost reply was never re-sent by the new leader"
    );
}

#[test]
fn sharded_engine_reproduces_the_log_workload() {
    // The log workload crosses the sharded engine too: same committed
    // logs, same client-visible latencies, at every shard count.
    for seed in [0u64, 7, 42] {
        let build = || {
            let mut sim = log_cluster(5, 3, seed);
            sim.crash_at(ProcessId(0), 2_000);
            sim
        };
        let mut seq = build();
        seq.run_until(15_000);
        let logs = survivor_logs(&seq);
        let lats: Vec<Vec<u64>> = (0..3u32)
            .map(|k| seq.node(ProcessId(5 + k)).client().latencies().to_vec())
            .collect();

        for shards in [2usize, 4] {
            let mut sharded = build();
            sharded.run_until_sharded(15_000, shards);
            assert_eq!(
                survivor_logs(&sharded),
                logs,
                "seed {seed} shards={shards}: committed logs diverged"
            );
            let sharded_lats: Vec<Vec<u64>> = (0..3u32)
                .map(|k| sharded.node(ProcessId(5 + k)).client().latencies().to_vec())
                .collect();
            assert_eq!(
                sharded_lats, lats,
                "seed {seed} shards={shards}: client latencies diverged"
            );
        }
    }
}
