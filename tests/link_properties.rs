//! Property-based verification of the reliable-FIFO link constructions
//! (§3: "a (1-bit) sequence number on each message and an acknowledgement
//! protocol"): under arbitrary loss, duplication and reordering rates, the
//! delivered stream equals the sent stream, exactly once, in order.

use gmp::link::alternating_bit::{self, AbAck, AbFrame};
use gmp::link::go_back_n::{self, GbnAck, GbnFrame};
use gmp::link::raw::{RawChannel, RawConfig};
use gmp::link::ViewBuffer;
use proptest::prelude::*;

proptest! {
    // Explicit case budget: keeps CI runtime bounded, and failures are
    // reproducible via the per-case seeds recorded in proptest-regressions/.
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The alternating-bit protocol delivers the exact payload sequence
    /// whatever the channel does (short of total loss).
    #[test]
    fn alternating_bit_is_reliable_fifo(
        seed in 0u64..10_000,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        len in 1usize..60,
    ) {
        let payloads: Vec<u32> = (0..len as u32).collect();
        let cfg = RawConfig { loss, duplicate: dup, reorder: 0.0 };
        let mut data = RawChannel::new(cfg, seed);
        let mut ack = RawChannel::new(cfg, seed.wrapping_add(1));
        let got = alternating_bit::run_exchange(&payloads, &mut data, &mut ack, 2_000_000);
        prop_assert_eq!(got, payloads);
    }

    /// Go-back-N additionally tolerates reordering.
    #[test]
    fn go_back_n_is_reliable_fifo(
        seed in 0u64..10_000,
        loss in 0.0f64..0.35,
        dup in 0.0f64..0.25,
        reorder in 0.0f64..0.4,
        window in 1usize..12,
        len in 1usize..80,
    ) {
        let payloads: Vec<u32> = (0..len as u32).collect();
        let cfg = RawConfig { loss, duplicate: dup, reorder };
        let mut data = RawChannel::new(cfg, seed);
        let mut ack = RawChannel::new(cfg, seed.wrapping_add(1));
        let got = go_back_n::run_exchange(&payloads, window, &mut data, &mut ack, 3_000_000);
        prop_assert_eq!(got, payloads);
    }

    /// The alternating-bit receiver never delivers the same bit twice in a
    /// row, whatever frame barrage it sees.
    #[test]
    fn ab_receiver_never_double_delivers(frames in proptest::collection::vec((proptest::bool::ANY, 0u8..8), 1..64)) {
        let mut rx = gmp::link::AbReceiver::new();
        let mut last_delivered_bit: Option<bool> = None;
        for (bit, payload) in frames {
            let (delivered, _ack): (Option<u8>, AbAck) = rx.on_frame(AbFrame { bit, payload });
            if delivered.is_some() {
                prop_assert_ne!(Some(bit), last_delivered_bit, "same bit delivered twice");
                last_delivered_bit = Some(bit);
            }
        }
    }

    /// The go-back-N receiver delivers a gapless prefix of sequence
    /// numbers no matter what arrives.
    #[test]
    fn gbn_receiver_delivers_gapless_prefix(seqs in proptest::collection::vec(0u64..20, 1..100)) {
        let mut rx = gmp::link::GbnReceiver::new();
        let mut next_expected = 0u64;
        for seq in seqs {
            let (delivered, ack): (Option<u64>, GbnAck) =
                rx.on_frame(GbnFrame { seq, payload: seq });
            if let Some(p) = delivered {
                prop_assert_eq!(p, next_expected);
                next_expected += 1;
            }
            prop_assert_eq!(ack.next, next_expected);
        }
    }

    /// The view buffer releases every message exactly once, in view order.
    #[test]
    fn view_buffer_releases_exactly_once(
        tags in proptest::collection::vec(0u64..8, 1..40),
    ) {
        let mut buf: ViewBuffer<(u64, usize)> = ViewBuffer::new(0);
        let mut immediate = Vec::new();
        for (i, &v) in tags.iter().enumerate() {
            if let Some(m) = buf.offer(v, (v, i)) {
                immediate.push(m);
            }
        }
        let released = buf.install(8);
        let total = immediate.len() + released.len();
        prop_assert_eq!(total, tags.len(), "every message appears exactly once");
        // Released messages come in view-tag order.
        for w in released.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        prop_assert_eq!(buf.pending(), 0);
    }
}
