//! The [`MemberEvent`] queue contract (`crates/core/src/event.rs`):
//! every event kind is exercised against a golden scenario family —
//! crash-only, join-bearing, sparse-topology, partition — and the event
//! stream of every process is pinned identical between the sequential
//! and sharded engines over proptest-sampled schedules.

use gmp::prelude::*;
use gmp::protocol::{Msg, Sparse};
use gmp::sim::Sim;
use gmp::types::{FaultySource, QuitReason};
use proptest::prelude::*;

/// Drains every process's queue after a finished run, keyed by pid.
fn drain_all(sim: &mut Sim<Msg, Member>) -> Vec<(ProcessId, Vec<MemberEvent>)> {
    let pids: Vec<ProcessId> = (0..sim.trace().n as u32).map(ProcessId).collect();
    pids.into_iter()
        .map(|p| (p, sim.node_mut(p).take_events()))
        .collect()
}

#[test]
fn crash_scenario_emits_the_full_exclusion_arc() {
    let mut sim = cluster(5, 42);
    sim.crash_at(ProcessId(4), 400);
    sim.run_until(10_000);

    for p in sim.living() {
        let events = sim.node_mut(p).take_events();

        // The initial view is announced first, before anything else.
        assert!(
            matches!(
                &events[0],
                MemberEvent::ViewInstalled { ver: 0, members, mgr }
                    if members.len() == 5 && *mgr == ProcessId(0)
            ),
            "{p}: first event is not the initial install: {:?}",
            events[0]
        );

        // Suspicion precedes the exclusion (GMP-1), and the exclusion is
        // immediately followed by its matching install without the victim.
        let suspected = events.iter().position(
            |e| matches!(e, MemberEvent::PeerSuspected { peer, .. } if *peer == ProcessId(4)),
        );
        let excluded = events.iter().position(
            |e| matches!(e, MemberEvent::PeerExcluded { peer, ver: 1 } if *peer == ProcessId(4)),
        );
        let (suspected, excluded) = (
            suspected.unwrap_or_else(|| panic!("{p}: no PeerSuspected for p4")),
            excluded.unwrap_or_else(|| panic!("{p}: no PeerExcluded for p4")),
        );
        assert!(suspected < excluded, "{p}: exclusion before suspicion");
        assert!(
            matches!(
                &events[excluded + 1],
                MemberEvent::ViewInstalled { ver: 1, members, .. }
                    if !members.contains(&ProcessId(4))
            ),
            "{p}: exclusion not followed by its install: {:?}",
            events.get(excluded + 1)
        );

        // The queue drains: a second take is empty.
        assert!(sim.node_mut(p).take_events().is_empty());
    }
}

#[test]
fn join_scenario_welcomes_the_joiner_and_installs_everywhere_else() {
    let mut sim = ClusterBuilder::new(5, Config::default())
        .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
        .sim(Builder::new().seed(3))
        .build();
    sim.run_until(10_000);

    // The joiner's first event is `Welcomed`, taking the place of the
    // initial install, and it carries the joiner itself.
    let joiner = ProcessId(5);
    let events = sim.node_mut(joiner).take_events();
    assert!(
        matches!(
            &events[0],
            MemberEvent::Welcomed { ver, members, .. }
                if *ver >= 1 && members.contains(&joiner)
        ),
        "joiner's first event is not Welcomed: {:?}",
        events.first()
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, MemberEvent::ViewInstalled { ver: 0, .. })),
        "a joiner never sees the founding view"
    );

    // Every original member announces the join as a plain install (an
    // addition excludes no one).
    for p in (0..5).map(ProcessId) {
        let events = sim.node_mut(p).take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                MemberEvent::ViewInstalled { members, .. } if members.contains(&joiner)
            )),
            "{p}: no install carrying the joiner"
        );
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, MemberEvent::PeerExcluded { .. })),
            "{p}: a pure join excluded someone"
        );
    }
}

#[test]
fn sparse_topology_delivers_suspicion_by_relay() {
    // A 4-regular ring of 12: the victim's non-neighbours cannot observe
    // the timeout themselves (F1) — their suspicion events must carry the
    // gossip source (F2), relayed hop by hop across the graph.
    let mut sim = cluster_with(12, 77, Config::builder().topology(Sparse::new(4)).build());
    let victim = ProcessId(11);
    sim.crash_at(victim, 400);
    sim.run_until(15_000);

    let mut observed = 0usize;
    let mut gossiped = 0usize;
    for p in sim.living() {
        let events = sim.node_mut(p).take_events();
        let source = events.iter().find_map(|e| match e {
            MemberEvent::PeerSuspected { peer, source } if *peer == victim => Some(*source),
            _ => None,
        });
        match source.unwrap_or_else(|| panic!("{p}: never suspected the victim")) {
            FaultySource::Observation => observed += 1,
            FaultySource::Gossip => gossiped += 1,
            other => panic!("{p}: unexpected suspicion source {other:?}"),
        }
        assert!(
            events.iter().any(|e| matches!(
                e,
                MemberEvent::PeerExcluded { peer, .. } if *peer == victim
            )),
            "{p}: relay never turned into an exclusion"
        );
    }
    // Ring neighbours observe; everyone else can only have heard gossip.
    assert!(observed >= 1, "no direct observer among the survivors");
    assert!(gossiped >= 1, "no survivor learned by relay");
}

#[test]
fn partitioned_initiators_quit_without_a_majority() {
    // {p0, p1} split from the majority: p0 (the Mgr) keeps initiating and
    // quits when it cannot assemble a majority (§4.3); p1 then suspects
    // the silent p0, initiates itself, and runs out of majority too. Quit
    // is terminal — it is each queue's last event.
    let mut sim = cluster(7, 5);
    let minority = [ProcessId(0), ProcessId(1)];
    let majority: Vec<ProcessId> = (2..7).map(ProcessId).collect();
    sim.partition_at(&[&minority, &majority], 500);
    sim.run_until(25_000);

    for &p in &minority {
        let events = sim.node_mut(p).take_events();
        match events.last() {
            Some(MemberEvent::Quit {
                reason: QuitReason::NoMajority { got, needed },
            }) => {
                assert!(got < needed, "{p}: quit with a majority in hand");
            }
            other => panic!("{p}: last event is not a NoMajority Quit: {other:?}"),
        }
    }

    // The majority excluded both and heard about it as events.
    for &p in &majority {
        let events = sim.node_mut(p).take_events();
        for victim in minority {
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    MemberEvent::PeerExcluded { peer, .. } if *peer == victim
                )),
                "{p}: no exclusion event for {victim}"
            );
        }
    }
}

#[test]
fn slandered_member_quits_excluded_and_the_injection_is_sourced() {
    // A spurious suspicion planted through the `testing` hook: the
    // injector's event carries `FaultySource::Injected`, the group
    // excludes the (perfectly alive) suspect under GMP-5, and the suspect
    // — learning of its own exclusion — emits a terminal `Excluded` quit.
    let mut sim = cluster(5, 13);
    sim.run_until(500);
    sim.node_mut(ProcessId(1)).inject_suspicion(ProcessId(4));
    sim.run_until(12_000);

    let injector = sim.node_mut(ProcessId(1)).take_events();
    assert!(
        injector.iter().any(|e| matches!(
            e,
            MemberEvent::PeerSuspected { peer, source: FaultySource::Injected }
                if *peer == ProcessId(4)
        )),
        "injector's suspicion does not carry the Injected source"
    );

    let suspect = sim.node_mut(ProcessId(4)).take_events();
    assert!(
        matches!(
            suspect.last(),
            Some(MemberEvent::Quit {
                reason: QuitReason::Excluded
            })
        ),
        "slandered member's last event is not an Excluded quit: {:?}",
        suspect.last()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The event stream of every process is a pure function of the run:
    /// the sharded engine replays it element-for-element.
    #[test]
    fn event_streams_identical_sequential_vs_sharded(
        n in 4usize..8,
        seed in 0u64..1_000,
        victim in 1u32..4,
        crash_at in 300u64..1_500,
    ) {
        let build = || {
            let mut sim = cluster(n, seed);
            sim.crash_at(ProcessId(victim), crash_at);
            sim
        };
        let mut seq = build();
        seq.run_until(12_000);
        let reference = drain_all(&mut seq);
        prop_assert!(
            reference.iter().any(|(_, evs)| !evs.is_empty()),
            "run produced no events at all"
        );
        for shards in [2usize, 4] {
            let mut sharded = build();
            sharded.run_until_sharded(12_000, shards);
            prop_assert_eq!(
                drain_all(&mut sharded),
                reference.clone(),
                "shards={}: event stream diverged",
                shards
            );
        }
    }
}
