//! Integration: the join procedure (§7) and its interleavings with
//! failures and coordinator changes.

use gmp::props::{analyze, check_all, check_safety};
use gmp::protocol::{ClusterBuilder, Config, JoinConfig, Lifecycle};
use gmp::sim::Builder;
use gmp::types::ProcessId;

fn joining_cluster(
    n: usize,
    seed: u64,
    joins: &[(u64, u32)], // (ask time, contact)
) -> gmp::sim::Sim<gmp::protocol::Msg, gmp::protocol::Member> {
    let mut b = ClusterBuilder::new(n, Config::default());
    for &(at, contact) in joins {
        b = b.joiner(JoinConfig::new(at, vec![ProcessId(contact)]));
    }
    b.sim(Builder::new().seed(seed)).build()
}

#[test]
fn single_join_across_seeds() {
    for seed in 0..15 {
        let mut sim = joining_cluster(4, seed, &[(500, 1)]);
        sim.run_until(10_000);
        check_all(sim.trace()).assert_ok();
        let joiner = ProcessId(4);
        assert!(
            matches!(sim.node(joiner).lifecycle(), Lifecycle::Active),
            "seed {seed}"
        );
        for p in sim.living() {
            assert!(sim.node(p).view().contains(joiner), "seed {seed} at {p}");
        }
    }
}

#[test]
fn joiner_is_most_junior() {
    let mut sim = joining_cluster(4, 3, &[(500, 2)]);
    sim.run_until(10_000);
    let m = sim.node(ProcessId(0));
    assert_eq!(
        m.view().rank(ProcessId(4)),
        Some(1),
        "joiners enter at rank 1"
    );
    assert_eq!(m.view().rank(ProcessId(0)), Some(5));
}

#[test]
fn concurrent_joins_serialize() {
    let mut sim = joining_cluster(4, 7, &[(500, 1), (510, 2), (520, 3)]);
    sim.run_until(15_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        assert_eq!(sim.node(p).ver(), 3, "three adds, three versions");
        assert_eq!(sim.node(p).view().len(), 7);
    }
}

#[test]
fn join_during_exclusion() {
    let mut sim = joining_cluster(5, 9, &[(450, 1)]);
    sim.crash_at(ProcessId(4), 400);
    sim.run_until(12_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 2);
        assert!(m.view().contains(ProcessId(5)));
        assert!(!m.view().contains(ProcessId(4)));
    }
}

#[test]
fn joiner_whose_welcome_is_lost_retries() {
    // Mgr commits the add but dies before/while welcoming the joiner; any
    // member that already sees the joiner in its view re-welcomes it on the
    // next retry.
    for seed in 0..10 {
        let mut sim = joining_cluster(5, seed, &[(500, 1)]);
        sim.crash_after_sends_at(ProcessId(0), 0, Some("welcome"), 1);
        // (welcome is its own send; crashing after 1 send means the welcome
        // itself went out — instead cut the commit broadcast that follows)
        sim.run_until(20_000);
        check_safety(sim.trace()).assert_ok();
    }
}

#[test]
fn mgr_dies_right_after_committing_the_add() {
    for seed in 0..10 {
        let mut sim = joining_cluster(5, seed, &[(500, 1)]);
        // Die one send into the add's commit broadcast: some members know
        // the joiner, others do not; reconfiguration must reconcile.
        sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);
        sim.run_until(25_000);
        check_safety(sim.trace()).assert_ok();
        let living = sim.living();
        let reference = sim.node(living[0]).view().clone();
        for &p in &living {
            assert_eq!(
                sim.node(p).view(),
                &reference,
                "seed {seed} diverged at {p}"
            );
        }
    }
}

#[test]
fn joiner_crash_after_joining_is_excluded_again() {
    let mut sim = joining_cluster(4, 12, &[(500, 1)]);
    sim.crash_at(ProcessId(4), 3_000);
    sim.run_until(12_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 2, "add then remove");
        assert!(!m.view().contains(ProcessId(4)));
    }
}

#[test]
fn join_request_forwarded_through_non_mgr_contact() {
    // The contact (p3) is not the coordinator: the request must be
    // forwarded to Mgr rather than dropped.
    let mut sim = joining_cluster(4, 14, &[(500, 3)]);
    sim.run_until(10_000);
    check_all(sim.trace()).assert_ok();
    assert!(sim.node(ProcessId(0)).view().contains(ProcessId(4)));
}

#[test]
fn churn_storm_joins_and_failures() {
    let mut b = ClusterBuilder::new(6, Config::default());
    for j in 0..5u64 {
        b = b.joiner(JoinConfig::new(600 + 500 * j, vec![ProcessId(1)]));
    }
    let mut sim = b.sim(Builder::new().seed(77)).build();
    sim.crash_at(ProcessId(5), 900);
    sim.crash_at(ProcessId(4), 1_700);
    sim.crash_at(ProcessId(7), 2_900); // an already-joined newcomer dies
    sim.run_until(25_000);
    check_all(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    assert_eq!(
        a.final_system_view().expect("views exist").ver,
        8,
        "5 joins + 3 exclusions all commit"
    );
}

#[test]
fn view_version_grows_monotonically_per_process() {
    let mut sim = joining_cluster(5, 21, &[(500, 1), (900, 2)]);
    sim.crash_at(ProcessId(4), 1_400);
    sim.run_until(15_000);
    let a = analyze(sim.trace());
    for (pid, views) in &a.views {
        for w in views.windows(2) {
            assert!(w[1].ver == w[0].ver + 1, "{pid} skipped a version");
        }
    }
}

/// Regression for the joining-receiver digest gap (the headline bugfix of
/// the arena PR).
///
/// Heartbeat digests are delta-encoded: a carrier marks the faulty-set
/// snapshot as delivered to a peer the moment the carrying beat is *sent*.
/// A peer that is still `Joining` silently discards heartbeats, so a beat
/// sent during its pre-welcome window was marked delivered yet never
/// arrived — and since the marker is per-epoch, nothing ever re-carried
/// the snapshot. The joiner stayed ignorant of the faulty set until some
/// *later* epoch change (or coordinator traffic) happened to mention it,
/// which in a quiescent group is never.
///
/// The scenario pins the gap without any crash so no exclusion traffic can
/// leak the verdict to the joiner through another channel:
///
/// * the joiner asks at 500 and is added (~525), but the mgr's `Welcome`
///   is dropped, so the joiner stays `Joining` until its retry at 660 is
///   re-welcomed by the contact (~670);
/// * the three carriers p1..p3 get an injected suspicion of p4 at 545;
///   their faulty-reports to the mgr are held by blocked links, so the
///   suspicion never resolves into an exclusion — digests are the *only*
///   channel that can tell the joiner;
/// * the carrying beats at ticks 560..640 all land on the `Joining`
///   joiner and are discarded. Before the fix, those sends marked the
///   epoch delivered and the joiner never learned of p4 at all. With the
///   fix, carriers re-carry the snapshot until the peer is confirmed
///   `Active`, so the first post-welcome beat delivers it.
#[test]
fn joiner_welcomed_mid_suspicion_learns_the_faulty_set_by_digest() {
    use gmp::sim::{BlockMode, TraceKind};
    use gmp::types::{FaultySource, Note};

    let cfg = Config::default();
    for seed in 0..20u64 {
        let mut b = ClusterBuilder::new(5, cfg.clone());
        b = b.joiner(JoinConfig::new(500, vec![ProcessId(1)]).retry_every(160));
        let mut sim = b.sim(Builder::new().seed(seed)).build();
        let joiner = ProcessId(5);
        // Lose the mgr's Welcome (and the commit that follows it): the
        // joiner is in everyone's view but stays Joining until its retry.
        sim.block_link_at(ProcessId(0), joiner, BlockMode::Drop, 0);
        // Hold the carriers' reports so the mgr never starts an exclusion
        // that would hand the joiner the faulty set by Invite/Commit.
        for carrier in [1u32, 2, 3] {
            sim.block_link_at(ProcessId(carrier), ProcessId(0), BlockMode::Hold, 540);
        }
        sim.run_until(545);
        for carrier in [1u32, 2, 3] {
            sim.node_mut(ProcessId(carrier))
                .inject_suspicion(ProcessId(4));
        }
        // Stop before any secondary suspicion (mgr vs the held links at
        // ~760, p4 vs the carriers isolating it at ~860) can muddy the
        // trace: within this horizon digests are the only faulty channel.
        sim.run_until(740);

        assert!(
            matches!(sim.node(joiner).lifecycle(), Lifecycle::Active),
            "seed {seed}: joiner must reach Active via the retried welcome"
        );
        let evs: Vec<_> = sim
            .trace()
            .events
            .iter()
            .filter(|e| e.pid == joiner)
            .collect();
        let welcome = evs
            .iter()
            .find_map(|e| match &e.kind {
                TraceKind::Note(Note::ViewInstalled { .. }) => Some(e.time),
                _ => None,
            })
            .expect("joiner installs a view");
        let first = evs
            .iter()
            .position(|e| matches!(&e.kind, TraceKind::Note(Note::Faulty { .. })))
            .unwrap_or_else(|| {
                panic!("seed {seed}: joiner never learned the faulty set — digest gap")
            });
        let TraceKind::Note(Note::Faulty { suspect, source }) = &evs[first].kind else {
            unreachable!()
        };
        assert_eq!(*suspect, ProcessId(4), "seed {seed}");
        assert_eq!(*source, FaultySource::Gossip, "seed {seed}");
        let carrier_tag = evs[..first].iter().rev().find_map(|e| match &e.kind {
            TraceKind::Recv { tag, .. } => Some(*tag),
            _ => None,
        });
        assert_eq!(
            carrier_tag,
            Some("heartbeat"),
            "seed {seed}: the verdict must arrive by digest, not coordinator traffic"
        );
        assert!(
            evs[first].time <= welcome + 2 * cfg.heartbeat_every,
            "seed {seed}: learned at {} but welcomed at {welcome} — re-carry \
             must deliver within the first beats",
            evs[first].time
        );
        check_safety(sim.trace()).assert_ok();
    }
}
