//! Integration: the join procedure (§7) and its interleavings with
//! failures and coordinator changes.

use gmp::props::{analyze, check_all, check_safety};
use gmp::protocol::{ClusterBuilder, Config, JoinConfig, Lifecycle};
use gmp::sim::Builder;
use gmp::types::ProcessId;

fn joining_cluster(
    n: usize,
    seed: u64,
    joins: &[(u64, u32)], // (ask time, contact)
) -> gmp::sim::Sim<gmp::protocol::Msg, gmp::protocol::Member> {
    let mut b = ClusterBuilder::new(n, Config::default());
    for &(at, contact) in joins {
        b = b.joiner(JoinConfig::new(at, vec![ProcessId(contact)]));
    }
    b.sim(Builder::new().seed(seed)).build()
}

#[test]
fn single_join_across_seeds() {
    for seed in 0..15 {
        let mut sim = joining_cluster(4, seed, &[(500, 1)]);
        sim.run_until(10_000);
        check_all(sim.trace()).assert_ok();
        let joiner = ProcessId(4);
        assert!(
            matches!(sim.node(joiner).lifecycle(), Lifecycle::Active),
            "seed {seed}"
        );
        for p in sim.living() {
            assert!(sim.node(p).view().contains(joiner), "seed {seed} at {p}");
        }
    }
}

#[test]
fn joiner_is_most_junior() {
    let mut sim = joining_cluster(4, 3, &[(500, 2)]);
    sim.run_until(10_000);
    let m = sim.node(ProcessId(0));
    assert_eq!(
        m.view().rank(ProcessId(4)),
        Some(1),
        "joiners enter at rank 1"
    );
    assert_eq!(m.view().rank(ProcessId(0)), Some(5));
}

#[test]
fn concurrent_joins_serialize() {
    let mut sim = joining_cluster(4, 7, &[(500, 1), (510, 2), (520, 3)]);
    sim.run_until(15_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        assert_eq!(sim.node(p).ver(), 3, "three adds, three versions");
        assert_eq!(sim.node(p).view().len(), 7);
    }
}

#[test]
fn join_during_exclusion() {
    let mut sim = joining_cluster(5, 9, &[(450, 1)]);
    sim.crash_at(ProcessId(4), 400);
    sim.run_until(12_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 2);
        assert!(m.view().contains(ProcessId(5)));
        assert!(!m.view().contains(ProcessId(4)));
    }
}

#[test]
fn joiner_whose_welcome_is_lost_retries() {
    // Mgr commits the add but dies before/while welcoming the joiner; any
    // member that already sees the joiner in its view re-welcomes it on the
    // next retry.
    for seed in 0..10 {
        let mut sim = joining_cluster(5, seed, &[(500, 1)]);
        sim.crash_after_sends_at(ProcessId(0), 0, Some("welcome"), 1);
        // (welcome is its own send; crashing after 1 send means the welcome
        // itself went out — instead cut the commit broadcast that follows)
        sim.run_until(20_000);
        check_safety(sim.trace()).assert_ok();
    }
}

#[test]
fn mgr_dies_right_after_committing_the_add() {
    for seed in 0..10 {
        let mut sim = joining_cluster(5, seed, &[(500, 1)]);
        // Die one send into the add's commit broadcast: some members know
        // the joiner, others do not; reconfiguration must reconcile.
        sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);
        sim.run_until(25_000);
        check_safety(sim.trace()).assert_ok();
        let living = sim.living();
        let reference = sim.node(living[0]).view().clone();
        for &p in &living {
            assert_eq!(
                sim.node(p).view(),
                &reference,
                "seed {seed} diverged at {p}"
            );
        }
    }
}

#[test]
fn joiner_crash_after_joining_is_excluded_again() {
    let mut sim = joining_cluster(4, 12, &[(500, 1)]);
    sim.crash_at(ProcessId(4), 3_000);
    sim.run_until(12_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 2, "add then remove");
        assert!(!m.view().contains(ProcessId(4)));
    }
}

#[test]
fn join_request_forwarded_through_non_mgr_contact() {
    // The contact (p3) is not the coordinator: the request must be
    // forwarded to Mgr rather than dropped.
    let mut sim = joining_cluster(4, 14, &[(500, 3)]);
    sim.run_until(10_000);
    check_all(sim.trace()).assert_ok();
    assert!(sim.node(ProcessId(0)).view().contains(ProcessId(4)));
}

#[test]
fn churn_storm_joins_and_failures() {
    let mut b = ClusterBuilder::new(6, Config::default());
    for j in 0..5u64 {
        b = b.joiner(JoinConfig::new(600 + 500 * j, vec![ProcessId(1)]));
    }
    let mut sim = b.sim(Builder::new().seed(77)).build();
    sim.crash_at(ProcessId(5), 900);
    sim.crash_at(ProcessId(4), 1_700);
    sim.crash_at(ProcessId(7), 2_900); // an already-joined newcomer dies
    sim.run_until(25_000);
    check_all(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    assert_eq!(
        a.final_system_view().expect("views exist").ver,
        8,
        "5 joins + 3 exclusions all commit"
    );
}

#[test]
fn view_version_grows_monotonically_per_process() {
    let mut sim = joining_cluster(5, 21, &[(500, 1), (900, 2)]);
    sim.crash_at(ProcessId(4), 1_400);
    sim.run_until(15_000);
    let a = analyze(sim.trace());
    for (pid, views) in &a.views {
        for w in views.windows(2) {
            assert!(w[1].ver == w[0].ver + 1, "{pid} skipped a version");
        }
    }
}
