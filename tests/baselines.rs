//! Integration: the paper's lower-bound counterexamples (§7.3) —
//! the baselines fail exactly where the paper proves they must, and the
//! full protocol survives the identical schedules.

use gmp::baselines::{claim_7_1_run, figure_11_run, FIG11_CAST};
use gmp::props::{analyze, checks, Violation};

#[test]
fn claim_7_1_one_phase_splits_the_group() {
    let sim = claim_7_1_run(1);
    let a = analyze(sim.trace());
    let gmp2 = checks::check_gmp2(&a);
    assert!(!gmp2.is_empty(), "one-phase must diverge under partition");
    // The divergence is exactly the proof's: version 1 exists with two
    // different memberships, one per partition side.
    let v1_conflicts: Vec<_> = gmp2
        .iter()
        .filter(|v| matches!(v, Violation::Gmp2 { ver: 1, .. }))
        .collect();
    assert!(!v1_conflicts.is_empty());
}

#[test]
fn claim_7_1_divergence_is_not_seed_luck() {
    for seed in 1..6 {
        let sim = claim_7_1_run(seed);
        let a = analyze(sim.trace());
        assert!(
            !checks::check_gmp2(&a).is_empty(),
            "seed {seed}: the partition schedule must always diverge"
        );
    }
}

#[test]
fn figure_11_two_phase_misses_the_invisible_commit() {
    let sim = figure_11_run(false, 1);
    let a = analyze(sim.trace());
    let gmp2 = checks::check_gmp2(&a);
    assert!(!gmp2.is_empty(), "two-phase reconfiguration must diverge");
    // The witness w installed remove(Mgr) as v1; the second reconfigurer
    // committed Mgr's stale plan remove(z) instead.
    let cast = FIG11_CAST;
    let v1s = a.memberships_of_ver(1);
    let without_mgr = v1s.iter().any(|v| !v.members.contains(&cast.mgr));
    let without_z = v1s.iter().any(|v| !v.members.contains(&cast.z));
    assert!(
        without_mgr && without_z,
        "both conflicting version-1 views must appear in the trace"
    );
}

#[test]
fn figure_11_three_phase_resolves_identically_to_the_witness() {
    let sim = figure_11_run(true, 1);
    checks::check_safety(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    // Version 1 is unique and equals the invisible commit: remove(Mgr).
    let cast = FIG11_CAST;
    for v in a.memberships_of_ver(1) {
        assert!(
            !v.members.contains(&cast.mgr),
            "v1 must exclude the old Mgr"
        );
        assert!(v.members.contains(&cast.z), "Mgr's stale plan must NOT win");
    }
}

#[test]
fn figure_11_outcome_is_stable_across_seeds() {
    for seed in 1..5 {
        let two = figure_11_run(false, seed);
        let three = figure_11_run(true, seed);
        assert!(
            !checks::check_gmp2(&analyze(two.trace())).is_empty(),
            "seed {seed}: two-phase must diverge"
        );
        checks::check_safety(three.trace()).assert_ok();
    }
}

#[test]
fn full_protocol_survives_the_claim_7_1_schedule() {
    // The same partition schedule, run under the real (three-phase,
    // majority-gated) protocol: the minority blocks instead of diverging.
    use gmp::protocol::cluster;
    use gmp::types::ProcessId;
    let mut sim = cluster(6, 1);
    let s: Vec<ProcessId> = [0u32, 3, 4].map(ProcessId).to_vec();
    let r: Vec<ProcessId> = [1u32, 2, 5].map(ProcessId).to_vec();
    sim.partition_at(&[&s, &r], 50);
    sim.run_until(10_000);
    checks::check_safety(sim.trace()).assert_ok();
}
