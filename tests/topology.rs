//! Topology-layer regression tests (see `crates/core/src/topology.rs`).
//!
//! Two claims are pinned here:
//!
//! 1. **`Flat` is the pre-refactor engine, byte for byte.** Lifting the
//!    hardwired "all other members" loops behind the `Topology` trait is
//!    a pure representation refactor: under the default clique the exact
//!    golden fingerprints recorded *before* the trait existed must
//!    reproduce — through the sequential and the sharded engine alike —
//!    even when the topology is spelled out explicitly.
//! 2. **Sparse graphs still disseminate suspicion.** A `Sparse(k)` ring
//!    member heartbeats only its `k` neighbours, so a suspicion born at
//!    one member must be *relayed* — re-carried by each learner's own
//!    digests — to cross the graph. The proptest below injects the one
//!    suspicion that the protocol never shortcuts (suspecting the
//!    coordinator is never reported point-to-point, because reports go
//!    *to* the coordinator) and bounds how long the ring takes to carry
//!    it to every survivor, for arbitrary `(seed, n, k)`.

use gmp::protocol::{cluster_with, Config, Flat, Sparse};
use gmp::sim::{TraceEvent, TraceKind};
use gmp::types::{Note, ProcessId};
use proptest::prelude::*;

/// Serializes every recorded event, including its causal stamps — equal
/// fingerprints iff the traces are byte-identical (same convention as
/// `tests/determinism.rs`).
fn fingerprint(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            format!(
                "t={} pid={} lamport={} vc={:?} kind={:?}",
                e.time,
                e.pid,
                e.lamport,
                e.vc.as_slice(),
                e.kind
            )
        })
        .collect()
}

/// FNV-1a over the serialized fingerprint, for compact golden pinning.
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The crash-only golden scenario of `tests/determinism.rs`, with the
/// clique topology configured *explicitly* instead of by default.
fn flat_crash_run(n: usize, seed: u64) -> gmp::sim::Sim<gmp::protocol::Msg, gmp::protocol::Member> {
    let mut sim = cluster_with(n, seed, Config::builder().topology(Flat).build());
    sim.crash_at(ProcessId(n as u32 - 1), 400);
    sim.crash_at(ProcessId(1), 900);
    sim
}

/// The pre-refactor golden fingerprints (recorded in PR 3, re-verified in
/// PR 5; see `tests/determinism.rs` for their provenance). The topology
/// refactor must not move a single stamp under `Flat`.
const GOLDEN: [(usize, u64, usize, u64); 3] = [
    (6, 42, 14696, 0x5240_f36d_ee7d_f5d8),
    (5, 7, 8044, 0xde3b_806b_eee6_1872),
    (9, 0xDEAD_BEEF, 46640, 0x1d76_8c0b_f965_d980),
];

#[test]
fn explicit_flat_topology_reproduces_the_pre_refactor_goldens() {
    for (n, seed, events, hash) in GOLDEN {
        let mut sim = flat_crash_run(n, seed);
        sim.run_until(20_000);
        let fp = fingerprint(&sim.trace().events);
        assert_eq!(fp.len(), events, "n={n} seed={seed}: event count drifted");
        assert_eq!(
            fnv1a(&fp),
            hash,
            "n={n} seed={seed}: the topology layer moved a stamp under Flat"
        );
    }
}

#[test]
fn explicit_flat_topology_reproduces_the_goldens_through_the_sharded_engine() {
    for (n, seed, events, hash) in GOLDEN {
        for shards in [1usize, 2, 4] {
            let mut sim = flat_crash_run(n, seed);
            sim.run_until_sharded(20_000, shards);
            let fp = fingerprint(&sim.trace().events);
            assert_eq!(
                fp.len(),
                events,
                "n={n} seed={seed} shards={shards}: event count drifted"
            );
            assert_eq!(
                fnv1a(&fp),
                hash,
                "n={n} seed={seed} shards={shards}: sharded Flat drifted from the golden"
            );
        }
    }
}

/// First time each process noted `Faulty{suspect}`, from the trace.
fn first_faulty_notes(events: &[TraceEvent], suspect: ProcessId) -> Vec<(ProcessId, u64)> {
    let mut firsts: Vec<(ProcessId, u64)> = Vec::new();
    for e in events {
        if let TraceKind::Note(Note::Faulty { suspect: s, .. }) = &e.kind {
            if *s == suspect && !firsts.iter().any(|&(p, _)| p == e.pid) {
                firsts.push((e.pid, e.time));
            }
        }
    }
    firsts
}

proptest! {
    // Each case is a full simulation; the budget keeps the suite seconds-
    // sized while still sweeping (seed, n, k) jointly. Failures replay via
    // proptest-regressions/.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Under `Sparse(k ≥ 2)`, one injected suspicion reaches every
    /// surviving member within a bounded number of relay rounds.
    ///
    /// The injected belief is `Faulty{Mgr}` at the ring's antipode — the
    /// one suspicion with no point-to-point shortcut: it is never
    /// reported (reports go *to* the coordinator), the coordinator is
    /// alive so nobody else's timeout fires, and reconfiguration cannot
    /// start until the belief has been relayed all the way around to the
    /// second-most-senior member. Every hop is a digest re-carry:
    /// learner bumps its gossip epoch, re-publishes to its own `k`
    /// monitors, and the wave advances ⌈k/2⌉ ring positions per
    /// heartbeat interval.
    #[test]
    fn injected_suspicion_reaches_all_survivors_within_bounded_relay_rounds(
        seed in 0u64..10_000,
        n in 5usize..32,
        k in 2usize..8,
    ) {
        let heartbeat = 40u64;
        let mgr = ProcessId(0);
        let injector = ProcessId(n as u32 / 2);
        let mut sim = cluster_with(n, seed, Config::builder().topology(Sparse::new(k)).build());
        sim.run_until(500);
        sim.node_mut(injector).inject_suspicion(mgr);

        // Worst-case ring distance from the injector to any member is
        // ⌈n/2⌉; the wave advances half = ⌈k/2⌉ positions per round (or
        // the graph degenerated to the clique: one round). A generous
        // +10 rounds absorbs the injection landing on the *next* tick,
        // per-hop delivery jitter, and the reconfiguration the belief
        // triggers once it reaches the second-most-senior member (whose
        // commit informs any member the wave has not reached yet).
        let half = k.div_ceil(2);
        let hops = if 2 * half >= n - 1 { 1 } else { n.div_ceil(2).div_ceil(half) };
        let rounds = (hops + 10) as u64;
        sim.run_until(500 + rounds * heartbeat + 1_000);

        let firsts = first_faulty_notes(&sim.trace().events, mgr);
        let t0 = firsts
            .iter()
            .find(|&&(p, _)| p == injector)
            .map(|&(_, t)| t)
            .expect("the injector itself must note the suspicion");
        for p in sim.living() {
            if p == mgr {
                continue; // the spuriously-suspected coordinator quits or is excluded
            }
            let &(_, t) = firsts
                .iter()
                .find(|&&(q, _)| q == p)
                .unwrap_or_else(|| panic!(
                    "n={n} k={k} seed={seed}: survivor {p} never learned Faulty{{{mgr}}}"
                ));
            prop_assert!(
                t <= t0 + rounds * heartbeat,
                "n={n} k={k} seed={seed}: {p} learned at t={t}, \
                 more than {rounds} relay rounds after the injection at t={t0}"
            );
        }
        // The relayed belief must also have *consequences*: the group
        // reconfigures around the suspected coordinator.
        for p in sim.living() {
            if p == mgr {
                continue;
            }
            prop_assert!(
                !sim.node(p).view().contains(mgr),
                "n={n} k={k} seed={seed}: {p} still has the suspected Mgr in its view"
            );
        }
    }
}
