//! Integration: message-complexity conformance with §7.2 (experiments
//! E1–E5 asserted at test-friendly sizes; the full sweeps live in
//! `cargo run -p gmp-bench --bin tables`).

use gmp_bench::{
    e1_exclusion, e2_condensed, e3_reconfiguration, e4_worst_case, e5_symmetric, e7_tolerance,
};

#[test]
fn exclusion_cost_is_exactly_3n_minus_5() {
    for row in e1_exclusion(&[4, 5, 6, 8, 10, 16], 1) {
        assert_eq!(
            row.measured, row.formula,
            "n={}: measured {} != 3n-5 = {}",
            row.n, row.measured, row.formula
        );
    }
}

#[test]
fn reconfiguration_cost_tracks_5n_minus_9() {
    for row in e3_reconfiguration(&[5, 6, 8, 12, 16], 2) {
        let delta = row.measured as i64 - row.formula as i64;
        // Constant counting-convention offset only; never proportional to n.
        assert!(
            (0..=2).contains(&delta),
            "n={}: measured {} vs 5n-9 = {} (delta {})",
            row.n,
            row.measured,
            row.formula,
            delta
        );
    }
}

#[test]
fn condensed_rounds_save_about_half_an_invitation_per_exclusion() {
    for row in e2_condensed(&[8, 12, 16], 3) {
        assert!(row.compressed < row.standard, "n={}", row.n);
        // Paper: standard pays ~n/2 - 1 extra per exclusion. Accept a
        // factor-2 band around that (views shrink during the burst).
        let predicted = row.n as f64 / 2.0 - 1.0;
        assert!(
            row.saved_per_exclusion > predicted * 0.5 && row.saved_per_exclusion < predicted * 3.0,
            "n={}: saved {:.1}/exclusion vs predicted ~{:.1}",
            row.n,
            row.saved_per_exclusion,
            predicted
        );
    }
}

#[test]
fn worst_case_cascade_is_quadratic_not_linear() {
    let rows = e4_worst_case(&[7, 11, 15], 4);
    // messages/n^2 stays within a narrow band while n doubles => O(n^2);
    // a linear protocol would halve it.
    let ratios: Vec<f64> = rows.iter().map(|r| r.per_n_squared).collect();
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 2.0,
        "messages/n² varies too much for a quadratic law: {ratios:?}"
    );
    // And it really grows superlinearly in absolute terms.
    assert!(rows[2].measured > 3 * rows[0].measured);
}

#[test]
fn symmetric_ratio_grows_linearly_with_n() {
    let rows = e5_symmetric(&[8, 16, 32], 5);
    assert!(rows[0].ratio > 2.0);
    assert!(
        rows[1].ratio > rows[0].ratio * 1.5,
        "ratio must grow with n"
    );
    assert!(rows[2].ratio > rows[1].ratio * 1.5);
}

#[test]
fn tolerance_table_matches_paper_bounds() {
    let rows = e7_tolerance(6);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(
            row.recovered,
            "scenario '{}' had the wrong outcome",
            row.scenario
        );
    }
    assert_eq!(
        rows[0].views_committed, 4,
        "basic algorithm removes all n-1"
    );
    assert_eq!(rows[1].views_committed, 2, "minority failures all excluded");
    assert_eq!(rows[2].views_committed, 0, "majority loss blocks");
}
