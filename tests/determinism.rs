//! Replay-determinism regression tests.
//!
//! Everything in `gmp-props` — and every `cc <seed>` regression entry —
//! rests on one guarantee: a run is a pure function of `(n, seed, fault
//! schedule)`. These tests pin that guarantee down at the strongest
//! granularity the trace records: the exact event sequence with event
//! kinds, simulated times, and Lamport/vector stamps.

use gmp::protocol::cluster;
use gmp::sim::{Sim, TraceEvent};
use gmp::types::ProcessId;

/// Serializes every recorded event, including its causal stamps, so two
/// fingerprints are equal iff the traces are byte-identical.
fn fingerprint(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            format!(
                "t={} pid={} lamport={} vc={:?} kind={:?}",
                e.time,
                e.pid,
                e.lamport,
                e.vc.as_slice(),
                e.kind
            )
        })
        .collect()
}

fn run(n: usize, seed: u64) -> Vec<String> {
    let mut sim = cluster(n, seed);
    sim.crash_at(ProcessId(n as u32 - 1), 400);
    sim.crash_at(ProcessId(1), 900);
    sim.run_until(20_000);
    fingerprint(&sim.trace().events)
}

#[test]
fn same_seed_yields_byte_identical_traces() {
    for seed in [0, 1, 42, 0xDEAD_BEEF] {
        let a = run(6, seed);
        let b = run(6, seed);
        assert!(!a.is_empty(), "run produced no events");
        assert_eq!(a, b, "seed {seed}: replay diverged");
    }
}

#[test]
fn same_seed_identical_across_cluster_sizes() {
    for n in [3, 5, 9] {
        let a = run(n, 7);
        let b = run(n, 7);
        assert_eq!(a, b, "n = {n}: replay diverged");
    }
}

#[test]
fn different_seeds_diverge() {
    // Delays are sampled per message, so distinct seeds must produce
    // observably different schedules (times and orderings).
    let a = run(6, 1);
    let b = run(6, 2);
    assert_ne!(a, b, "distinct seeds produced identical traces");
}

#[test]
fn determinism_survives_mid_run_inspection() {
    // Interleaving run_until calls (as tests and tools do) must not change
    // the schedule relative to one uninterrupted run.
    let uninterrupted = run(5, 11);

    let mut sim: Sim<_, _> = cluster(5, 11);
    sim.crash_at(ProcessId(4), 400);
    sim.crash_at(ProcessId(1), 900);
    for t in [300, 450, 1_000, 5_000, 20_000] {
        sim.run_until(t);
        // Observing state mid-run is allowed and must be effect-free.
        let _ = sim.living();
        let _ = sim.stats().sends_total();
    }
    assert_eq!(fingerprint(&sim.trace().events), uninterrupted);
}
