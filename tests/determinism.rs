//! Replay-determinism regression tests.
//!
//! Everything in `gmp-props` — and every `cc <seed>` regression entry —
//! rests on one guarantee: a run is a pure function of `(n, seed, fault
//! schedule)`. These tests pin that guarantee down at the strongest
//! granularity the trace records: the exact event sequence with event
//! kinds, simulated times, and Lamport/vector stamps.

use gmp::causality::VectorClock;
use gmp::protocol::cluster;
use gmp::sim::{run_seeds, run_seeds_parallel, BatchConfig, Sim, TraceEvent, TraceKind};
use gmp::types::ProcessId;
use std::collections::HashMap;
use std::num::NonZeroUsize;

/// Serializes every recorded event, including its causal stamps, so two
/// fingerprints are equal iff the traces are byte-identical.
fn fingerprint(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            format!(
                "t={} pid={} lamport={} vc={:?} kind={:?}",
                e.time,
                e.pid,
                e.lamport,
                e.vc.as_slice(),
                e.kind
            )
        })
        .collect()
}

fn run(n: usize, seed: u64) -> Vec<String> {
    let mut sim = cluster(n, seed);
    sim.crash_at(ProcessId(n as u32 - 1), 400);
    sim.crash_at(ProcessId(1), 900);
    sim.run_until(20_000);
    fingerprint(&sim.trace().events)
}

#[test]
fn same_seed_yields_byte_identical_traces() {
    for seed in [0, 1, 42, 0xDEAD_BEEF] {
        let a = run(6, seed);
        let b = run(6, seed);
        assert!(!a.is_empty(), "run produced no events");
        assert_eq!(a, b, "seed {seed}: replay diverged");
    }
}

#[test]
fn same_seed_identical_across_cluster_sizes() {
    for n in [3, 5, 9] {
        let a = run(n, 7);
        let b = run(n, 7);
        assert_eq!(a, b, "n = {n}: replay diverged");
    }
}

#[test]
fn different_seeds_diverge() {
    // Delays are sampled per message, so distinct seeds must produce
    // observably different schedules (times and orderings).
    let a = run(6, 1);
    let b = run(6, 2);
    assert_ne!(a, b, "distinct seeds produced identical traces");
}

/// FNV-1a over the serialized fingerprint, for compact golden pinning.
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pins the stamped traces against golden fingerprints so that pure
/// *representation* refactors provably change no recorded value.
///
/// The hashes below were recorded on the engine *after* the heartbeat-tick
/// ordering bugfix (suspicions applied before heartbeat targets are chosen
/// — a deliberate behavioral change that retired the pre-PR-2 eager-clone
/// goldens) but *before* the heartbeat fan-out switched from per-recipient
/// `Vec` clones to `Arc`-shared delta digests and the detector's timeout
/// scan moved to a deadline min-heap. Byte-identical fingerprints (times,
/// event kinds, Lamport and vector stamps) prove those two optimizations
/// change how payloads are represented and leases are scanned, never a
/// protocol-visible event.
#[test]
fn traces_are_byte_identical_to_the_per_peer_clone_path() {
    // (n, seed, events, FNV-1a of the fingerprint) — from the post-bugfix,
    // pre-digest engine (PR 3).
    let golden: [(usize, u64, usize, u64); 3] = [
        (6, 42, 14696, 0x5240_f36d_ee7d_f5d8),
        (5, 7, 8044, 0xde3b_806b_eee6_1872),
        (9, 0xDEAD_BEEF, 46640, 0x1d76_8c0b_f965_d980),
    ];
    for (n, seed, events, hash) in golden {
        let fp = run(n, seed);
        assert_eq!(fp.len(), events, "n={n} seed={seed}: event count drifted");
        assert_eq!(fnv1a(&fp), hash, "n={n} seed={seed}: stamped trace drifted");
    }
}

/// Recomputes every vector stamp of a run with plain, eagerly-cloned
/// `VectorClock`s — replaying tick/observe exactly as the engine specifies
/// them per event kind — and checks the copy-on-write stamps match
/// event-for-event. Unlike the golden hashes above, this validates any
/// seed, including the message-reception merge path.
#[test]
fn cow_stamps_equal_eager_recomputation() {
    let mut sim = cluster(6, 1234);
    sim.crash_at(ProcessId(5), 400);
    sim.run_until(10_000);
    let trace = sim.trace();
    let n = trace.n;
    let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::new(n)).collect();
    let mut send_stamps: HashMap<u64, VectorClock> = HashMap::new();
    for (i, ev) in trace.events.iter().enumerate() {
        let p = ev.pid.index();
        match &ev.kind {
            TraceKind::Recv { msg_id, .. } => {
                let send_vc = send_stamps.get(msg_id).expect("recv has a send");
                clocks[p].observe(send_vc);
                clocks[p].tick(p);
            }
            TraceKind::Note(_) => {} // notes stamp without advancing
            _ => clocks[p].tick(p),
        }
        assert_eq!(
            ev.vc.clock(),
            &clocks[p],
            "event {i} ({:?} at {}): cow stamp diverges from eager replay",
            ev.kind,
            ev.pid
        );
        if let TraceKind::Send { msg_id, .. } = ev.kind {
            send_stamps.insert(msg_id, clocks[p].clone());
        }
    }
    assert!(!send_stamps.is_empty(), "run exercised the send/recv path");
}

/// The thread pool must be invisible in sweep output: for the golden
/// cluster scenario (the same `(n, seed, fault schedule)` family the
/// fingerprints above pin), `run_seeds_parallel` at every job count
/// returns the exact `RunStats` vector of the sequential runner —
/// including per-tag message counters, trace lengths and survivors.
/// Worker threads race for *seeds*, never for a run's events.
#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let build = |seed: u64| {
        let mut sim = cluster(6, seed);
        sim.crash_at(ProcessId(5), 400);
        sim.crash_at(ProcessId(1), 900);
        sim
    };
    let config = BatchConfig::new(6_000);
    let sequential = run_seeds(0..10, config, build);
    assert_eq!(sequential.len(), 10);
    for jobs in [1usize, 2, 4, 8] {
        let parallel = run_seeds_parallel(0..10, config, NonZeroUsize::new(jobs), build);
        assert_eq!(
            parallel, sequential,
            "jobs={jobs}: parallel sweep diverged from the sequential runner"
        );
    }
    // And the parallel path replays identically against itself.
    let again = run_seeds_parallel(0..10, config, NonZeroUsize::new(4), build);
    assert_eq!(again, sequential, "parallel sweep is not replayable");
}

#[test]
fn determinism_survives_mid_run_inspection() {
    // Interleaving run_until calls (as tests and tools do) must not change
    // the schedule relative to one uninterrupted run.
    let uninterrupted = run(5, 11);

    let mut sim: Sim<_, _> = cluster(5, 11);
    sim.crash_at(ProcessId(4), 400);
    sim.crash_at(ProcessId(1), 900);
    for t in [300, 450, 1_000, 5_000, 20_000] {
        sim.run_until(t);
        // Observing state mid-run is allowed and must be effect-free.
        let _ = sim.living();
        let _ = sim.stats().sends_total();
    }
    assert_eq!(fingerprint(&sim.trace().events), uninterrupted);
}

/// The intra-run sharded engine must be invisible at golden granularity:
/// every crash-only golden scenario reruns through
/// [`Sim::run_until_sharded`] at shards ∈ {1, 2, 4} and must reproduce the
/// *same* recorded hashes — deliberately no new goldens, because the claim
/// under test is that shard count changes nothing the trace records.
#[test]
fn sharded_reruns_reproduce_the_crash_only_goldens() {
    let golden: [(usize, u64, usize, u64); 3] = [
        (6, 42, 14696, 0x5240_f36d_ee7d_f5d8),
        (5, 7, 8044, 0xde3b_806b_eee6_1872),
        (9, 0xDEAD_BEEF, 46640, 0x1d76_8c0b_f965_d980),
    ];
    for (n, seed, events, hash) in golden {
        for shards in [1usize, 2, 4] {
            let mut sim = cluster(n, seed);
            sim.crash_at(ProcessId(n as u32 - 1), 400);
            sim.crash_at(ProcessId(1), 900);
            sim.run_until_sharded(20_000, shards);
            let fp = fingerprint(&sim.trace().events);
            assert_eq!(
                fp.len(),
                events,
                "n={n} seed={seed} shards={shards}: event count drifted"
            );
            assert_eq!(
                fnv1a(&fp),
                hash,
                "n={n} seed={seed} shards={shards}: sharded trace drifted from the golden"
            );
        }
    }
}

/// Sharded rerun of the join-bearing goldens below: the `Joining` receiver
/// path (buffered coordinator rounds, digest re-carry) crosses shards too.
#[test]
fn sharded_reruns_reproduce_the_join_bearing_goldens() {
    use gmp::protocol::{ClusterBuilder, Config, JoinConfig};
    let golden: [(u64, usize, u64); 2] = [
        (3, 14049, 0x57ce_8337_edd4_bb4f),
        (21, 14051, 0xe388_d53c_14f8_fb08),
    ];
    for (seed, events, hash) in golden {
        for shards in [1usize, 2, 4] {
            let mut sim = ClusterBuilder::new(5, Config::default())
                .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
                .sim(gmp::sim::Builder::new().seed(seed))
                .build();
            sim.crash_at(ProcessId(4), 1_400);
            sim.run_until_sharded(12_000, shards);
            let fp = fingerprint(&sim.trace().events);
            assert_eq!(
                fp.len(),
                events,
                "seed={seed} shards={shards}: event count drifted"
            );
            assert_eq!(
                fnv1a(&fp),
                hash,
                "seed={seed} shards={shards}: sharded trace drifted from the golden"
            );
        }
    }
}

/// Sparse-topology replay: a run on the k-regular monitoring ring (PR 7's
/// topology layer, `gmp::protocol::Sparse`) is as much a pure function of
/// `(n, seed, fault schedule)` as the clique's, with the *relay* path —
/// suspicion crossing the graph by digest re-carry, hop by hop — in
/// play. The CI determinism job double-runs this scenario alongside the
/// flat ones; the sharded rerun must also match, event for event.
#[test]
fn sparse_topology_replays_byte_identical() {
    use gmp::protocol::{cluster_with, Config, Sparse};
    let build = || {
        let mut sim = cluster_with(12, 77, Config::builder().topology(Sparse::new(4)).build());
        sim.crash_at(ProcessId(11), 400);
        sim.crash_at(ProcessId(1), 900);
        sim
    };
    let mut first = build();
    first.run_until(12_000);
    let reference = fingerprint(&first.trace().events);
    assert!(!reference.is_empty(), "run produced no events");

    let mut again = build();
    again.run_until(12_000);
    assert_eq!(
        fingerprint(&again.trace().events),
        reference,
        "sparse-topology replay diverged"
    );

    for shards in [2usize, 4] {
        let mut sharded = build();
        sharded.run_until_sharded(12_000, shards);
        assert_eq!(
            fingerprint(&sharded.trace().events),
            reference,
            "shards={shards}: sharded sparse-topology run diverged from sequential"
        );
    }
}

/// Log-bearing replay: the `gmp-log` workload stacks a second protocol
/// (multipaxos phase 2) and a client population on top of membership in
/// the same simulator — `Ctx::embedded` sub-contexts, wrapped messages,
/// two timer namespaces. A run must stay a pure function of `(topology,
/// seed, fault schedule)` with all of that in play, and the sharded
/// engine must reproduce it event for event. The CI determinism job
/// double-runs this scenario alongside the membership-only ones.
#[test]
fn log_workload_replays_byte_identical() {
    use gmp::log::{LogClusterBuilder, LogConfig};
    let build = || {
        // Pinned to the unbatched trim: this scenario documents the
        // legacy per-slot wire path (PR 9); the batched path has its own
        // scenario below.
        let mut sim = LogClusterBuilder::new(5, 3)
            .seed(2024)
            .log_config(LogConfig::default().unbatched())
            .build();
        sim.crash_at(ProcessId(0), 2_000);
        sim
    };
    let mut first = build();
    first.run_until(15_000);
    let reference = fingerprint(&first.trace().events);
    assert!(!reference.is_empty(), "run produced no events");

    let mut again = build();
    again.run_until(15_000);
    assert_eq!(
        fingerprint(&again.trace().events),
        reference,
        "log-workload replay diverged"
    );

    for shards in [2usize, 4] {
        let mut sharded = build();
        sharded.run_until_sharded(15_000, shards);
        assert_eq!(
            fingerprint(&sharded.trace().events),
            reference,
            "shards={shards}: sharded log-workload run diverged from sequential"
        );
    }
}

/// Batched companion to the scenario above: the same crash schedule with
/// leader batching (`AcceptBatch` + the 1-tick flush timer), client
/// pipelining and a small compaction budget all active — the three
/// mechanisms the unbatched trim never exercises. Replay and the sharded
/// engine must reproduce it event for event; the CI determinism job
/// double-runs this scenario too.
#[test]
fn batched_log_workload_replays_byte_identical() {
    use gmp::log::{LogClusterBuilder, LogConfig};
    let build = || {
        let mut sim = LogClusterBuilder::new(5, 3)
            .seed(2024)
            .log_config(LogConfig::default().batch(8).window(4).compact_keep(256))
            .build();
        sim.crash_at(ProcessId(0), 2_000);
        sim
    };
    let mut first = build();
    first.run_until(15_000);
    let reference = fingerprint(&first.trace().events);
    assert!(!reference.is_empty(), "run produced no events");
    // The flush timer and the compactor must both have been in play,
    // or this scenario pins less than it claims.
    assert!(
        first.node(ProcessId(1)).log().floor() > 0,
        "the run never compacted"
    );

    let mut again = build();
    again.run_until(15_000);
    assert_eq!(
        fingerprint(&again.trace().events),
        reference,
        "batched log-workload replay diverged"
    );

    for shards in [2usize, 4] {
        let mut sharded = build();
        sharded.run_until_sharded(15_000, shards);
        assert_eq!(
            fingerprint(&sharded.trace().events),
            reference,
            "shards={shards}: sharded batched log run diverged from sequential"
        );
    }
}

/// A join-bearing companion to the goldens above. The crash-only goldens
/// cannot exercise the `Joining` receiver path, so this scenario — one
/// §7 join racing one exclusion — pins the digest re-carry decision
/// (snapshots are marked delivered only to peers confirmed `Active`) and
/// the joining-side buffering of coordinator rounds. Recorded on the
/// engine that closed the joining-receiver digest gap (PR 5); the three
/// crash-only goldens above were re-verified byte-identical on the same
/// engine, proving the fix touches only runs with joiners in flight.
#[test]
fn join_bearing_traces_match_the_digest_gap_fix_goldens() {
    use gmp::protocol::{ClusterBuilder, Config, JoinConfig};
    let golden: [(u64, usize, u64); 2] = [
        (3, 14049, 0x57ce_8337_edd4_bb4f),
        (21, 14051, 0xe388_d53c_14f8_fb08),
    ];
    for (seed, events, hash) in golden {
        let mut sim = ClusterBuilder::new(5, Config::default())
            .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
            .sim(gmp::sim::Builder::new().seed(seed))
            .build();
        sim.crash_at(ProcessId(4), 1_400);
        sim.run_until(12_000);
        let fp = fingerprint(&sim.trace().events);
        assert_eq!(fp.len(), events, "seed={seed}: event count drifted");
        assert_eq!(fnv1a(&fp), hash, "seed={seed}: stamped trace drifted");
    }
}
