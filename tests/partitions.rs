//! Integration: partitions and degraded links. In the model a partition is
//! indistinguishable from unbounded delay, so messages are held, not lost.

use gmp::props::{analyze, check_safety};
use gmp::protocol::{cluster, cluster_with, Config};
use gmp::sim::BlockMode;
use gmp::types::ProcessId;

#[test]
fn majority_side_progresses_minority_blocks() {
    for seed in 0..10 {
        let mut sim = cluster(7, seed);
        let minority = [ProcessId(0), ProcessId(1)];
        let majority: Vec<ProcessId> = (2..7).map(ProcessId).collect();
        sim.partition_at(&[&minority, &majority], 500);
        sim.run_until(25_000);
        check_safety(sim.trace()).assert_ok();
        // Majority view: exactly the majority members.
        for &p in &majority {
            if sim.status(p).is_up() {
                let m = sim.node(p);
                assert_eq!(m.view().len(), 5, "seed {seed} at {p}: {}", m.view());
            }
        }
        // Minority never installs anything.
        for &p in &minority {
            if sim.status(p).is_up() {
                assert_eq!(sim.node(p).ver(), 0, "seed {seed}: minority progressed");
            }
        }
    }
}

#[test]
fn even_split_blocks_both_sides() {
    // 3|3: neither side holds a μ(6) = 4 majority; no view may commit.
    let mut sim = cluster(6, 3);
    let a = [ProcessId(0), ProcessId(1), ProcessId(2)];
    let b = [ProcessId(3), ProcessId(4), ProcessId(5)];
    sim.partition_at(&[&a, &b], 500);
    sim.run_until(25_000);
    check_safety(sim.trace()).assert_ok();
    let analysis = analyze(sim.trace());
    assert_eq!(
        analysis.final_system_view().map(|v| v.ver).unwrap_or(0),
        0,
        "an even split must not commit any view"
    );
}

#[test]
fn partition_heal_after_exclusion_isolates_stragglers() {
    // The majority excludes the minority; when the network heals, the
    // minority's processes are already isolated (S1) and their messages
    // are discarded — they never re-enter (GMP-4).
    let mut sim = cluster(7, 5);
    let minority = [ProcessId(5), ProcessId(6)];
    let majority: Vec<ProcessId> = (0..5).map(ProcessId).collect();
    sim.partition_at(&[&majority, &minority], 500);
    sim.heal_at(5_000);
    sim.run_until(25_000);
    check_safety(sim.trace()).assert_ok();
    for &p in &majority {
        if sim.status(p).is_up() {
            let m = sim.node(p);
            assert!(!m.view().contains(ProcessId(5)));
            assert!(!m.view().contains(ProcessId(6)));
        }
    }
    let a = analyze(sim.trace());
    // GMP-4 is part of safety, but assert explicitly: nobody re-admitted
    // the stragglers under their old identity.
    for (pid, views) in &a.views {
        if majority.contains(pid) {
            let last = views.last().expect("views exist");
            assert!(!last.members.contains(&ProcessId(5)));
        }
    }
}

#[test]
fn flaky_link_triggers_spurious_exclusion_but_stays_safe() {
    // §2.2: a transient event prevents a live process from being heard;
    // it is excluded (perceived failure) even though it never crashed.
    let mut sim = cluster(5, 8);
    for other in 0..4u32 {
        sim.block_link_at(ProcessId(4), ProcessId(other), BlockMode::Hold, 500);
    }
    sim.run_until(20_000);
    check_safety(sim.trace()).assert_ok();
    for p in sim.living() {
        if p != ProcessId(4) {
            assert!(
                !sim.node(p).view().contains(ProcessId(4)),
                "the silenced member must be excluded at {p}"
            );
        }
    }
}

#[test]
fn slow_link_within_timeout_causes_no_exclusion() {
    let mut sim = cluster_with(5, 9, Config::builder().timing(40, 400).build());
    // Delays well under the suspicion timeout: annoying but harmless.
    sim.set_link_delay_at(ProcessId(3), ProcessId(0), Some((60, 120)), 500);
    sim.set_link_delay_at(ProcessId(0), ProcessId(3), Some((60, 120)), 500);
    sim.run_until(20_000);
    check_safety(sim.trace()).assert_ok();
    for p in sim.living() {
        assert_eq!(sim.node(p).ver(), 0, "no exclusion expected at {p}");
    }
    assert_eq!(sim.living().len(), 5);
}

#[test]
fn one_way_link_failure_resolves_by_gmp5() {
    // p2 can send to p0 but never hears it: asymmetric suspicion. GMP-5
    // forces one of them out; safety holds throughout.
    let mut sim = cluster(5, 11);
    sim.block_link_at(ProcessId(0), ProcessId(2), BlockMode::Hold, 500);
    sim.run_until(25_000);
    check_safety(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    let fv = a.final_system_view().expect("views exist");
    assert!(
        !fv.members.contains(&ProcessId(0)) || !fv.members.contains(&ProcessId(2)),
        "one of the two ends must leave: {:?}",
        fv.members
    );
}
