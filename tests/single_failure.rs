//! Integration: single and multiple member failures under the full
//! algorithm, checked against the complete GMP specification.

use gmp::props::{analyze, check_all};
use gmp::protocol::{cluster, cluster_with, Config};
use gmp::types::ProcessId;

#[test]
fn one_member_crash_converges_across_seeds() {
    for seed in 0..20 {
        let mut sim = cluster(5, seed);
        sim.crash_at(ProcessId(3), 400);
        sim.run_until(10_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            assert_eq!(m.ver(), 1, "seed {seed}, process {p}");
            assert!(!m.view().contains(ProcessId(3)));
        }
    }
}

#[test]
fn two_overlapping_crashes() {
    for seed in 0..10 {
        let mut sim = cluster(7, seed);
        // The second crash lands while the first exclusion is in flight.
        sim.crash_at(ProcessId(5), 400);
        sim.crash_at(ProcessId(6), 430);
        sim.run_until(12_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            assert_eq!(sim.node(p).ver(), 2, "seed {seed} at {p}");
            assert_eq!(sim.node(p).view().len(), 5);
        }
    }
}

#[test]
fn simultaneous_burst_of_crashes() {
    let mut sim = cluster(9, 3);
    for k in 5..9 {
        sim.crash_at(ProcessId(k), 400); // 4 of 9: still a minority
    }
    sim.run_until(20_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        assert_eq!(sim.node(p).view().len(), 5);
        assert_eq!(sim.node(p).ver(), 4);
    }
}

#[test]
fn exclusions_commit_in_a_single_total_order() {
    let mut sim = cluster(6, 11);
    sim.crash_at(ProcessId(4), 400);
    sim.crash_at(ProcessId(5), 1_500);
    sim.run_until(12_000);
    let a = analyze(sim.trace());
    // Every process that applied ops applied them in the same order.
    let mut orders: Vec<Vec<String>> = Vec::new();
    for p in sim.living() {
        let ops: Vec<String> = a
            .applied
            .iter()
            .filter(|r| r.pid == p)
            .map(|r| r.op.to_string())
            .collect();
        orders.push(ops);
    }
    for w in orders.windows(2) {
        assert_eq!(w[0], w[1], "operation orders diverge");
    }
}

#[test]
fn quiescent_group_stays_at_version_zero() {
    let mut sim = cluster(5, 4);
    sim.run_until(10_000);
    check_all(sim.trace()).assert_ok();
    for p in sim.living() {
        assert_eq!(sim.node(p).ver(), 0);
        assert_eq!(sim.node(p).view().len(), 5);
    }
    assert_eq!(sim.living().len(), 5, "nobody quits in a quiet run");
}

#[test]
fn without_compression_is_equally_safe() {
    for seed in 0..5 {
        let mut sim = cluster_with(6, seed, Config::builder().compression(false).build());
        sim.crash_at(ProcessId(4), 400);
        sim.crash_at(ProcessId(5), 420);
        sim.run_until(12_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            assert_eq!(sim.node(p).ver(), 2, "seed {seed}");
        }
    }
}

#[test]
fn basic_algorithm_tolerates_all_but_mgr() {
    // §3.1: with an immortal Mgr the protocol tolerates |Memb|-1 failures.
    let mut sim = cluster_with(6, 9, Config::builder().mgr_majority(false).build());
    for k in 1..6 {
        sim.crash_at(ProcessId(k), 300 + 500 * k as u64);
    }
    sim.run_until(30_000);
    let m = sim.node(ProcessId(0));
    assert_eq!(m.ver(), 5);
    assert_eq!(m.view().len(), 1);
    check_all(sim.trace()).assert_ok();
}

#[test]
fn slandered_member_is_excluded_not_the_group() {
    // A spurious suspicion (degraded link, §2.2) leads to the suspect's
    // exclusion via GMP-5 — the group itself stays consistent.
    let mut sim = cluster(5, 13);
    sim.run_until(500);
    sim.node_mut(ProcessId(1)).inject_suspicion(ProcessId(4));
    sim.run_until(12_000);
    check_all(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    let fv = a.final_system_view().expect("views exist");
    assert!(
        !fv.members.contains(&ProcessId(4)) || !fv.members.contains(&ProcessId(1)),
        "GMP-5: suspect or observer must leave; final = {:?}",
        fv.members
    );
}
