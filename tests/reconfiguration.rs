//! Integration: coordinator failures and the three-phase reconfiguration
//! algorithm, including partial broadcasts and cascades of dying
//! initiators.

use gmp::props::{analyze, check_all, check_safety};
use gmp::protocol::cluster;
use gmp::types::{Note, ProcessId};

#[test]
fn idle_mgr_crash_is_replaced_by_next_in_rank() {
    for seed in 0..15 {
        let mut sim = cluster(5, seed);
        sim.crash_at(ProcessId(0), 400);
        sim.run_until(12_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            assert_eq!(
                m.mgr(),
                ProcessId(1),
                "seed {seed}: successor is next in rank"
            );
            assert_eq!(m.ver(), 1);
            assert!(!m.view().contains(ProcessId(0)));
        }
    }
}

#[test]
fn mgr_crash_mid_invite_broadcast() {
    for seed in 0..10 {
        let mut sim = cluster(6, seed);
        sim.crash_at(ProcessId(5), 400);
        // Mgr dies after inviting only two processes: nobody commits v1 on
        // Mgr's authority; the reconfigurer must still exclude both.
        sim.crash_after_sends_at(ProcessId(0), 0, Some("invite"), 2);
        sim.run_until(20_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            assert!(!m.view().contains(ProcessId(0)), "seed {seed}");
            assert!(!m.view().contains(ProcessId(5)), "seed {seed}");
        }
    }
}

#[test]
fn mgr_crash_mid_commit_broadcast_every_cut_point() {
    // Figure 3 at every possible partial-broadcast length.
    for sends in 1..=3u32 {
        for seed in 0..5 {
            let mut sim = cluster(5, seed);
            sim.crash_at(ProcessId(4), 400);
            sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), sends);
            sim.run_until(20_000);
            check_all(sim.trace()).assert_ok();
            let living = sim.living();
            assert!(!living.is_empty());
            for &p in &living {
                let m = sim.node(p);
                assert!(
                    !m.view().contains(ProcessId(0)),
                    "sends={sends} seed={seed}"
                );
                assert!(
                    !m.view().contains(ProcessId(4)),
                    "sends={sends} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn cascade_mgr_then_successor() {
    for seed in 0..10 {
        let mut sim = cluster(7, seed);
        sim.crash_at(ProcessId(0), 400);
        sim.crash_at(ProcessId(1), 1_800); // the fresh successor dies too
        sim.run_until(25_000);
        check_all(sim.trace()).assert_ok();
        for p in sim.living() {
            let m = sim.node(p);
            assert_eq!(m.mgr(), ProcessId(2), "seed {seed}");
            assert_eq!(m.view().len(), 5);
        }
    }
}

#[test]
fn initiator_dies_mid_reconfiguration_commit() {
    // E4's building block: the successor itself dies one send into its
    // reconfiguration commit; the next initiator must detect the possibly
    // invisible commit and stay consistent.
    for seed in 0..10 {
        let mut sim = cluster(7, seed);
        sim.crash_at(ProcessId(0), 400);
        sim.crash_after_sends_at(ProcessId(1), 0, Some("reconf-commit"), 1);
        sim.run_until(30_000);
        check_safety(sim.trace()).assert_ok();
        let living = sim.living();
        for &p in &living {
            let m = sim.node(p);
            assert!(!m.view().contains(ProcessId(0)), "seed {seed}");
            assert!(!m.view().contains(ProcessId(1)), "seed {seed}");
        }
        // All survivors share one view.
        let v0 = sim.node(living[0]).view().clone();
        for &p in &living {
            assert_eq!(sim.node(p).view(), &v0, "seed {seed}");
        }
    }
}

#[test]
fn deep_cascade_of_dying_initiators() {
    // Three successive initiators die mid-commit before one succeeds.
    let mut sim = cluster(9, 5);
    sim.crash_at(ProcessId(0), 400);
    for k in 1..=3u32 {
        sim.crash_after_sends_at(ProcessId(k), 0, Some("reconf-commit"), 1);
    }
    sim.run_until(60_000);
    check_safety(sim.trace()).assert_ok();
    let living = sim.living();
    assert!(living.len() >= 5, "majority must survive: {living:?}");
    for &p in &living {
        let m = sim.node(p);
        assert_eq!(m.mgr(), ProcessId(4), "p4 finally succeeds");
        for dead in 0..4u32 {
            assert!(!m.view().contains(ProcessId(dead)));
        }
    }
}

#[test]
fn old_mgr_in_flight_plan_is_honoured() {
    // Mgr dies after fully inviting an exclusion but before any commit:
    // its proposal is visible in the respondents' `next` lists and must be
    // propagated by the reconfigurer (Determine, |ProposalsForVer| = 1).
    for seed in 0..10 {
        let mut sim = cluster(6, seed);
        sim.crash_at(ProcessId(5), 400);
        sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);
        sim.run_until(25_000);
        check_all(sim.trace()).assert_ok();
        // Both the original target and the dead Mgr are out.
        for p in sim.living() {
            let m = sim.node(p);
            assert!(
                !m.view().contains(ProcessId(5)),
                "seed {seed}: plan dropped"
            );
            assert!(!m.view().contains(ProcessId(0)), "seed {seed}");
        }
    }
}

#[test]
fn straggler_behind_two_partial_commits_catches_up() {
    // Regression for the Determine catch-up rule: after two successive
    // initiators die one commit-send in, one witness is ahead of the pack
    // while stragglers missed everything. The next proposal must cover the
    // gap from the slowest respondent or the group stalls with a member
    // that can never acknowledge an invitation again.
    for seed in 0..10 {
        let mut sim = cluster(9, seed);
        sim.crash_at(ProcessId(0), 400);
        sim.crash_after_sends_at(ProcessId(1), 0, Some("reconf-commit"), 1);
        sim.crash_after_sends_at(ProcessId(2), 0, Some("reconf-commit"), 1);
        sim.run_until(60_000);
        check_safety(sim.trace()).assert_ok();
        let living = sim.living();
        assert!(living.len() >= 5, "seed {seed}: majority must survive");
        let reference = sim.node(living[0]).view().clone();
        let ref_ver = sim.node(living[0]).ver();
        for &p in &living {
            assert_eq!(sim.node(p).view(), &reference, "seed {seed}: {p} diverged");
            assert_eq!(
                sim.node(p).ver(),
                ref_ver,
                "seed {seed}: {p} stalled behind"
            );
        }
        for dead in 0..3u32 {
            assert!(!reference.contains(ProcessId(dead)), "seed {seed}");
        }
    }
}

#[test]
fn majority_loss_blocks_without_divergence() {
    let mut sim = cluster(7, 8);
    for k in 2..7 {
        sim.crash_at(ProcessId(k), 400); // 5 of 7 die: no majority remains
    }
    sim.run_until(30_000);
    check_safety(sim.trace()).assert_ok();
    let a = analyze(sim.trace());
    assert!(
        a.final_system_view().map(|v| v.ver).unwrap_or(0) == 0,
        "no view can commit without a majority"
    );
}

#[test]
fn interrogated_senior_quits() {
    // Fig. 10: a process receiving an interrogation from a lower-ranked
    // initiator learns it is in HiFaulty(initiator) and quits.
    let mut sim = cluster(5, 21);
    // p1 falsely suspects p0 (and will initiate once it alone outranks it).
    sim.run_until(400);
    sim.node_mut(ProcessId(1)).inject_suspicion(ProcessId(0));
    sim.run_until(15_000);
    check_safety(sim.trace()).assert_ok();
    // p0 was slandered; GMP-5 resolves it: p0 or p1 is out.
    let a = analyze(sim.trace());
    let fv = a.final_system_view().expect("views exist");
    assert!(
        !fv.members.contains(&ProcessId(0)) || !fv.members.contains(&ProcessId(1)),
        "final view {:?}",
        fv.members
    );
    // If p0 received the interrogation it must have quit (not crashed).
    let p0_quit = a.quit.contains(&ProcessId(0));
    let p0_excluded = !fv.members.contains(&ProcessId(0));
    assert!(p0_quit == p0_excluded || !p0_excluded);
}

#[test]
fn reconfiguration_emits_became_mgr_exactly_once_per_success() {
    let mut sim = cluster(5, 30);
    sim.crash_at(ProcessId(0), 400);
    sim.run_until(12_000);
    let winners: Vec<ProcessId> = sim
        .trace()
        .notes()
        .filter(|(_, n)| matches!(n, Note::BecameMgr { ver } if *ver > 0))
        .map(|(e, _)| e.pid)
        .collect();
    assert_eq!(winners, vec![ProcessId(1)]);
}
