//! Property-based tests on the core data structures and decision
//! procedures: view algebra, clock laws, and `Determine` invariants.

use gmp::causality::VectorClock;
use gmp::protocol::{determine, proposals_for_ver, PhaseOneResp};
use gmp::types::{majority_of, NextEntry, Op, ProcessId, View};
use proptest::prelude::*;

fn arb_view(max: u32) -> impl Strategy<Value = View> {
    proptest::collection::btree_set(0..max, 1..(max as usize))
        .prop_map(|ids| View::new(ids.into_iter().map(ProcessId).collect()))
}

proptest! {
    // Explicit case budget: keeps CI runtime bounded, and failures are
    // reproducible via the per-case seeds recorded in proptest-regressions/.
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Rank is a bijection onto 1..=n with the most senior at n.
    #[test]
    fn rank_is_bijective(view in arb_view(24)) {
        let n = view.len();
        let mut seen = std::collections::BTreeSet::new();
        for p in view.iter() {
            let r = view.rank(p).expect("member has a rank");
            prop_assert!(r >= 1 && r <= n);
            prop_assert!(seen.insert(r), "duplicate rank");
        }
        prop_assert_eq!(view.most_senior().and_then(|p| view.rank(p)), Some(n));
    }

    /// Removing any member preserves the relative order of the rest
    /// ("their ranking relative to each other will not change", §4.2).
    #[test]
    fn removal_preserves_relative_order(view in arb_view(24), idx in 0usize..24) {
        prop_assume!(view.len() >= 2);
        let victim = view.as_slice()[idx % view.len()];
        let before: Vec<ProcessId> = view.iter().filter(|&p| p != victim).collect();
        let mut after = view.clone();
        prop_assert!(after.remove(victim));
        prop_assert_eq!(after.as_slice(), &before[..]);
    }

    /// Majorities of a view and its successor (one member added or
    /// removed) always intersect — Prop. 7.1 on concrete views.
    #[test]
    fn neighbouring_view_majorities_intersect(view in arb_view(24), add in 24u32..48) {
        let n = view.len();
        let mut grown = view.clone();
        prop_assert!(grown.push_junior(ProcessId(add)));
        prop_assert!(majority_of(n) + majority_of(n + 1) > n + 1);
        // Concrete check: any μ(n)-subset of `view` and μ(n+1)-subset of
        // `grown` must share a member, because view ⊂ grown.
        let mu_a = view.majority();
        let mu_b = grown.majority();
        prop_assert!(mu_a + mu_b > grown.len());
    }

    /// Vector clock comparison is a partial order consistent with message
    /// chains.
    #[test]
    fn vector_clock_partial_order(
        ticks_a in proptest::collection::vec(0u64..5, 4),
        ticks_b in proptest::collection::vec(0u64..5, 4),
    ) {
        let mut a = VectorClock::new(4);
        let mut b = VectorClock::new(4);
        for (i, &t) in ticks_a.iter().enumerate() {
            for _ in 0..t { a.tick(i); }
        }
        for (i, &t) in ticks_b.iter().enumerate() {
            for _ in 0..t { b.tick(i); }
        }
        // Antisymmetry.
        if a.happened_before(&b) {
            prop_assert!(!b.happened_before(&a));
        }
        // observe() produces an upper bound.
        let mut c = a.clone();
        c.observe(&b);
        prop_assert!(a.le(&c));
        prop_assert!(b.le(&c));
    }

    /// `Determine` never proposes a version that would make any respondent
    /// skip a view (Prop. 5.3 / GMP-3), and the proposal always covers the
    /// gap from the slowest respondent.
    #[test]
    fn determine_never_skips(
        my_ver in 1u64..5,
        ahead in proptest::bool::ANY,
        behind in proptest::bool::ANY,
    ) {
        let view = View::new((0..6).map(ProcessId).collect());
        let committed: Vec<Op> = (0..10).map(|i| Op::remove(ProcessId(40 + i))).collect();
        let me = PhaseOneResp {
            from: ProcessId(1),
            ver: my_ver,
            seq: committed[..my_ver as usize].to_vec(),
            next: vec![],
        };
        let mut others = Vec::new();
        if ahead {
            others.push(PhaseOneResp {
                from: ProcessId(2),
                ver: my_ver + 1,
                seq: committed[..(my_ver + 1) as usize].to_vec(),
                next: vec![],
            });
        }
        if behind {
            others.push(PhaseOneResp {
                from: ProcessId(3),
                ver: my_ver - 1,
                seq: committed[..(my_ver - 1) as usize].to_vec(),
                next: vec![],
            });
        }
        let d = determine(&me, &others, &view, ProcessId(0), &[]);
        // The proposed version is at most one past the fastest respondent.
        let vmax = others.iter().map(|r| r.ver).chain([my_ver]).max().unwrap();
        prop_assert!(d.v <= vmax + 1, "proposal skips: v={} vmax={}", d.v, vmax);
        prop_assert!(d.v >= my_ver, "proposal regresses");
        // The ops cover exactly versions (v - rl.len(), v].
        prop_assert!(!d.rl.is_empty());
        prop_assert!(d.v as usize >= d.rl.len());
        // Slowest respondent can apply the proposal without skipping.
        let vmin = others.iter().map(|r| r.ver).chain([my_ver]).min().unwrap();
        prop_assert!(d.v as usize - d.rl.len() <= vmin as usize);
    }

    /// `ProposalsForVer` finds exactly the concrete entries for the asked
    /// version, never placeholders.
    #[test]
    fn proposals_ignore_placeholders_and_other_versions(
        ver in 1u64..6,
        n_placeholders in 0usize..4,
        n_concrete in 0usize..4,
    ) {
        let mut next = Vec::new();
        for i in 0..n_placeholders {
            next.push(NextEntry::placeholder(ProcessId(i as u32)));
        }
        for i in 0..n_concrete {
            next.push(NextEntry::concrete(
                vec![Op::remove(ProcessId(30 + i as u32))],
                ProcessId(i as u32),
                ver,
            ));
        }
        // An entry for a *different* version never shows up.
        next.push(NextEntry::concrete(vec![Op::remove(ProcessId(99))], ProcessId(9), ver + 1));
        let resp = [PhaseOneResp { from: ProcessId(0), ver: 0, seq: vec![], next }];
        let props = proposals_for_ver(&resp, ver);
        prop_assert_eq!(props.len(), n_concrete);
        prop_assert!(props.iter().all(|p| p.ops[0].target != ProcessId(99)));
    }
}
