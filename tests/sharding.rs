//! Shard-equivalence harness for the intra-run sharded engine.
//!
//! `Sim::run_until_sharded` promises output **byte-identical** to the
//! single-threaded `run_until` for every shard count. This suite pins that
//! promise three ways on the real protocol:
//!
//! 1. golden FNV-1a fingerprints at shards ∈ {1, 2, 4, 8} on the
//!    crash-only and join-bearing scenarios — the *same* hashes the
//!    single-thread engine recorded in `tests/determinism.rs`, never new
//!    ones;
//! 2. event-for-event trace comparison (with stamps), plus statistics and
//!    liveness, against a fresh sequential run of the same scenario;
//! 3. a property test over arbitrary `(seed, n, horizon, shards)`
//!    combinations, including a mid-run engine switch.

use gmp::protocol::{cluster, ClusterBuilder, Config, JoinConfig};
use gmp::sim::{Builder, Message, Node, Sim, TraceEvent};
use gmp::types::ProcessId;
use proptest::prelude::*;

/// Serializes every recorded event, including its causal stamps, so two
/// fingerprints are equal iff the traces are byte-identical.
fn fingerprint(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            format!(
                "t={} pid={} lamport={} vc={:?} kind={:?}",
                e.time,
                e.pid,
                e.lamport,
                e.vc.as_slice(),
                e.kind
            )
        })
        .collect()
}

/// FNV-1a over the serialized fingerprint, for compact golden pinning.
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a run makes observable: stamped trace, statistics, and
/// per-process liveness.
fn observables<M: Message, N: Node<M>>(
    sim: &Sim<M, N>,
) -> (Vec<String>, gmp::sim::Stats, Vec<bool>) {
    let statuses = (0..sim.n())
        .map(|i| sim.status(ProcessId(i as u32)).is_up())
        .collect();
    (
        fingerprint(&sim.trace().events),
        sim.stats().clone(),
        statuses,
    )
}

/// The crash-only golden scenario of `tests/determinism.rs`, byte-for-byte.
fn crash_scenario(n: usize, seed: u64) -> Sim<gmp::protocol::Msg, gmp::protocol::Member> {
    let mut sim = cluster(n, seed);
    sim.crash_at(ProcessId(n as u32 - 1), 400);
    sim.crash_at(ProcessId(1), 900);
    sim
}

/// The join-bearing golden scenario of `tests/determinism.rs`.
fn join_scenario(seed: u64) -> Sim<gmp::protocol::Msg, gmp::protocol::Member> {
    let mut sim = ClusterBuilder::new(5, Config::default())
        .joiner(JoinConfig::new(500, vec![ProcessId(1)]))
        .sim(Builder::new().seed(seed))
        .build();
    sim.crash_at(ProcessId(4), 1_400);
    sim
}

/// Golden fingerprints at shards ∈ {1, 2, 4, 8} for the crash-only
/// scenarios: the hashes are the single-thread goldens recorded in
/// `tests/determinism.rs` — the whole point is that shard count changes
/// no recorded byte.
#[test]
fn crash_only_goldens_hold_at_every_shard_count() {
    let golden: [(usize, u64, usize, u64); 3] = [
        (6, 42, 14696, 0x5240_f36d_ee7d_f5d8),
        (5, 7, 8044, 0xde3b_806b_eee6_1872),
        (9, 0xDEAD_BEEF, 46640, 0x1d76_8c0b_f965_d980),
    ];
    for (n, seed, events, hash) in golden {
        for shards in [1usize, 2, 4, 8] {
            let mut sim = crash_scenario(n, seed);
            sim.run_until_sharded(20_000, shards);
            let fp = fingerprint(&sim.trace().events);
            assert_eq!(
                fp.len(),
                events,
                "n={n} seed={seed} shards={shards}: event count drifted"
            );
            assert_eq!(
                fnv1a(&fp),
                hash,
                "n={n} seed={seed} shards={shards}: sharded trace drifted"
            );
        }
    }
}

/// Golden fingerprints at shards ∈ {1, 2, 4, 8} for the join-bearing
/// scenarios (the `Joining` buffering and digest re-carry paths cross
/// shard boundaries too).
#[test]
fn join_bearing_goldens_hold_at_every_shard_count() {
    let golden: [(u64, usize, u64); 2] = [
        (3, 14049, 0x57ce_8337_edd4_bb4f),
        (21, 14051, 0xe388_d53c_14f8_fb08),
    ];
    for (seed, events, hash) in golden {
        for shards in [1usize, 2, 4, 8] {
            let mut sim = join_scenario(seed);
            sim.run_until_sharded(12_000, shards);
            let fp = fingerprint(&sim.trace().events);
            assert_eq!(
                fp.len(),
                events,
                "seed={seed} shards={shards}: event count drifted"
            );
            assert_eq!(
                fnv1a(&fp),
                hash,
                "seed={seed} shards={shards}: sharded trace drifted"
            );
        }
    }
}

/// Event-for-event comparison — sharper failure reporting than the hashes:
/// the first diverging event is named, with full stamps.
#[test]
fn sharded_runs_equal_sequential_event_for_event() {
    let mut reference = crash_scenario(6, 42);
    reference.run_until(20_000);
    let (want_fp, want_stats, want_up) = observables(&reference);
    for shards in [1usize, 2, 4, 8] {
        let mut sim = crash_scenario(6, 42);
        sim.run_until_sharded(20_000, shards);
        let (fp, stats, up) = observables(&sim);
        for (i, (got, want)) in fp.iter().zip(want_fp.iter()).enumerate() {
            assert_eq!(got, want, "shards={shards}: first divergence at event {i}");
        }
        assert_eq!(fp.len(), want_fp.len(), "shards={shards}: event count");
        assert_eq!(stats, want_stats, "shards={shards}: statistics diverged");
        assert_eq!(up, want_up, "shards={shards}: liveness diverged");
    }
}

/// Statistics equality includes the dead-receiver and held/dropped
/// counters, which exercise the shard-side status check and the bounced
/// held-message path.
#[test]
fn sharded_statistics_match_under_partitions() {
    let build = || {
        let mut sim = crash_scenario(6, 7);
        sim.partition_at(
            &[
                &[ProcessId(0), ProcessId(1), ProcessId(2)],
                &[ProcessId(3), ProcessId(4), ProcessId(5)],
            ],
            1_000,
        );
        sim.heal_at(2_500);
        sim
    };
    let mut reference = build();
    reference.run_until(8_000);
    let want = observables(&reference);
    assert!(
        want.1.dropped_dead_receiver > 0,
        "scenario must exercise dead receivers"
    );
    for shards in [1usize, 2, 4, 8] {
        let mut sim = build();
        sim.run_until_sharded(8_000, shards);
        assert_eq!(observables(&sim), want, "shards={shards}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For arbitrary (seed, n, horizon, shards): the sharded trace equals
    /// the single-shard trace event-for-event, with statistics and
    /// liveness.
    #[test]
    fn sharded_trace_equals_single_shard_trace(
        seed in 0u64..1_000_000,
        n in 3usize..8,
        horizon in 500u64..4_000,
        shards in 1usize..9,
    ) {
        let crash_pid = ProcessId((seed % n as u64) as u32);
        let build = || {
            let mut sim = cluster(n, seed);
            sim.crash_at(crash_pid, horizon / 2);
            sim
        };
        let mut reference = build();
        reference.run_until(horizon);
        let want = observables(&reference);
        let mut sim = build();
        sim.run_until_sharded(horizon, shards);
        let got = observables(&sim);
        prop_assert_eq!(got, want, "n={} seed={} horizon={} shards={}", n, seed, horizon, shards);
    }

    /// Switching engines mid-run — sequential segment, then sharded, then
    /// sequential again — is equally invisible: resumability is part of
    /// the API contract.
    #[test]
    fn engine_switches_mid_run_are_invisible(
        seed in 0u64..1_000_000,
        n in 3usize..7,
        split in 300u64..1_500,
        shards in 2usize..7,
    ) {
        let horizon = 3_000;
        let build = || {
            let mut sim = cluster(n, seed);
            sim.crash_at(ProcessId(n as u32 - 1), 700);
            sim
        };
        let mut reference = build();
        reference.run_until(horizon);
        let want = observables(&reference);
        let mut sim = build();
        sim.run_until(split);
        sim.run_until_sharded(split + 800, shards);
        sim.run_until(horizon);
        let got = observables(&sim);
        prop_assert_eq!(got, want, "n={} seed={} split={} shards={}", n, seed, split, shards);
    }
}
