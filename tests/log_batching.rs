//! Integration: the batched/pipelined log hot path (`AcceptBatch` /
//! `AcceptOkRange` / `DecideBatch`, client pipeline windows, snapshot
//! compaction) against the unbatched per-slot baseline — safety across
//! the knob space, exactly-once replies, sharded-engine equality,
//! bounded hot state on long runs, and O(tail) joiner catch-up.

use gmp::log::{AppMsg, LogCmd, LogProc};
use gmp::prelude::*;
use gmp::sim::Sim;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn build(
    replicas: usize,
    clients: usize,
    seed: u64,
    lc: LogConfig,
    join_at: Option<u64>,
) -> Sim<AppMsg, LogProc> {
    let mut b = LogClusterBuilder::new(replicas, clients)
        .seed(seed)
        .log_config(lc);
    if let Some(at) = join_at {
        b = b.joiner(JoinConfig::new(at, vec![ProcessId(1)]));
    }
    b.build()
}

/// Committed logs of every living replica, in pid order.
fn replica_logs(sim: &Sim<AppMsg, LogProc>) -> Vec<Vec<LogCmd>> {
    let mut pids: Vec<ProcessId> = sim
        .living()
        .into_iter()
        .filter(|&p| sim.node(p).is_replica())
        .collect();
    pids.sort();
    pids.into_iter()
        .map(|p| sim.node(p).log().committed().to_vec())
        .collect()
}

/// Per-client committed seqs, in slot order, from the longest log.
fn per_client_seqs(logs: &[Vec<LogCmd>]) -> BTreeMap<ProcessId, Vec<u64>> {
    let longest = logs.iter().max_by_key(|l| l.len()).expect("some replica");
    let mut seqs: BTreeMap<ProcessId, Vec<u64>> = BTreeMap::new();
    for c in longest.iter().filter(|c| !c.is_noop()) {
        seqs.entry(c.client).or_default().push(c.seq);
    }
    seqs
}

proptest! {
    // Each case runs the workload twice (sequential + sharded), so keep
    // the sampled space small; failures replay from proptest-regressions/.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Across the whole (seed, n, batch, window) knob space: replica
    /// logs stay prefix-identical, every client's committed commands are
    /// a gapless in-order prefix of its issue stream (exactly-once, no
    /// reordering), no client acks more than committed, and the sharded
    /// engine reproduces the sequential run byte for byte.
    #[test]
    fn batched_log_safe_across_knob_space(
        seed in 0u64..500,
        n in 3usize..=5,
        batch in 1usize..=16,
        window in 1usize..=8,
    ) {
        let clients = 2usize;
        let horizon = 6_000u64;
        let lc = LogConfig::default()
            .batch(batch)
            .window(window)
            .max_inflight(batch.max(8));
        let mut seq = build(n, clients, seed, lc.clone(), None);
        seq.run_until(horizon);

        let logs = replica_logs(&seq);
        prop_assert!(
            prefix_identical(logs.iter().map(|l| l.as_slice())),
            "replica logs diverged"
        );
        for (client, seqs) in per_client_seqs(&logs) {
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            prop_assert_eq!(
                &seqs, &expect,
                "client {:?} committed out of order or more than once", client
            );
        }
        let lats: Vec<Vec<u64>> = (0..clients as u32)
            .map(|k| sim_client(&seq, n, k).latencies().to_vec())
            .collect();
        for (k, l) in lats.iter().enumerate() {
            let committed = logs
                .iter()
                .map(|log| {
                    log.iter()
                        .filter(|c| c.client == ProcessId((n + k) as u32))
                        .count()
                })
                .max()
                .unwrap_or(0);
            prop_assert!(
                l.len() <= committed,
                "client {k} acked {} but only {committed} committed", l.len()
            );
        }

        let mut sharded = build(n, clients, seed, lc, None);
        sharded.run_until_sharded(horizon, 2);
        prop_assert_eq!(replica_logs(&sharded), logs, "sharded logs diverged");
        let sharded_lats: Vec<Vec<u64>> = (0..clients as u32)
            .map(|k| sim_client(&sharded, n, k).latencies().to_vec())
            .collect();
        prop_assert_eq!(sharded_lats, lats, "sharded client acks diverged");
    }
}

fn sim_client(sim: &Sim<AppMsg, LogProc>, replicas: usize, k: u32) -> &gmp::log::Client {
    sim.node(ProcessId(replicas as u32 + k)).client()
}

#[test]
fn pipelining_multiplies_committed_throughput() {
    // The tentpole's headline: at the same horizon and offered-load
    // interval, a pipelined window must commit at least twice what the
    // strict closed loop does (the E15 CI gate, pinned in tier-1 too).
    let horizon = 10_000;
    let mut base = build(5, 4, 3, LogConfig::default().unbatched(), None);
    base.run_until(horizon);
    let mut piped = build(5, 4, 3, LogConfig::default().batch(8).window(4), None);
    piped.run_until(horizon);

    let unbatched = base.node(ProcessId(1)).log().committed_ops();
    let batched = piped.node(ProcessId(1)).log().committed_ops();
    assert!(unbatched > 0, "the baseline committed nothing");
    assert!(
        batched >= 2 * unbatched,
        "pipelined run committed {batched} ops, needs >= 2x the baseline's {unbatched}"
    );
}

#[test]
fn hot_state_stays_bounded_on_long_runs() {
    // With compaction on, the per-slot maps (`accepted`, `parked`,
    // `by_cmd`) and the per-client marks must stay flat no matter how
    // long the run: everything below the floor is summarized, and the
    // floor chases the applied length. Without pruning, by_cmd alone
    // would hold one entry per committed command (thousands here).
    let keep = 64usize;
    let clients = 2usize;
    let lc = LogConfig::default().batch(8).window(4).compact_keep(keep);
    let mut sim = build(3, clients, 9, lc, None);
    sim.run_until(20_000);

    for pid in (0..3u32).map(ProcessId) {
        let log = sim.node(pid).log();
        assert!(
            log.logical_len() > 4 * keep as u64,
            "{pid:?}: run too short to exercise compaction"
        );
        assert!(log.floor() > 0, "{pid:?}: floor never advanced");
        let (accepted, parked, by_cmd, hwm) = log.hot_sizes();
        let bound = 2 * keep + 64;
        assert!(accepted <= bound, "{pid:?}: accepted grew to {accepted}");
        assert!(parked <= bound, "{pid:?}: parked grew to {parked}");
        assert!(by_cmd <= bound, "{pid:?}: by_cmd grew to {by_cmd}");
        assert_eq!(hwm, clients, "{pid:?}: per-client marks leaked");
    }
}

#[test]
fn joiner_sync_ships_snapshot_plus_tail_not_the_log() {
    // Once the donors have compacted past slot 0, a late joiner's
    // catch-up must be snapshot + O(tail) — bounded by the compaction
    // budget — rather than a replay of the whole log.
    let keep = 64usize;
    let lc = LogConfig::default().batch(8).window(4).compact_keep(keep);
    let mut sim = build(4, 2, 21, lc, Some(6_000));
    sim.run_until(14_000);

    let joiner = sim.node(ProcessId(4));
    assert!(
        joiner.member().view().contains(ProcessId(4)),
        "joiner was never admitted"
    );
    let (snapshot, tail) = joiner
        .log()
        .last_sync()
        .expect("the joiner never received a SyncOk");
    assert!(
        snapshot,
        "the joiner replayed the log instead of a snapshot"
    );
    assert!(
        tail <= 2 * keep as u64 + 64,
        "SyncOk tail {tail} exceeds the compaction budget {keep}"
    );
    assert!(
        joiner.log().base() > 0,
        "the joiner's vectors start at slot 0 — whole-prefix transfer"
    );
    let donor_len = sim.node(ProcessId(1)).log().logical_len();
    assert!(
        donor_len >= 4 * tail.max(1),
        "payload is not O(tail): {tail} entries for a {donor_len}-slot log"
    );
    assert!(
        joiner.log().committed_ops() > 0,
        "the joiner never applied its tail"
    );

    // Base-aware agreement: the joiner holds [base, len), founders hold
    // [0, len); every shared slot range must match.
    assert!(
        logs_agree((0..5u32).map(ProcessId).map(|p| {
            let l = sim.node(p).log();
            (l.base(), l.committed())
        })),
        "a replica disagreed on a shared slot range"
    );
}
