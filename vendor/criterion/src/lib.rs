//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of criterion the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion`] with `sample_size`, benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], and a
//! [`Bencher`] whose `iter` measures wall-clock time.
//!
//! Statistics are deliberately simple — mean and min/max over the sample
//! set, printed to stdout — sufficient for coarse regression eyeballing; a
//! real criterion can be dropped in unchanged once the build has network
//! access.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark identified by a plain name within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; measures the routine under test.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_benchmark<F>(label: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // One warm-up call, then `samples` timed samples of one iteration each:
    // every workspace benchmark is a full deterministic protocol run, so
    // per-iteration cost is large and multi-iteration batching is unneeded.
    let mut warmup = Bencher {
        elapsed_ns: 0,
        iters: 1,
    };
    f(&mut warmup);

    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed_ns: 0,
            iters: 1,
        };
        f(&mut b);
        times.push(b.elapsed_ns);
    }
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    let min = times.iter().min().copied().unwrap_or(0);
    let max = times.iter().max().copied().unwrap_or(0);
    println!(
        "bench {label:<40} {:>12} ns/iter (min {min}, max {max}, {} samples)",
        mean,
        times.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's two forms:
/// a plain list of targets, or `name = ..; config = ..; targets = ..`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function("plain", |b| b.iter(|| ()));
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default().sample_size(3);
        quick(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = quick
    }

    criterion_group!(simple_benches, quick);

    #[test]
    fn group_macros_expand_and_run() {
        benches();
        simple_benches();
    }
}
