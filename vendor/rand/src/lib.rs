//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a seedable
//! small PRNG ([`rngs::SmallRng`], implemented as xoshiro256++ seeded via
//! SplitMix64, the same construction real `rand` uses on 64-bit targets),
//! the [`SeedableRng`] entry point, and the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`. Determinism — equal seeds, equal streams — is
//! the property the simulator relies on; statistical quality beyond that is
//! best-effort.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible RNGs from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds yield equal
    /// output streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start + (self.end - self.start) * unit as $t;
                // Rounding (e.g. a power-of-two span with the maximal 53-bit
                // fraction) can land exactly on the excluded upper bound;
                // clamp to the largest representable value below `end`.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
            fn is_empty_range(&self) -> bool {
                // NaN endpoints compare as incomparable and yield "empty".
                self.start.partial_cmp(&self.end) != Some(std::cmp::Ordering::Less)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable, reproducible generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1_000_000), b.gen_range(0u64..=1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1 << 60)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_range_never_returns_excluded_upper_bound() {
        // A generator emitting the maximal 53-bit fraction: without the
        // clamp, 1.0..3.0 would round up to exactly 3.0 (ties-to-even on a
        // power-of-two span).
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let v: f64 = rng.gen_range(1.0f64..3.0);
        assert!(v < 3.0, "sampled the excluded upper bound: {v}");
        let w: f32 = rng.gen_range(1.0f32..3.0);
        assert!(w < 3.0, "sampled the excluded upper bound: {w}");
        // Adjacent-float range: the clamp must not undershoot `start`.
        let lo = 1.0f64;
        let hi = lo.next_up();
        let x: f64 = rng.gen_range(lo..hi);
        assert_eq!(x, lo);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }
}
