//! Offline vendored subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! exactly the slice of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`](strategy::Strategy) with `prop_map`, integer/float range
//!   strategies, tuple strategies, [`collection::vec`],
//!   [`collection::btree_set`] and [`bool::ANY`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`,
//! * [`ProptestConfig`](test_runner::ProptestConfig) with a `cases` budget,
//! * failure persistence: every case runs from its own 64-bit seed; a
//!   panicking case appends `cc <seed>` to
//!   `$CARGO_MANIFEST_DIR/proptest-regressions/<test-path>.txt` (mirroring
//!   upstream's regression files), and recorded seeds are replayed before
//!   fresh cases on the next run.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the standard assertion message plus its reproduction seed.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::path::PathBuf;

    /// Marker returned (via `Err`) when `prop_assume!` rejects a case.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// Execution budget for one `proptest!` function.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
        /// Upper bound on cases rejected by `prop_assume!` before the run
        /// stops early rather than spinning.
        pub max_global_rejects: u32,
        /// Whether failing case seeds are recorded in (and replayed from)
        /// `proptest-regressions/`.
        pub failure_persistence: bool,
    }

    impl ProptestConfig {
        /// A config running `cases` cases with the default reject budget.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
                failure_persistence: true,
            }
        }
    }

    /// Deterministic per-case RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// RNG reproducing exactly the case identified by `seed`.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Base seed for a test function: an FNV-1a hash of its path, XORed
    /// with the decimal `PROPTEST_SEED` environment variable when present,
    /// so a whole run can be re-randomized without losing reproducibility.
    pub fn base_seed(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(v) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = v.parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        h
    }

    /// Seed of the `case`-th case of a run with the given base seed
    /// (SplitMix64 over the pair, so neighbouring cases are uncorrelated).
    pub fn case_seed(base: u64, case: u32) -> u64 {
        let mut z = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Location of the regression file for `test_path`, under the crate
    /// being tested.
    pub fn regression_file(test_path: &str) -> PathBuf {
        let dir = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        let name: String = test_path
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        PathBuf::from(dir)
            .join("proptest-regressions")
            .join(format!("{name}.txt"))
    }

    /// Previously persisted failing-case seeds for `test_path`, oldest
    /// first. Lines follow upstream's comment convention: `cc <seed>`.
    pub fn persisted_seeds(test_path: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(regression_file(test_path)) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|l| l.trim().strip_prefix("cc "))
            .filter_map(|s| s.trim().parse::<u64>().ok())
            .collect()
    }

    /// Records a failing case seed so later runs replay it first.
    /// Best-effort: IO errors are ignored (the panic still surfaces).
    pub fn persist_failure(test_path: &str, seed: u64) {
        if persisted_seeds(test_path).contains(&seed) {
            return;
        }
        let path = regression_file(test_path);
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let mut text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            "# Seeds for failure cases proptest has generated in the past.\n\
             # It is automatically read and these particular cases re-run before\n\
             # any novel cases are generated. Each line is `cc <u64 seed>`.\n"
                .to_string()
        });
        text.push_str(&format!("cc {seed}\n"));
        let _ = std::fs::write(&path, text);
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// This vendored Strategy generates directly (no value trees, no
    /// shrinking); `generate` must be deterministic in the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s whose elements come from `element`.
    ///
    /// When the element domain is too small to reach the drawn target size,
    /// the set saturates at whatever distinct values a bounded number of
    /// draws produced (matching upstream's best-effort behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The strategy for an arbitrary `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property-test functions. Each `fn name(pat in strategy, ..)`
/// item becomes a zero-argument function that draws inputs and runs the
/// body `config.cases` times; attach `#[test]` inside as usual. Persisted
/// regression seeds (see crate docs) are replayed before fresh cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            // Returns Some(true) for a pass, Some(false) for a prop_assume!
            // rejection; panics (after persisting the seed) on failure.
            let run_case = |seed: u64, persist: bool| -> bool {
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                let ($($p,)+) = (
                    $($crate::strategy::Strategy::generate(&$s, &mut rng),)+
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        // The immediately-called closure gives `prop_assume!`
                        // a function boundary to `return` through.
                        #[allow(clippy::redundant_closure_call)]
                        let inner: ::std::result::Result<
                            (),
                            $crate::test_runner::Rejected,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        inner
                    }),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => true,
                    ::std::result::Result::Ok(::std::result::Result::Err(_)) => false,
                    ::std::result::Result::Err(payload) => {
                        if persist && config.failure_persistence {
                            $crate::test_runner::persist_failure(test_path, seed);
                        }
                        eprintln!(
                            "proptest {test_path}: failing case seed = {seed} \
                             (recorded in {})",
                            $crate::test_runner::regression_file(test_path).display()
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            };
            if config.failure_persistence {
                for seed in $crate::test_runner::persisted_seeds(test_path) {
                    let _ = run_case(seed, false);
                }
            }
            let base = $crate::test_runner::base_seed(test_path);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while accepted < config.cases {
                let seed = $crate::test_runner::case_seed(base, case);
                case += 1;
                if run_case(seed, true) {
                    accepted += 1;
                } else {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "proptest {}: too many prop_assume! rejections \
                         ({} accepted after {} cases)",
                        test_path, accepted, case,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

/// Rejects the current case (it does not count towards `cases`) when the
/// precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1_000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.0f64..0.4).generate(&mut rng);
            assert!((0.0..0.4).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..5, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..100, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&s.len()));
        }
    }

    #[test]
    fn btree_set_saturates_on_small_domains() {
        let mut rng = TestRng::from_seed(3);
        // Domain has 2 values but 5 are requested: must terminate.
        let s = crate::collection::btree_set(0u32..2, 5).generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_seed(4);
        let s = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    #[test]
    fn equal_seeds_reproduce_cases() {
        let strat = crate::collection::vec((crate::bool::ANY, 0u8..8), 1..64);
        let a = strat.generate(&mut TestRng::from_seed(99));
        let b = strat.generate(&mut TestRng::from_seed(99));
        assert_eq!(a, b);
    }

    #[test]
    fn case_seeds_differ_across_cases() {
        let base = crate::test_runner::base_seed("some::test");
        let s0 = crate::test_runner::case_seed(base, 0);
        let s1 = crate::test_runner::case_seed(base, 1);
        assert_ne!(s0, s1);
        // And are stable.
        assert_eq!(s0, crate::test_runner::case_seed(base, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_assumes(a in 0u32..100, mut b in 0u32..100) {
            prop_assume!(a != b);
            b = b.max(a);
            prop_assert!(b >= a);
            prop_assert_ne!(a * 2 + 1, b * 2);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn macro_tuple_and_bool(pair in (crate::bool::ANY, 0u8..8)) {
            let (flag, n) = pair;
            prop_assert!(n < 8);
            let _ = flag;
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let path = "vendored::selftest::persistence_roundtrip";
        let file = crate::test_runner::regression_file(path);
        let _ = std::fs::remove_file(&file);
        assert!(crate::test_runner::persisted_seeds(path).is_empty());
        crate::test_runner::persist_failure(path, 1234);
        crate::test_runner::persist_failure(path, 1234); // deduplicated
        crate::test_runner::persist_failure(path, 5678);
        assert_eq!(crate::test_runner::persisted_seeds(path), vec![1234, 5678]);
        let _ = std::fs::remove_file(&file);
    }
}
