//! Replicated log: multipaxos riding on the membership service.
//!
//! ```text
//! cargo run --example replicated_log
//! ```
//!
//! Five replicas carry a replicated log; the view's `Mgr` is the leader,
//! view versions are the ballots, and a view install is a
//! reconfiguration. Three closed-loop clients push commands while the
//! leader is crashed mid-run: the group excludes it, the new `Mgr` runs a
//! recovery round over the surviving acceptors, and the clients — after a
//! burst of retries and redirects — resume against the new leader. The
//! survivors' logs must agree: each is a prefix of the longest.
//!
//! The default `LogConfig` is the batched trim: the leader coalesces
//! same-tick commands into one `AcceptBatch` (`batch`), clients keep a
//! pipeline window in flight (`window`), and replicas compact per-slot
//! state below a floor once the log outgrows `compact_keep`.
//! `LogConfig::default().unbatched()` restores the strict one-at-a-time
//! per-slot baseline — try it here and watch committed ops drop ~4x.

use gmp::prelude::*;

fn main() {
    let replicas = 5;
    let clients = 3;
    let crash_at = 3_000;

    // Default knobs, except a compaction budget small enough for this
    // run's ~7k commands to cross the floor-advance hysteresis — so the
    // printout below shows the hot state actually being pruned.
    let mut sim = LogClusterBuilder::new(replicas, clients)
        .seed(2024)
        .log_config(LogConfig::default().compact_keep(1_024))
        .build();

    // p0 is the senior member, hence the initial Mgr and log leader.
    sim.crash_at(ProcessId(0), crash_at);
    sim.run_until(30_000);

    let survivors: Vec<ProcessId> = (1..replicas as u32).map(ProcessId).collect();

    println!("per-replica state after the run:");
    for &p in &survivors {
        let node = sim.node(p);
        let (m, l) = (node.member(), node.log());
        let (accepted, _, by_cmd, _) = l.hot_sizes();
        println!(
            "  {} -> view v{} ({} members), {} committed ops, floor {} \
             ({} accepted / {} dedup entries hot){}",
            p,
            m.ver(),
            m.view().len(),
            l.committed_ops(),
            l.floor(),
            accepted,
            by_cmd,
            if l.is_leader() { "  [leader]" } else { "" }
        );
    }

    println!("\nper-client workload:");
    let mut slowest = 0;
    for k in 0..clients as u32 {
        let c = sim.node(ProcessId(replicas as u32 + k)).client();
        let max = c.latencies().iter().copied().max().unwrap_or(0);
        slowest = slowest.max(max);
        println!(
            "  client {} -> {} acked, {} retries, {} redirects, worst latency {} ticks",
            k,
            c.acked(),
            c.retries(),
            c.redirects(),
            max
        );
    }
    println!(
        "\nworst commit latency {slowest} ticks — the requests that \
         straddled the leader crash and waited out the failover"
    );

    // Safety gate: survivors may lag, never diverge.
    let logs: Vec<&[_]> = survivors
        .iter()
        .map(|&p| sim.node(p).log().committed())
        .collect();
    assert!(
        prefix_identical(logs.iter().copied()),
        "survivor logs diverged"
    );

    // Liveness gates: the group excluded the dead leader and the log kept
    // committing under its successor.
    let survivor = sim.node(ProcessId(1));
    assert!(!survivor.member().view().contains(ProcessId(0)));
    assert!(survivor.log().committed_ops() > 0);
    let post_failover = survivor
        .log()
        .ballots()
        .iter()
        .any(|&b| b >= survivor.member().ver());
    assert!(post_failover, "no command committed under the new leader");

    println!("survivor logs prefix-identical; progress resumed after failover: OK");
}
