//! The motivating application (§1): a mutual-monitoring service.
//!
//! ```text
//! cargo run --example monitoring
//! ```
//!
//! A set of servers "monitor one another": each server's picture of who is
//! up *is* its membership view. Because accurate crash detection is
//! impossible in an asynchronous system, raw suspicions are inconsistent —
//! one server may time out on a peer that another still hears from. The
//! membership protocol turns those inconsistent suspicions into a single
//! agreed fail-stop history: every server reports the same sequence of
//! "server X went down" events, in the same order.

use gmp::protocol::cluster;
use gmp::sim::TraceKind;
use gmp::types::{Note, OpKind, ProcessId};

fn main() {
    let mut sim = cluster(6, 31);

    // Three servers die over time, the second while the first exclusion
    // may still be in flight.
    sim.crash_at(ProcessId(2), 600);
    sim.crash_at(ProcessId(5), 700);
    sim.crash_at(ProcessId(1), 2_500);

    sim.run_until(20_000);

    // Each surviving server derives its DOWN feed from its own local view
    // transitions — no extra agreement needed.
    let mut feeds: std::collections::BTreeMap<ProcessId, Vec<(u64, ProcessId)>> =
        Default::default();
    for ev in &sim.trace().events {
        if let TraceKind::Note(Note::OpApplied { op, ver }) = &ev.kind {
            if op.kind == OpKind::Remove {
                feeds.entry(ev.pid).or_default().push((*ver, op.target));
            }
        }
    }

    println!("per-server failure feeds (version, failed server):");
    for (server, feed) in &feeds {
        let items: Vec<String> = feed.iter().map(|(v, t)| format!("v{v}:{t} DOWN")).collect();
        println!("  {}: {}", server, items.join("  "));
    }

    // The point: every functional server reports the *same* fail-stop
    // history, even though their raw timeout observations differed.
    let survivors = sim.living();
    let reference = feeds[&survivors[0]].clone();
    for s in &survivors {
        assert_eq!(
            feeds[s], reference,
            "server {s} reports a different failure history"
        );
    }
    println!(
        "\nall {} surviving servers agree on the failure history: {:?}",
        survivors.len(),
        reference
            .iter()
            .map(|(v, t)| format!("v{v}:{t}"))
            .collect::<Vec<_>>()
    );
}
