//! Hierarchical monitoring: local groups plus a leader overlay.
//!
//! ```text
//! cargo run --example hierarchy
//! ```
//!
//! Twelve members in groups of four. Each member heartbeats only its own
//! group; the three group leaders also monitor each other, so suspicion of
//! a remote failure reaches everyone by gossip relay through the overlay.
//! Agreement is untouched — the excluded view is still installed by all.

use gmp::protocol::{cluster_with, Config, Hierarchical};
use gmp::types::ProcessId;

fn main() {
    let cfg = Config::builder().topology(Hierarchical::new(4)).build();
    let mut sim = cluster_with(12, 64, cfg);

    // p7 is a *non-leader* in the middle group: only p4..p7 monitor it
    // directly, yet the whole cluster agrees on its exclusion.
    sim.crash_at(ProcessId(7), 500);
    sim.run_until(10_000);

    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 1);
        assert!(!m.view().contains(ProcessId(7)));
    }
    println!(
        "12 members in groups of 4 agreed on v1 = {}",
        sim.node(ProcessId(0)).view()
    );
    println!("hierarchical monitoring excluded p7 without a clique: OK");
}
