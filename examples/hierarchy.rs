//! The §8 extension: a hierarchical management service.
//!
//! ```text
//! cargo run --example hierarchy
//! ```
//!
//! "By not requiring processes to be members of their own local views, we
//! can create a hierarchical management service" (§8). Here two external
//! *observers* — think dashboards, or clients of the service — subscribe
//! to the group's view stream. They see every agreed membership change
//! without participating in the agreement, and they survive both ordinary
//! member failures and the failure of their own contact.

use gmp::protocol::{ClusterBuilder, Config, ObserveConfig};
use gmp::sim::{Builder, TraceKind};
use gmp::types::{Note, ProcessId};

fn main() {
    let mut sim = ClusterBuilder::new(5, Config::default())
        // Observer p5 follows member p2; observer p6 follows member p1.
        .observer(ObserveConfig::new(200, vec![ProcessId(2)]))
        .observer(ObserveConfig::new(250, vec![ProcessId(1)]))
        .sim(Builder::new().seed(64))
        .build();

    // A member dies, then observer p5's own contact dies, then the
    // coordinator dies.
    sim.crash_at(ProcessId(4), 800);
    sim.crash_at(ProcessId(2), 2_200);
    sim.crash_at(ProcessId(0), 4_000);

    sim.run_until(20_000);

    println!("what the observers saw:");
    for ev in &sim.trace().events {
        if let TraceKind::Note(Note::ObservedView { ver, members, mgr }) = &ev.kind {
            let ms: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            println!(
                "  t={:<6} {} observed v{} (mgr {}): {{{}}}",
                ev.time,
                ev.pid,
                ver,
                mgr,
                ms.join(", ")
            );
        }
    }

    let a = sim
        .node(ProcessId(5))
        .observed_view()
        .expect("observer 5 is live");
    let b = sim
        .node(ProcessId(6))
        .observed_view()
        .expect("observer 6 is live");
    println!("\nobserver p5 final: v{} {}", a.1, a.0);
    println!("observer p6 final: v{} {}", b.1, b.0);

    // Both observers converged on the members' agreed view, despite p5
    // losing its contact mid-run.
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, 3, "three exclusions observed");
    assert_eq!(a.0, sim.node(ProcessId(1)).view(), "observed == agreed");
    println!("\nobservers track the agreed membership without being members: OK");
}
