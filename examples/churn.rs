//! Churn: a continuous stream of joins and failures — the paper's "fully
//! online" claim (§1, §7, §8).
//!
//! ```text
//! cargo run --example churn
//! ```
//!
//! Unlike protocols that block while failures and recoveries keep arriving,
//! the `Mgr`-driven update algorithm processes an arbitrary interleaving of
//! additions and exclusions, one commit per version, without ever pausing
//! the group.

use gmp::props::{analyze, check_all};
use gmp::protocol::{ClusterBuilder, Config, JoinConfig};
use gmp::sim::Builder;
use gmp::types::ProcessId;

fn main() {
    // Six initial members, four late joiners asking member p1 for
    // admission at staggered times.
    let mut builder = ClusterBuilder::new(6, Config::default());
    for j in 0..4u64 {
        builder = builder.joiner(JoinConfig::new(700 + 800 * j, vec![ProcessId(1)]));
    }
    let mut sim = builder.sim(Builder::new().seed(99)).build();

    // Failures interleaved with the joins.
    sim.crash_at(ProcessId(5), 1_000);
    sim.crash_at(ProcessId(4), 2_100);
    sim.crash_at(ProcessId(6), 3_300); // a joiner that dies after joining

    sim.run_until(20_000);

    let a = analyze(sim.trace());
    let final_view = a.final_system_view().expect("views were installed");
    println!(
        "membership changes committed: {} (4 joins + 3 exclusions)",
        final_view.ver
    );
    println!(
        "final view v{}: {:?}",
        final_view.ver,
        final_view.members.iter().map(|m| m.0).collect::<Vec<_>>()
    );

    println!("\nper-change timeline:");
    for rec in &a.applied {
        if rec.pid == ProcessId(0) || a.functional().contains(&rec.pid) {
            // print each change once, from the first process that applied it
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for rec in &a.applied {
        if seen.insert(rec.ver) {
            println!("  v{}: {}", rec.ver, rec.op);
        }
    }

    assert_eq!(final_view.ver, 7, "all seven changes must commit");
    check_all(sim.trace()).assert_ok();
    println!("\nGMP specification: OK — the group never blocked");
}
