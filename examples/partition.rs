//! Network partition: the majority side makes progress, the minority side
//! cannot install views (§4.3: an initiator that cannot assemble a majority
//! must quit).
//!
//! ```text
//! cargo run --example partition
//! ```
//!
//! In the paper's model a partition is indistinguishable from very slow
//! links, so cross-partition messages are held, not lost. Each side
//! eventually suspects the other; only the side holding a majority of the
//! current view can commit the exclusions.

use gmp::props::check_safety;
use gmp::protocol::cluster;
use gmp::types::ProcessId;

fn main() {
    let mut sim = cluster(7, 12);

    // Minority {p0 (the coordinator!), p1} versus majority {p2..p6}.
    let minority = [ProcessId(0), ProcessId(1)];
    let majority = [
        ProcessId(2),
        ProcessId(3),
        ProcessId(4),
        ProcessId(5),
        ProcessId(6),
    ];
    sim.partition_at(&[&minority, &majority], 500);

    sim.run_until(20_000);

    println!("after the partition:");
    for p in (0..7).map(ProcessId) {
        let status = sim.status(p);
        if status.is_up() {
            let m = sim.node(p);
            println!("  {} up    v{} view {}", p, m.ver(), m.view());
        } else {
            println!("  {} {:?}", p, status);
        }
    }

    // Majority side: p2 (most senior there) reconfigured and excluded the
    // unreachable minority.
    for p in majority {
        let m = sim.node(p);
        assert_eq!(
            m.view().len(),
            5,
            "{p} should see the 5-member majority view"
        );
        assert_eq!(m.mgr(), ProcessId(2));
        assert!(!m.view().contains(ProcessId(0)));
    }

    // Minority side: the coordinator cannot gather μ = 4 responses out of
    // its 7-member view, so it quits rather than install a view; p1's own
    // reconfiguration attempt dies the same way. Nobody on the minority
    // side ever installs a conflicting view.
    for p in minority {
        assert!(
            !sim.status(p).is_up() || sim.node(p).ver() == 0,
            "{p} must not make progress in the minority"
        );
    }

    // Safety holds across the whole run — there is exactly one view
    // sequence, the majority side's.
    check_safety(sim.trace()).assert_ok();
    println!("\nmajority progressed, minority blocked/quit: GMP safety OK");
}
