//! Coordinator failover: the Figure 3 scenario, live.
//!
//! ```text
//! cargo run --example coordinator_failover
//! ```
//!
//! `Mgr` starts excluding a crashed member but dies one send into its
//! commit broadcast, so exactly one outer process installs the new view and
//! everyone else is left behind — "no system view exists" (Fig. 3). The
//! three-phase reconfiguration algorithm then elects the next-ranked member
//! and restores a unique system view, honouring the interrupted commit.

use gmp::props::{analyze, check_all};
use gmp::protocol::cluster;
use gmp::types::ProcessId;

fn main() {
    let mut sim = cluster(5, 7);

    // p4 crashes; Mgr (p0) begins the exclusion...
    sim.crash_at(ProcessId(4), 400);
    // ...but dies immediately after the *first* send of its commit
    // broadcast: a partial broadcast, exactly Figure 3.
    sim.crash_after_sends_at(ProcessId(0), 0, Some("commit"), 1);

    sim.run_until(20_000);

    let a = analyze(sim.trace());
    println!("per-process view histories:");
    for (pid, views) in &a.views {
        let hist: Vec<String> = views
            .iter()
            .map(|v| {
                let ms: Vec<String> = v.members.iter().map(|m| m.to_string()).collect();
                format!("v{}{{{}}}", v.ver, ms.join(","))
            })
            .collect();
        println!("  {}: {}", pid, hist.join(" -> "));
    }

    println!("\nwho ended up coordinating:");
    for p in sim.living() {
        let m = sim.node(p);
        println!(
            "  {} thinks mgr = {}{}",
            p,
            m.mgr(),
            if m.is_mgr() { "  (that's me)" } else { "" }
        );
    }

    // The interrupted commit was honoured: v1 exists exactly once, and the
    // successor continued by removing the dead coordinator.
    let survivors = sim.living();
    assert!(survivors.len() >= 3);
    for &p in &survivors {
        let m = sim.node(p);
        assert_eq!(m.mgr(), ProcessId(1), "p1 is the successor");
        assert!(!m.view().contains(ProcessId(0)));
        assert!(!m.view().contains(ProcessId(4)));
    }
    check_all(sim.trace()).assert_ok();
    println!("\nGMP specification: OK — the invisible commit was repaired");
}
