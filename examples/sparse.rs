//! Sparse monitoring: a k-regular ring instead of the clique.
//!
//! ```text
//! cargo run --example sparse
//! ```
//!
//! Sixteen members, each heartbeating only its four ring neighbours. A
//! crash is noticed by the victim's neighbours, whose `Faulty` gossip is
//! re-carried hop by hop around the ring until the coordinator excludes
//! the victim — same agreed view, a fraction of the message load.

use gmp::protocol::{cluster_with, Config, Sparse};
use gmp::types::ProcessId;

fn main() {
    let cfg = Config::builder().topology(Sparse::new(4)).build();
    let mut sim = cluster_with(16, 7, cfg);

    sim.crash_at(ProcessId(9), 500);
    sim.run_until(10_000);

    for p in sim.living() {
        let m = sim.node(p);
        assert_eq!(m.ver(), 1);
        assert!(!m.view().contains(ProcessId(9)));
    }
    println!(
        "16 members on a 4-regular ring agreed on v1 = {}",
        sim.node(ProcessId(0)).view()
    );
    println!("relayed suspicion excluded p9 without a clique: OK");
}
