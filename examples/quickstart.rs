//! Quickstart: a five-member process group that survives a crash.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a group of five simulated processes (p0 is the initial
//! coordinator), crashes one member, and prints every view transition the
//! survivors agree on — then verifies the run against the paper's GMP
//! specification.

use gmp::props::check_all;
use gmp::protocol::cluster;
use gmp::sim::TraceKind;
use gmp::types::{Note, ProcessId};

fn main() {
    // A deterministic five-member group: same seed, same run, every time.
    let mut sim = cluster(5, 2024);

    // Fail one member at t=500. In the model crashes are permanent; a
    // restarted process would come back as a brand-new member.
    sim.crash_at(ProcessId(3), 500);

    sim.run_until(10_000);

    println!("view transitions observed by each process:");
    for ev in &sim.trace().events {
        if let TraceKind::Note(Note::ViewInstalled { ver, members, mgr }) = &ev.kind {
            let members: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            println!(
                "  t={:<5} {}  installed v{} (mgr {}): {{{}}}",
                ev.time,
                ev.pid,
                ver,
                mgr,
                members.join(", ")
            );
        }
    }

    println!("\nfinal state:");
    for p in sim.living() {
        let m = sim.node(p);
        println!("  {} -> version {}, view {}", p, m.ver(), m.view());
    }

    // The membership service doubles as a fail-stop failure detector:
    // "p3 failed" is exactly "p3 left the agreed membership".
    let survivor = sim.node(ProcessId(0));
    assert!(!survivor.view().contains(ProcessId(3)));
    assert_eq!(survivor.ver(), 1);

    // And the whole run satisfies GMP-0..GMP-5 plus convergence.
    check_all(sim.trace()).assert_ok();
    println!("\nGMP-0..GMP-5 + convergence: OK");
}
